// Quickstart: calibrate a Krak performance model, predict an iteration,
// and check the prediction against a simulated run.
//
// This walks the full public API in ~60 lines:
//   1. build an input deck (the paper's medium cylinder),
//   2. calibrate per-cell costs from "measurements" of the application
//      (SimKrak stands in for the proprietary code),
//   3. predict iteration time with the general model,
//   4. cross-check with a discrete-event-simulated run.

#include <iostream>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/model.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/simkrak.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace krak;
  const util::ArgParser args(argc, argv);

  // 1. The input deck: a 204,800-cell cylinder of four materials.
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  std::cout << "Deck: " << deck.name() << ", " << deck.grid().num_cells()
            << " cells, " << deck.distinct_material_count() << " materials\n";

  // 2. Calibrate per-cell computation costs with the paper's "Method 2":
  //    solve linear systems over real partitions at several scales.
  //    The engine is the ground-truth application stand-in.
  const simapp::ComputationCostEngine application;
  const core::CostTable costs =
      core::calibrate_from_input(application, deck, {8, 64, 512, 4096});

  // 3. Build the model for the paper's validation machine and predict.
  const core::KrakModel model(costs, network::make_es45_qsnet());
  constexpr std::int32_t kPes = 256;

  // Optional `--lint` / `--lint-only` gate over everything built so far.
  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  lint_input.machine = &model.machine();
  lint_input.costs = &costs;
  lint_input.pes = kPes;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }
  const core::PredictionReport prediction = model.predict_general(
      deck.grid().num_cells(), kPes, core::GeneralModelMode::kHomogeneous);
  std::cout << "\nGeneral-model prediction for " << kPes << " processors:\n"
            << prediction.to_string();

  // 4. Cross-check against a simulated execution of the application.
  const double measured = simapp::simulate_iteration_time(
      deck, kPes, model.machine(), application);
  std::cout << "Simulated (\"measured\") iteration time: "
            << util::format_ms(measured, 3) << "\n";
  const double error = (measured - prediction.total()) / measured;
  std::cout << "Prediction error (paper convention): "
            << util::format_percent(error) << "\n";
  return 0;
}
