// Sensitivity study: which machine parameter should the next dollar buy?
// Uses the calibrated model's sensitivity analysis (latency, bandwidth,
// compute) across the strong-scaling sweep, plus the configuration
// optimizer to report the fastest and the most efficient PE counts.
//
// Usage:
//   sensitivity_study [--deck small|medium|large] [--delta 0.1]
//                     [--iterations 10000] [--efficiency 0.7]

#include <iostream>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/sensitivity.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace krak;
  const util::ArgParser args(argc, argv);
  const std::string deck_name = args.get_string("deck", "medium");
  const double delta = args.get_double("delta", 0.10);
  const std::int64_t iterations = args.get_int("iterations", 10000);
  const double efficiency_target = args.get_double("efficiency", 0.70);

  mesh::DeckSize size = mesh::DeckSize::kMedium;
  if (deck_name == "small") size = mesh::DeckSize::kSmall;
  if (deck_name == "large") size = mesh::DeckSize::kLarge;
  const std::int64_t cells = mesh::standard_deck_cells(size);

  const simapp::ComputationCostEngine application;
  const core::CostTable costs = core::calibrate_from_input(
      application, mesh::make_standard_deck(mesh::DeckSize::kMedium),
      {8, 64, 512, 4096});
  const core::KrakModel model(costs, network::make_es45_qsnet());

  const mesh::InputDeck deck = mesh::make_standard_deck(size);
  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  lint_input.machine = &model.machine();
  lint_input.costs = &costs;
  lint_input.pes = 1024;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  std::cout << "Sensitivity study: " << deck_name << " problem (" << cells
            << " cells), +" << util::format_percent(delta, 0)
            << " perturbations\n\n";

  util::TextTable table({"PEs", "Base (ms)", "Latency", "Bandwidth",
                         "Compute", "Dominant"});
  for (std::int32_t pes = 16; pes <= 1024; pes *= 4) {
    const core::SensitivityReport report = core::analyze_sensitivity(
        model, cells, pes, core::GeneralModelMode::kHomogeneous, delta);
    table.add_row({std::to_string(pes),
                   util::format_double(report.base_time * 1e3, 1),
                   util::format_percent(report.latency_sensitivity),
                   util::format_percent(report.bandwidth_sensitivity),
                   util::format_percent(report.compute_sensitivity),
                   report.dominant_parameter()});
  }
  std::cout << table;

  const core::Configuration fastest =
      core::find_fastest_configuration(model, cells);
  const core::Configuration efficient =
      core::find_efficiency_limit(model, cells, efficiency_target);
  std::cout << "\nFastest configuration: " << fastest.pes << " PEs at "
            << util::format_ms(fastest.iteration_time, 2) << "/iteration ("
            << util::format_percent(fastest.efficiency, 0)
            << " efficiency)\n";
  std::cout << "Largest configuration meeting "
            << util::format_percent(efficiency_target, 0)
            << " efficiency: " << efficient.pes << " PEs at "
            << util::format_ms(efficient.iteration_time, 2)
            << "/iteration\n";
  std::cout << "Predicted time to solution for " << iterations
            << " iterations on the efficient configuration: "
            << util::format_double(core::predict_time_to_solution(
                                       model, cells, efficient.pes,
                                       iterations),
                                   1)
            << " s\n";
  std::cout << "\nReading: at small scale the study says \"buy faster"
               " processors\"; past the\nscaling knee it says \"buy a"
               " lower-latency network\" — the quantitative answer the\n"
               "paper's introduction promises procurement teams.\n";
  return 0;
}
