// Hydro demo: run the Lagrangian mini-app on the paper's cylindrical
// deck — detonate the HE core, watch the shock cross the material
// layers — then close the loop on the paper's methodology with REAL
// measurements: time the solver at several subgrid sizes, fit the
// piecewise-linear per-cell cost table (Section 3.1's Method 1), and
// check the fit's prediction at an unsampled size against a direct
// measurement.
//
// Usage: hydro_demo [--nx 80] [--ny 40] [--time 3.0] [--threads 1]

#include <iostream>

#include "analyze/lint_cli.hpp"
#include "hydro/measure.hpp"
#include "hydro/solver.hpp"
#include "mesh/deck.hpp"
#include "util/cli.hpp"
#include "util/piecewise.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// One-character pressure map, rows top to bottom.
void print_pressure_map(const hydro::HydroState& state) {
  const mesh::Grid& grid = state.grid();
  const double max_pressure = state.max_pressure().first;
  if (max_pressure <= 0.0) return;
  constexpr std::string_view kShades = " .:-=+*#%@";
  for (std::int32_t j = grid.ny() - 1; j >= 0; j -= 2) {
    std::string line;
    for (std::int32_t i = 0; i < grid.nx(); i += 2) {
      const double p =
          state.pressure[static_cast<std::size_t>(grid.cell_at(i, j))];
      const auto shade = static_cast<std::size_t>(
          std::min(9.0, 10.0 * p / max_pressure));
      line += kShades[shade];
    }
    std::cout << line << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto nx = static_cast<std::int32_t>(args.get_int("nx", 80));
  const auto ny = static_cast<std::int32_t>(args.get_int("ny", 40));
  const double end_time = args.get_double("time", 3.0);
  const auto threads = static_cast<std::int32_t>(args.get_int("threads", 1));

  const mesh::InputDeck deck = mesh::make_cylindrical_deck(nx, ny);

  // Deck-only lint gate: the mini-app has no machine or cost table.
  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  std::cout << "Deck: " << deck.name() << " (" << deck.grid().num_cells()
            << " cells); detonating to t = " << end_time << "\n\n";

  hydro::HydroState state(deck);
  const double e0 = state.total_energy();
  hydro::HydroConfig solver_config;
  solver_config.threads = threads;
  hydro::HydroSolver solver(state, solver_config);

  util::TextTable trace({"t", "dt", "max p", "E total", "E kinetic",
                         "burn radius"});
  const double report_interval = end_time / 6.0;
  double next_report = report_interval;
  hydro::StepStats stats;
  while (state.time < end_time) {
    stats = solver.step();
    if (state.time >= next_report) {
      trace.add_row({util::format_double(stats.time, 2),
                     util::format_double(stats.dt, 4),
                     util::format_double(stats.max_pressure, 2),
                     util::format_double(stats.total_energy, 1),
                     util::format_double(state.total_kinetic_energy(), 1),
                     util::format_double(stats.burn_front_radius, 1)});
      next_report += report_interval;
    }
  }
  std::cout << trace;
  std::cout << "Energy: started at " << util::format_double(e0, 1)
            << ", ended at " << util::format_double(stats.total_energy, 1)
            << " (detonation energy added by the burn)\n\n";

  std::cout << "Pressure field at t = " << util::format_double(state.time, 2)
            << " (axis on the left, 2x2 cells per character):\n";
  print_pressure_map(state);

  // Per-phase wall-clock profile of the run (the mini-app's Table 1).
  std::cout << "\nPhase profile over " << solver.steps_taken() << " steps:\n";
  util::TextTable profile({"Phase", "Total (ms)", "Share"});
  profile.set_alignment(
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  const double total_seconds = solver.timers().total_seconds();
  for (std::size_t p = 0; p < hydro::kHydroPhaseCount; ++p) {
    const double seconds =
        solver.timers().seconds(static_cast<hydro::HydroPhase>(p));
    profile.add_row(
        {std::string(hydro::hydro_phase_name(static_cast<hydro::HydroPhase>(p))),
         util::format_double(seconds * 1e3, 2),
         util::format_percent(seconds / total_seconds)});
  }
  std::cout << profile;

  // The paper's Method 1 on real code: measure per-cell costs at a size
  // ladder, build the piecewise-linear table, predict an unsampled size.
  std::cout << "\nMethod-1 calibration on real measurements (foam):\n";
  const std::vector<std::int64_t> ladder = {64, 1024, 16384};
  util::PiecewiseLinear fitted;
  for (const hydro::HydroCostSample& sample :
       hydro::sweep_hydro_costs(mesh::Material::kFoam, ladder, 20)) {
    fitted.add_point(static_cast<double>(sample.cells),
                     sample.total_per_cell_seconds());
  }
  const hydro::HydroCostSample probe =
      hydro::measure_uniform_cost(mesh::Material::kFoam, 4096, 20);
  const double predicted = fitted(static_cast<double>(probe.cells));
  const double measured = probe.total_per_cell_seconds();
  std::cout << "  per-cell cost at " << probe.cells
            << " cells: measured " << util::format_double(measured * 1e9, 1)
            << " ns, piecewise-linear fit "
            << util::format_double(predicted * 1e9, 1) << " ns ("
            << util::format_percent((measured - predicted) / measured)
            << " error, wall-clock noise included)\n";
  return 0;
}
