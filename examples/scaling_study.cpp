// Scaling study: "a scalability analysis is the focus of the model
// developed here" (Section 1). This example sweeps processor counts for
// all three problem sizes with the general model, reports parallel
// efficiency and the computation/communication crossover, and picks the
// largest PE count that still meets an efficiency target — the question
// a user asks before submitting a job.

#include <iostream>
#include <vector>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/model.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace krak;
  const util::ArgParser args(argc, argv);

  const simapp::ComputationCostEngine application;
  const mesh::InputDeck calibration_deck =
      mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const core::CostTable costs = core::calibrate_from_input(
      application, calibration_deck, {8, 64, 512, 4096});
  const core::KrakModel model(costs, network::make_es45_qsnet());

  analyze::LintInput lint_input;
  lint_input.deck = &calibration_deck;
  lint_input.machine = &model.machine();
  lint_input.costs = &costs;
  lint_input.pes = 1024;  // the largest point in the sweep below
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  constexpr double kEfficiencyTarget = 0.70;
  std::cout << "Strong-scaling study on " << model.machine().name
            << " (general model, homogeneous)\n";
  std::cout << "Efficiency target: "
            << util::format_percent(kEfficiencyTarget, 0) << "\n\n";

  for (mesh::DeckSize size : {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium,
                              mesh::DeckSize::kLarge}) {
    const std::int64_t cells = mesh::standard_deck_cells(size);
    std::cout << mesh::deck_size_name(size).data() << " problem (" << cells
              << " cells):\n";
    util::TextTable table({"PEs", "Time (ms)", "Speedup", "Efficiency",
                           "Comp (ms)", "Comm (ms)", "Comm share"});
    const double serial =
        model.predict_general(cells, 1, core::GeneralModelMode::kHomogeneous)
            .total();
    std::int32_t best_pes = 1;
    std::int32_t crossover_pes = 0;
    for (std::int32_t pes = 1; pes <= 1024; pes *= 2) {
      const core::PredictionReport report = model.predict_general(
          cells, pes, core::GeneralModelMode::kHomogeneous);
      const double speedup = serial / report.total();
      const double efficiency = speedup / pes;
      if (efficiency >= kEfficiencyTarget) best_pes = pes;
      if (crossover_pes == 0 && report.communication() > report.computation) {
        crossover_pes = pes;
      }
      table.add_row({std::to_string(pes),
                     util::format_double(report.total() * 1e3, 1),
                     util::format_double(speedup, 1) + "x",
                     util::format_percent(efficiency, 0),
                     util::format_double(report.computation * 1e3, 1),
                     util::format_double(report.communication() * 1e3, 2),
                     util::format_percent(
                         report.communication() / report.total(), 0)});
    }
    std::cout << table;
    std::cout << "  Largest PE count meeting the efficiency target: "
              << best_pes << "\n";
    if (crossover_pes != 0) {
      std::cout << "  Communication overtakes computation at " << crossover_pes
                << " PEs.\n";
    } else {
      std::cout << "  Computation dominates across the whole sweep.\n";
    }
    std::cout << "\n";
  }

  std::cout << "The small problem stops scaling two orders of magnitude\n"
               "earlier than the large one: with 22 global reductions per\n"
               "iteration, log(P) collective latency swamps the shrinking\n"
               "per-processor computation — the same effect that caps the\n"
               "paper's small-problem runs near 128 processors (Table 5).\n";
  return 0;
}
