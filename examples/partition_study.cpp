// Partition study: "models can be useful for quantitatively evaluating
// the potential performance benefit of alterations to the application,
// such as the data-partitioning algorithms" (Section 1). This example
// evaluates three partitioners with the mesh-specific model and
// explains a non-obvious result: on this deck, minimizing edge cut is
// NOT the whole story — a partitioner that mixes materials within each
// subgrid avoids concentrating the expensive high-explosive gas on a
// few processors, trading communication for computation balance.

#include <iostream>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/comp_model.hpp"
#include "core/model.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/stats.hpp"
#include "simapp/costmodel.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// Fraction of processors whose subgrid is at least 95% one material.
double homogeneous_fraction(const partition::PartitionStats& stats) {
  std::int32_t homogeneous = 0;
  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    std::int64_t max_material = 0;
    for (std::int64_t n : sub.cells_per_material) {
      max_material = std::max(max_material, n);
    }
    if (sub.total_cells > 0 &&
        static_cast<double>(max_material) >=
            0.95 * static_cast<double>(sub.total_cells)) {
      ++homogeneous;
    }
  }
  return static_cast<double>(homogeneous) /
         static_cast<double>(stats.parts());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const simapp::ComputationCostEngine application;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kMedium);
  const core::CostTable costs =
      core::calibrate_from_input(application, deck, {8, 64, 512, 4096});
  const core::KrakModel model(costs, network::make_es45_qsnet());
  const partition::Graph graph = partition::build_dual_graph(deck.grid());

  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  lint_input.machine = &model.machine();
  lint_input.costs = &costs;
  lint_input.pes = 256;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  std::cout << "Partition study: medium problem, mesh-specific model\n\n";
  for (std::int32_t pes : {64, 256}) {
    std::cout << pes << " processors:\n";
    util::TextTable table({"Method", "Edge cut", "Homogeneous PEs",
                           "Pred. comp (ms)", "Pred. comm (ms)",
                           "Pred. total (ms)"});
    table.set_alignment({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
    for (partition::PartitionMethod method :
         {partition::PartitionMethod::kStrip, partition::PartitionMethod::kRcb,
          partition::PartitionMethod::kMultilevel,
          partition::PartitionMethod::kMaterialAware}) {
      const partition::Partition part =
          partition::partition_deck(deck, pes, method, 1);
      const partition::PartitionStats stats(deck, part);
      const partition::PartitionQuality quality =
          partition::evaluate_partition(graph, part);
      const core::PredictionReport report = model.predict_mesh_specific(stats);
      table.add_row({std::string(partition::partition_method_name(method)),
                     std::to_string(quality.edge_cut),
                     util::format_percent(homogeneous_fraction(stats)),
                     util::format_double(report.computation * 1e3, 2),
                     util::format_double(report.communication() * 1e3, 2),
                     util::format_double(report.total() * 1e3, 2)});
    }
    std::cout << table << "\n";
  }

  std::cout
      << "Reading the table: strip partitioning has a far larger edge cut,\n"
         "yet its predicted total can win. Its row-shaped subgrids mix all\n"
         "four materials, so no processor is pure high-explosive gas — the\n"
         "material the model charges ~1.6x for in material-dependent\n"
         "phases. Locality-first partitioners (RCB, multilevel) produce\n"
         "homogeneous subgrids at scale and pay the full HE-gas rate on\n"
         "the critical path. A material-aware partitioner balancing\n"
         "per-material cell counts is the alteration this model would\n"
         "recommend quantifying next — precisely the kind of what-if the\n"
         "paper built the model for.\n";
  return 0;
}
