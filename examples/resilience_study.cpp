// Resilience study: delay propagation and absorption through the
// reduction-fenced Krak iteration.
//
// A one-off delay injected on one rank does not simply add to the wall
// time: phases fenced by global reductions force every rank to wait for
// the straggler (the delay propagates), while any wait time the victim
// rank already had downstream swallows part of it (the delay is
// absorbed). This example injects a deterministic delay with the
// src/fault subsystem, measures both components against a fault-free
// baseline of the same seeds, and checks the per-rank time identity
//
//   finish = compute + overheads + waits + collective_cost
//            + fault_delay + recovery
//
// holds to round-off in both runs. It also prints the analytic Daly
// checkpoint/restart costs the fault model charges for rank crashes.
//
//   resilience_study [--quick] [--delay SECONDS] [--lint | --lint-only]

#include <cmath>
#include <iostream>
#include <vector>

#include "analyze/lint_cli.hpp"
#include "analyze/lint_faults.hpp"
#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "simapp/costmodel.hpp"
#include "simapp/simkrak.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// Worst absolute violation of the per-rank time identity over a run.
double identity_violation(const simapp::SimKrakResult& result) {
  double worst = 0.0;
  for (const sim::RankTimeBreakdown& rank : result.rank_breakdown) {
    const double identity =
        rank.compute + rank.p2p_seconds() + rank.collective_seconds() +
        rank.fault_seconds();
    worst = std::max(worst, std::abs(identity - rank.total_seconds()));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const double delay_s = args.get_double("delay", 0.05);

  const mesh::InputDeck deck = mesh::make_standard_deck(
      quick ? mesh::DeckSize::kSmall : mesh::DeckSize::kMedium);
  const network::MachineConfig machine = network::make_es45_qsnet();
  const simapp::ComputationCostEngine engine;

  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  lint_input.machine = &machine;
  lint_input.pes = quick ? 8 : 32;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  // The injected fault: rank 0 stalls for delay_s just before phase 3
  // of the second iteration (a compute-only phase fenced by an
  // allreduce, so every rank must absorb or inherit the delay at the
  // next fence).
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::OneOffDelay delay;
  delay.rank = 0;
  delay.phase = 3;
  delay.iteration = 1;
  delay.seconds = delay_s;
  plan.delays.push_back(delay);

  // Static sanity before running anything (the lint satellite).
  const analyze::DiagnosticReport plan_lint =
      analyze::lint_faults(plan, /*ranks=*/1'000'000, simapp::kPhaseCount);
  if (plan_lint.has_errors()) {
    std::cout << plan_lint.to_text();
    return 1;
  }

  std::cout << "Delay propagation study on " << machine.name << " ("
            << deck.name() << " deck, " << delay_s * 1e3
            << " ms one-off delay on rank 0, phase 3, iteration 1)\n\n";

  util::TextTable table({"PEs", "Baseline (ms)", "Faulted (ms)",
                         "Propagated (ms)", "Absorbed (ms)", "Identity err"});
  obs::Gauge& propagated_gauge =
      obs::global_registry().gauge("fault.delay_propagated_s");
  obs::Gauge& absorbed_gauge =
      obs::global_registry().gauge("fault.delay_absorbed_s");

  const std::vector<std::int32_t> pe_sweep =
      quick ? std::vector<std::int32_t>{4, 8}
            : std::vector<std::int32_t>{8, 16, 32};
  for (const std::int32_t pes : pe_sweep) {
    const partition::Partition part = partition::partition_deck(
        deck, pes, partition::PartitionMethod::kMultilevel, /*seed=*/1);

    simapp::SimKrakOptions options;
    options.iterations = 3;
    // Noise off: the baseline and faulted runs then differ by exactly
    // the injected delay and its knock-on waits, nothing else.
    options.enable_noise = false;

    const simapp::SimKrak baseline_app(deck, part, machine, engine, options);
    const simapp::SimKrakResult baseline = baseline_app.run();

    options.faults = plan;
    const simapp::SimKrak faulted_app(deck, part, machine, engine, options);
    const simapp::SimKrakResult faulted = faulted_app.run();

    const double propagated = faulted.total_time - baseline.total_time;
    const double absorbed = delay_s - propagated;
    propagated_gauge.set(propagated);
    absorbed_gauge.set(absorbed);

    const double identity_err =
        std::max(identity_violation(baseline), identity_violation(faulted));
    table.add_row({std::to_string(pes),
                   util::format_double(baseline.total_time * 1e3, 2),
                   util::format_double(faulted.total_time * 1e3, 2),
                   util::format_double(propagated * 1e3, 2),
                   util::format_double(absorbed * 1e3, 2),
                   util::format_double(identity_err, 12)});
  }
  std::cout << table << "\n";

  std::cout
      << "With every phase fenced by a global reduction there is almost no\n"
         "slack downstream of the injection point: the delay propagates\n"
         "nearly whole into the makespan instead of being absorbed, the\n"
         "idle-wave behavior of bulk-synchronous codes. Absorption only\n"
         "appears when waits already on the victim's critical path overlap\n"
         "the stall.\n\n";

  // Analytic checkpoint/restart accounting (Daly's first-order model):
  // the recovery cost a crash injection charges is restart + expected
  // rework, with rework = interval/2 when checkpointing, elapsed time
  // when not.
  const double checkpoint_cost_s = 5.0;
  const double mtbf_s = 3600.0;
  const double interval =
      fault::daly_optimal_interval(checkpoint_cost_s, mtbf_s);
  std::cout << "Checkpoint/restart model: checkpoint cost "
            << checkpoint_cost_s << " s, MTBF " << mtbf_s << " s\n"
            << "  Daly optimal interval  sqrt(2*C*MTBF) = " << interval
            << " s\n"
            << "  expected recovery (restart 30 s, checkpointing)   = "
            << fault::expected_recovery_cost(30.0, interval, 1800.0) << " s\n"
            << "  expected recovery (restart 30 s, no checkpoints,\n"
            << "   crash 1800 s into the run)                       = "
            << fault::expected_recovery_cost(30.0, 0.0, 1800.0) << " s\n";
  return 0;
}
