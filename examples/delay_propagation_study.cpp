// Delay-propagation study at scale: one-off delays scattered across
// thousands of ranks of a synthetic large deck.
//
// The small-scale resilience_study shows one straggler's delay
// propagating through the reduction fences. This study asks the
// follow-on question the 100k-rank regime raises: when THOUSANDS of
// ranks each suffer a one-off delay in the same iteration, does the
// makespan pay the sum of the delays or only their maximum? With every
// phase fenced by a global reduction the answer is the maximum — all
// the stalls overlap behind the same fence — and the study measures
// exactly that: the propagated cost stays flat as the victim count
// grows a thousandfold while the injected total grows linearly, so the
// absorbed fraction approaches one.
//
// The runs use the synthetic deck generator (mesh/synthetic.hpp), the
// full network stack (hierarchical network + shared-NIC contention),
// and the sharded parallel engine — the same configuration as the
// BENCH_PR9 large_100k scenario, at a rank count an example can afford.
//
//   delay_propagation_study [--quick] [--delay SECONDS]

#include <iostream>
#include <vector>

#include "analyze/lint_faults.hpp"
#include "core/partition_cache.hpp"
#include "fault/plan.hpp"
#include "mesh/synthetic.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/costmodel.hpp"
#include "simapp/simkrak.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace krak;

/// A fault plan delaying `victims` distinct ranks, spread evenly over
/// the rank space, each by `seconds` at the same phase of the same
/// iteration — the worst case for a fence: every stall lands behind
/// the same allreduce.
fault::FaultPlan scattered_delays(std::int32_t victims, std::int32_t ranks,
                                  double seconds) {
  fault::FaultPlan plan;
  plan.seed = 7;
  const std::int32_t stride = ranks / victims;
  for (std::int32_t v = 0; v < victims; ++v) {
    fault::OneOffDelay delay;
    delay.rank = v * stride;
    delay.phase = 3;
    delay.iteration = 1;
    delay.seconds = seconds;
    plan.delays.push_back(delay);
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool quick = args.has("quick");
  const double delay_s = args.get_double("delay", 0.01);

  // The synthetic deck and rank count scale with --quick; both modes
  // stay in the "thousands of ranks" regime the study is about.
  const mesh::InputDeck deck = mesh::make_synthetic_deck(
      mesh::paper_synthetic_spec(quick ? 512 : 1024, quick ? 64 : 128));
  const std::int32_t ranks = quick ? 2048 : 8192;

  network::MachineConfig machine = network::make_es45_qsnet();
  machine.nodes = (ranks + machine.pes_per_node - 1) / machine.pes_per_node;
  const simapp::ComputationCostEngine engine;

  // RCB, not multilevel: at thousands of parts the coarsening pipeline
  // costs more than every simulation in the sweep combined.
  const auto partitioned = core::PartitionCache::global().get(
      deck, ranks, partition::PartitionMethod::kRcb, /*seed=*/1);

  simapp::SimKrakOptions options;
  options.iterations = 3;
  // Noise off: each faulted run then differs from the baseline by
  // exactly its injected delays and their knock-on waits.
  options.enable_noise = false;
  // The full stack of the BENCH_PR9 100k-rank scenarios, on the
  // sharded engine (bit-identical to the oracle, several times faster
  // at this rank count).
  options.hierarchical_network = true;
  options.nic_contention = true;
  options.sim_threads = 8;

  const simapp::SimKrak baseline_app(deck, partitioned->partition, machine,
                                     engine, partitioned->stats, options);
  const simapp::SimKrakResult baseline = baseline_app.run();

  std::cout << "Delay propagation at scale: " << deck.name() << " deck, "
            << ranks << " ranks, " << delay_s * 1e3
            << " ms one-off delay per victim (phase 3, iteration 1)\n\n";

  util::TextTable table({"Victims", "Injected (ms)", "Baseline (ms)",
                         "Faulted (ms)", "Propagated (ms)", "Absorbed"});
  const std::vector<std::int32_t> victim_sweep =
      quick ? std::vector<std::int32_t>{1, 16, 256}
            : std::vector<std::int32_t>{1, 16, 256, 4096};
  for (const std::int32_t victims : victim_sweep) {
    const fault::FaultPlan plan = scattered_delays(victims, ranks, delay_s);
    const analyze::DiagnosticReport plan_lint =
        analyze::lint_faults(plan, ranks, simapp::kPhaseCount);
    if (plan_lint.has_errors()) {
      std::cout << plan_lint.to_text();
      return 1;
    }

    simapp::SimKrakOptions faulted_options = options;
    faulted_options.faults = plan;
    const simapp::SimKrak faulted_app(deck, partitioned->partition, machine,
                                      engine, partitioned->stats,
                                      faulted_options);
    const simapp::SimKrakResult faulted = faulted_app.run();

    const double injected = victims * delay_s;
    const double propagated = faulted.total_time - baseline.total_time;
    const double absorbed = injected - propagated;
    table.add_row({std::to_string(victims),
                   util::format_double(injected * 1e3, 2),
                   util::format_double(baseline.total_time * 1e3, 2),
                   util::format_double(faulted.total_time * 1e3, 2),
                   util::format_double(propagated * 1e3, 2),
                   util::format_double(absorbed / injected, 4)});
  }
  std::cout << table << "\n";

  std::cout
      << "Simultaneous stalls behind one reduction fence overlap instead of\n"
         "accumulating: the propagated cost is set by the slowest victim, so\n"
         "it stays near one delay's worth while the injected total grows\n"
         "linearly with the victim count — which is why a machine-wide noise\n"
         "event costs a bulk-synchronous code one delay, not thousands, and\n"
         "why a single unlucky rank hurts exactly as much as a thousand.\n";
  return 0;
}
