// Model explorer: a command-line front end to the calibrated model —
// the utility a performance engineer keeps in PATH. Calibrates once
// (or loads a saved table), prints a full prediction breakdown for any
// configuration, and optionally saves/loads the calibration.
//
// Usage:
//   model_explorer [--cells N | --deck small|medium|large]
//                  [--pes P] [--mode homo|hetero|mesh]
//                  [--save-costs FILE | --load-costs FILE]
//                  [--machine es45|upgrade]
//
// Examples:
//   model_explorer --deck large --pes 512
//   model_explorer --cells 1000000 --pes 1024 --mode hetero
//   model_explorer --deck medium --pes 128 --mode mesh   # real partition

#include <iostream>
#include <optional>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/model.hpp"
#include "core/table_io.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/costmodel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace krak;
  const util::ArgParser args(argc, argv);

  const std::string deck_name = args.get_string("deck", "medium");
  mesh::DeckSize size = mesh::DeckSize::kMedium;
  if (deck_name == "small") size = mesh::DeckSize::kSmall;
  if (deck_name == "large") size = mesh::DeckSize::kLarge;
  const std::int64_t cells =
      args.get_int("cells", mesh::standard_deck_cells(size));
  const auto pes = static_cast<std::int32_t>(args.get_int("pes", 256));
  const std::string mode_name = args.get_string("mode", "homo");

  // Calibration: load from disk if asked, otherwise run Method 2 and
  // optionally persist it.
  core::CostTable costs;
  if (args.has("load-costs")) {
    costs = core::load_cost_table(args.get_string("load-costs", ""));
    std::cout << "Loaded calibration from "
              << args.get_string("load-costs", "") << "\n";
  } else {
    const simapp::ComputationCostEngine application;
    costs = core::calibrate_from_input(
        application, mesh::make_standard_deck(mesh::DeckSize::kMedium),
        {8, 64, 512, 4096});
    if (args.has("save-costs")) {
      core::save_cost_table(args.get_string("save-costs", ""), costs);
      std::cout << "Saved calibration to "
                << args.get_string("save-costs", "") << "\n";
    }
  }

  const network::MachineConfig machine =
      args.get_string("machine", "es45") == "upgrade"
          ? network::make_hypothetical_upgrade()
          : network::make_es45_qsnet();
  const core::KrakModel model(costs, machine);

  const mesh::InputDeck deck = mesh::make_standard_deck(size);
  std::optional<partition::Partition> part;
  if (mode_name == "mesh") {
    part = partition::partition_deck(deck, pes,
                                     partition::PartitionMethod::kMultilevel, 1);
  }

  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  if (part) lint_input.partition = &*part;
  lint_input.machine = &machine;
  lint_input.costs = &costs;
  lint_input.pes = pes;
  const analyze::LintGateOutcome lint =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (lint != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(lint);
  }

  core::PredictionReport report;
  if (mode_name == "mesh") {
    report = model.predict_mesh_specific(deck, *part);
    std::cout << "Mesh-specific prediction (" << deck.name() << ", real "
              << "multilevel partition) on " << machine.name << ":\n";
  } else {
    const core::GeneralModelMode mode =
        (mode_name == "hetero") ? core::GeneralModelMode::kHeterogeneous
                                : core::GeneralModelMode::kHomogeneous;
    report = model.predict_general(cells, pes, mode);
    std::cout << "General-model prediction ("
              << core::general_model_mode_name(mode) << ", " << cells
              << " cells) on " << machine.name << ":\n";
  }
  std::cout << pes << " processors\n\n" << report.to_string();

  std::cout << "\nPer-phase computation:\n";
  util::TextTable table({"Phase", "Time", "Share of computation"});
  for (std::size_t p = 0; p < simapp::kPhaseCount; ++p) {
    table.add_row({std::to_string(p + 1),
                   util::format_us(report.phase_computation[p], 1),
                   util::format_percent(report.phase_computation[p] /
                                        report.computation)});
  }
  std::cout << table;
  return 0;
}
