// Procurement study: the paper's opening motivation — "expectation of
// future workload performance is often a primary criterion in the
// procurement of a new large-scale parallel machine". This example uses
// the calibrated general model to compare the installed ES-45/QsNet
// machine against a hypothetical upgrade (2x compute, 2x network)
// WITHOUT running the application on either: predicted iteration times,
// speedups, and the scale at which the upgrade pays off most.

#include <iostream>
#include <vector>

#include "analyze/lint_cli.hpp"
#include "core/calibration.hpp"
#include "core/model.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace krak;
  const util::ArgParser args(argc, argv);

  const simapp::ComputationCostEngine application;
  const mesh::InputDeck deck = mesh::make_standard_deck(mesh::DeckSize::kLarge);
  const core::CostTable costs = core::calibrate_from_input(
      application, mesh::make_standard_deck(mesh::DeckSize::kMedium),
      {8, 64, 512, 4096});

  const core::KrakModel installed(costs, network::make_es45_qsnet());
  const core::KrakModel candidate(costs, network::make_hypothetical_upgrade());

  // Lint against the candidate machine too: a procurement run with a
  // mistyped upgrade description is exactly what the gate is for.
  analyze::LintInput lint_input;
  lint_input.deck = &deck;
  lint_input.machine = &installed.machine();
  lint_input.costs = &costs;
  lint_input.pes = 1024;
  const analyze::LintGateOutcome first =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (first == analyze::LintGateOutcome::kExitError) {
    return analyze::lint_exit_code(first);
  }
  lint_input.machine = &candidate.machine();
  const analyze::LintGateOutcome second =
      analyze::run_lint_gate(args, lint_input, std::cout);
  if (second != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(second);
  }
  if (first != analyze::LintGateOutcome::kProceed) {
    return analyze::lint_exit_code(first);
  }

  std::cout << "Procurement study: large problem ("
            << deck.grid().num_cells() << " cells), "
            << installed.machine().name << " vs. "
            << candidate.machine().name << "\n\n";

  util::TextTable table({"PEs", "Installed (ms)", "Candidate (ms)", "Speedup",
                         "Installed comm %", "Candidate comm %"});
  double best_speedup = 0.0;
  std::int32_t best_pes = 0;
  for (std::int32_t pes = 16; pes <= 1024; pes *= 2) {
    const auto base = installed.predict_general(
        deck.grid().num_cells(), pes, core::GeneralModelMode::kHomogeneous);
    const auto next = candidate.predict_general(
        deck.grid().num_cells(), pes, core::GeneralModelMode::kHomogeneous);
    const double speedup = base.total() / next.total();
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_pes = pes;
    }
    table.add_row(
        {std::to_string(pes), util::format_double(base.total() * 1e3, 1),
         util::format_double(next.total() * 1e3, 1),
         util::format_double(speedup, 2) + "x",
         util::format_percent(base.communication() / base.total()),
         util::format_percent(next.communication() / next.total())});
  }
  std::cout << table;

  std::cout << "\nBest predicted upgrade speedup: "
            << util::format_double(best_speedup, 2) << "x at " << best_pes
            << " PEs.\n";
  std::cout << "Note the speedup is below the 2x component gains wherever\n"
               "communication latency (which the upgrade halves but cannot\n"
               "remove) holds a larger share of the iteration.\n";

  // What if only the network were upgraded? A cheaper option to price.
  network::MachineConfig net_only = network::make_es45_qsnet();
  net_only.name = "NetOnly-2x";
  net_only.network = net_only.network.scaled(0.5, 0.5);
  const core::KrakModel net_model(costs, net_only);
  std::cout << "\nNetwork-only upgrade option at 512 PEs: ";
  const double base_512 =
      installed
          .predict_general(deck.grid().num_cells(), 512,
                           core::GeneralModelMode::kHomogeneous)
          .total();
  const double net_512 =
      net_model
          .predict_general(deck.grid().num_cells(), 512,
                           core::GeneralModelMode::kHomogeneous)
          .total();
  std::cout << util::format_double(base_512 / net_512, 2) << "x speedup ("
            << util::format_ms(net_512, 1) << " per iteration)\n";
  return 0;
}
