# Sanitizer presets for the krakmodel build.
#
# Usage:
#   cmake -B build-asan -S . -DKRAK_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DKRAK_SANITIZE=thread
#
# The selected sanitizers are carried by the `krak_sanitizers` INTERFACE
# target, which every krak_* library links PUBLIC so the flags propagate
# to every object file and final link (tests, examples, benches). Mixing
# sanitized and unsanitized translation units produces false positives,
# so per-target opt-out is deliberately not offered.
#
# Supported values: address, undefined, leak, thread. `thread` cannot be
# combined with `address` or `leak` (the runtimes are mutually
# exclusive); configuring such a combination is a hard error.

set(KRAK_SANITIZE "" CACHE STRING
    "Semicolon- or comma-separated sanitizer list (address;undefined | thread)")

add_library(krak_sanitizers INTERFACE)

if(KRAK_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "KRAK_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()

  string(REPLACE "," ";" _krak_san_list "${KRAK_SANITIZE}")
  set(_krak_san_known address undefined leak thread)
  foreach(_san IN LISTS _krak_san_list)
    if(NOT _san IN_LIST _krak_san_known)
      message(FATAL_ERROR
        "Unknown sanitizer '${_san}' in KRAK_SANITIZE; "
        "supported: ${_krak_san_known}")
    endif()
  endforeach()

  if("thread" IN_LIST _krak_san_list)
    foreach(_clash address leak)
      if("${_clash}" IN_LIST _krak_san_list)
        message(FATAL_ERROR
          "KRAK_SANITIZE=thread cannot be combined with '${_clash}'")
      endif()
    endforeach()
  endif()

  string(REPLACE ";" "," _krak_san_csv "${_krak_san_list}")
  set(_krak_san_flags
    -fsanitize=${_krak_san_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_compile_options(krak_sanitizers INTERFACE ${_krak_san_flags})
  target_link_options(krak_sanitizers INTERFACE -fsanitize=${_krak_san_csv})

  # Sanitized builds want symbols even when the cache was configured
  # Release; -g is additive and harmless elsewhere.
  target_compile_options(krak_sanitizers INTERFACE -g)

  message(STATUS "krakmodel: sanitizers enabled: ${_krak_san_csv}")
endif()
