# Static-analysis targets (see docs/STATIC_ANALYSIS.md):
#
#   krak_lint_check  runs the project's own analyzer over the checkout
#   tidy             runs clang-tidy with the repo-root .clang-tidy
#   lint             aggregate: both of the above
#
#   cmake -B build -S .
#   cmake --build build --target lint
#
# When clang-tidy is not installed the `tidy` target still exists but
# reports how to get it, so `--target tidy` never breaks a scripted
# pipeline by being undefined. CI runs the aggregate with warnings
# promoted to errors (see .github/workflows/ci.yml).

find_program(KRAK_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
             clang-tidy-16 clang-tidy-15 DOC "clang-tidy executable")

file(GLOB_RECURSE KRAK_TIDY_SOURCES CONFIGURE_DEPENDS
     ${PROJECT_SOURCE_DIR}/src/*.cpp)

if(KRAK_CLANG_TIDY_EXE)
  add_custom_target(tidy
    COMMAND ${KRAK_CLANG_TIDY_EXE}
            -p ${CMAKE_BINARY_DIR}
            --quiet
            ${KRAK_TIDY_SOURCES}
    WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
    COMMENT "Running clang-tidy over src/ (config: .clang-tidy)"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
      "clang-tidy not found; install it (apt install clang-tidy) and re-run cmake"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "clang-tidy unavailable"
    VERBATIM)
endif()

# The project's own analyzer (src/lint) over the whole checkout. Exits
# non-zero on any finding, so `--target krak_lint_check` is a gate.
add_custom_target(krak_lint_check
  COMMAND $<TARGET_FILE:krak_lint_cli> --root ${PROJECT_SOURCE_DIR}
  COMMENT "Running krak_lint over the source tree"
  VERBATIM)
add_dependencies(krak_lint_check krak_lint_cli)

# Aggregate gate: everything a PR must pass before review. krak_lint
# first (fast, no compile database needed), then clang-tidy.
add_custom_target(lint)
add_dependencies(lint krak_lint_check tidy)
