# clang-tidy integration: a `tidy` build target that runs the checks of
# the repo-root .clang-tidy over every library source file, using the
# compile database exported by this build tree.
#
#   cmake -B build -S .
#   cmake --build build --target tidy
#
# When clang-tidy is not installed the target still exists but reports
# how to get it, so `--target tidy` never breaks a scripted pipeline by
# being undefined. CI runs it with warnings promoted to errors (see
# .github/workflows/ci.yml).

find_program(KRAK_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
             clang-tidy-16 clang-tidy-15 DOC "clang-tidy executable")

file(GLOB_RECURSE KRAK_TIDY_SOURCES CONFIGURE_DEPENDS
     ${PROJECT_SOURCE_DIR}/src/*.cpp)

if(KRAK_CLANG_TIDY_EXE)
  add_custom_target(tidy
    COMMAND ${KRAK_CLANG_TIDY_EXE}
            -p ${CMAKE_BINARY_DIR}
            --quiet
            ${KRAK_TIDY_SOURCES}
    WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
    COMMENT "Running clang-tidy over src/ (config: .clang-tidy)"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
      "clang-tidy not found; install it (apt install clang-tidy) and re-run cmake"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "clang-tidy unavailable"
    VERBATIM)
endif()
