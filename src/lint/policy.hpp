#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

namespace krak::lint {

/// Effective lint policy for one directory subtree.
///
/// Policies come from `.kraklint` files: the file in a directory
/// overlays the policy inherited from its parent, key by key, so a
/// subtree can e.g. stay `deterministic` while adding `clock-exempt`.
/// The format is line-based (see docs/STATIC_ANALYSIS.md):
///
///   # comment
///   deterministic true
///   clock-exempt true
///   todo-budget 10
///   disable rule-id [rule-id ...]
///   enable rule-id [rule-id ...]
struct Policy {
  /// Tree must be bit-reproducible: unordered-iteration and
  /// pointer-keyed-container rules apply.
  bool deterministic = false;
  /// Tree may read wall clocks (the obs/util probes own the clock).
  bool clock_exempt = false;
  /// Maximum task-marker count across the whole scan; < 0 = unlimited.
  /// Only the root policy's budget is consulted.
  std::int64_t todo_budget = -1;
  /// Rule ids switched off for the tree.
  std::set<std::string, std::less<>> disabled;

  [[nodiscard]] bool rule_enabled(std::string_view rule) const {
    return disabled.find(rule) == disabled.end();
  }
};

/// Overlay the directives in `text` (one `.kraklint` file) onto `base`.
/// Throws util::InvalidArgument naming `origin` and the line on unknown
/// keys, unknown rule ids, or unparsable values — a broken policy file
/// must never silently widen what the analyzer accepts.
[[nodiscard]] Policy apply_policy_text(const Policy& base,
                                       std::string_view text,
                                       std::string_view origin);

/// apply_policy_text over a file's contents. Throws util::KrakError
/// when the file cannot be read.
[[nodiscard]] Policy apply_policy_file(const Policy& base,
                                       const std::string& path);

}  // namespace krak::lint
