#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace krak::lint {

/// One physical source line split into the channels the rules care
/// about. `code` preserves column positions of every code token —
/// comment bodies and string/character-literal interiors are blanked
/// with spaces (the delimiting quotes survive, so tokens never fuse
/// across a removed literal). `comment` holds the concatenated comment
/// text of the line, which the annotation and task-marker rules scan.
struct SourceLine {
  std::string code;
  std::string comment;
  /// The untouched physical line — include directives re-read their
  /// quoted target from here, since the code channel blanks it.
  std::string raw;
};

/// One parsed suppression marker (see docs/STATIC_ANALYSIS.md for the
/// syntax). A marker that does not parse — missing rule id, missing
/// reason, unbalanced parenthesis — is kept with `malformed = true` so
/// the bad-suppression rule can point at it.
struct Suppression {
  std::string rule;
  std::string reason;
  bool malformed = false;
};

/// A scanned translation unit: the line model plus the per-line
/// suppressions extracted from its comments. Line numbers are 1-based
/// everywhere; `lines[i]` is physical line `i + 1`.
struct ScannedFile {
  std::string path;
  bool is_header = false;
  std::vector<SourceLine> lines;
  /// suppressions[i] are the markers written on physical line i + 1.
  std::vector<std::vector<Suppression>> suppressions;

  [[nodiscard]] const SourceLine& line(std::size_t number) const;

  /// True when `rule` is allowed (well-formed marker) on `number` or on
  /// the line directly above it — the two placements the syntax accepts.
  [[nodiscard]] bool is_suppressed(std::string_view rule,
                                   std::size_t number) const;
};

/// Tokenize `content` as C++: tracks line comments, block comments,
/// string/character literals (including raw strings), splits each line
/// into code and comment channels, and extracts suppression markers.
/// `path` is carried through for diagnostics; headers are recognized by
/// extension (.hpp/.h/.hxx).
[[nodiscard]] ScannedFile scan_source(std::string path,
                                      std::string_view content);

}  // namespace krak::lint
