#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace krak::lint {

/// One analyzer finding. Every finding is a gate failure — krak_lint
/// has no warning tier, because a rule either encodes an invariant the
/// project relies on or it should not exist.
struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based; 0 for tree-level findings.
  std::string message;
};

/// The result of one analyzer run: findings in scan order (path, then
/// line), plus enough context to render the report.
struct LintReport {
  std::string root;
  std::size_t files_scanned = 0;
  std::vector<Finding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }

  /// Findings per rule id, sorted by rule.
  [[nodiscard]] std::map<std::string, std::size_t> counts_by_rule() const;

  /// Human-readable report: one `path:line: [rule] message` line per
  /// finding plus a trailing summary.
  [[nodiscard]] std::string to_text() const;

  /// Machine-readable report (schema `krak-lint-v1`): schema, root,
  /// files_scanned, clean, counts, findings[{rule,path,line,message}].
  [[nodiscard]] obs::Json to_json() const;
};

}  // namespace krak::lint
