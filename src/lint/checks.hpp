#pragma once

#include <cstdint>
#include <vector>

#include "lint/finding.hpp"
#include "lint/policy.hpp"
#include "lint/scanner.hpp"

namespace krak::lint {

/// Findings for one file plus the inputs the tree-level rules need.
struct FileLintResult {
  std::vector<Finding> findings;
  /// Task-marker occurrences (well-formed or not) — summed across the
  /// scan and checked against the root policy's todo-budget.
  std::int64_t todo_count = 0;
};

/// Run every enabled per-file rule over a scanned file under `policy`.
/// Suppressed findings are already filtered out; findings arrive in
/// line order.
[[nodiscard]] FileLintResult lint_source_file(const ScannedFile& file,
                                              const Policy& policy);

}  // namespace krak::lint
