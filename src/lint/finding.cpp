#include "lint/finding.hpp"

#include <sstream>

namespace krak::lint {

std::map<std::string, std::size_t> LintReport::counts_by_rule() const {
  std::map<std::string, std::size_t> counts;
  for (const Finding& finding : findings) ++counts[finding.rule];
  return counts;
}

std::string LintReport::to_text() const {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    out << finding.path;
    if (finding.line > 0) out << ":" << finding.line;
    out << ": [" << finding.rule << "] " << finding.message << "\n";
  }
  out << "krak_lint: " << files_scanned << " files, " << findings.size()
      << (findings.size() == 1 ? " finding" : " findings");
  if (!findings.empty()) {
    out << " (";
    bool first = true;
    for (const auto& [rule, count] : counts_by_rule()) {
      if (!first) out << ", ";
      first = false;
      out << rule << " x" << count;
    }
    out << ")";
  }
  out << "\n";
  return out.str();
}

obs::Json LintReport::to_json() const {
  obs::Json doc = obs::Json::object();
  doc["schema"] = "krak-lint-v1";
  doc["root"] = root;
  doc["files_scanned"] = static_cast<std::int64_t>(files_scanned);
  doc["clean"] = clean();
  obs::Json counts = obs::Json::object();
  for (const auto& [rule, count] : counts_by_rule()) {
    counts[rule] = static_cast<std::int64_t>(count);
  }
  doc["counts"] = std::move(counts);
  obs::Json list = obs::Json::array();
  for (const Finding& finding : findings) {
    obs::Json entry = obs::Json::object();
    entry["rule"] = finding.rule;
    entry["path"] = finding.path;
    entry["line"] = static_cast<std::int64_t>(finding.line);
    entry["message"] = finding.message;
    list.push_back(std::move(entry));
  }
  doc["findings"] = std::move(list);
  return doc;
}

}  // namespace krak::lint
