// krak_lint: project-invariant static analyzer (docs/STATIC_ANALYSIS.md).
//
// Scans src/, tests/, bench/, and examples/ under the repository root
// and enforces the project rules no generic tool checks: banned
// nondeterminism sources, contract-macro hygiene, ThreadPool task
// exception safety, header hygiene, obs probes on hot paths, and the
// task-marker budget. Policy comes from per-directory .kraklint files.
//
//   krak_lint                      # lint the current directory
//   krak_lint --root /path/to/repo
//   krak_lint --format json        # machine-readable report on stdout
//   krak_lint --json FILE          # text on stdout, JSON to FILE
//   krak_lint --list-rules
//
// Exit status: 0 when the tree is clean, 1 on findings, 2 on usage or
// I/O errors.

#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "lint/finding.hpp"
#include "lint/repo.hpp"
#include "lint/rules.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace krak;

constexpr const char* kUsage =
    "usage: krak_lint [--root DIR] [--format text|json] [--json FILE]\n"
    "                 [--list-rules]\n";

int run(const util::ArgParser& args) {
  if (args.has("list-rules")) {
    for (const lint::RuleInfo& info : lint::rule_catalog()) {
      std::cout << info.id << ": " << info.summary << "\n";
    }
    return 0;
  }

  const std::string format = args.get_string("format", "text");
  if (format != "text" && format != "json") {
    std::cerr << kUsage;
    return 2;
  }

  const std::string root = args.get_string("root", ".");
  const lint::LintReport report = lint::lint_tree(root);

  if (args.has("json")) {
    const std::string path = args.get_string("json", "");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "krak_lint: cannot write '" << path << "'\n";
      return 2;
    }
    out << report.to_json().dump(2) << "\n";
  }
  if (format == "json") {
    std::cout << report.to_json().dump(2) << "\n";
  } else {
    std::cout << report.to_text();
  }
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::ArgParser(argc, argv));
  } catch (const util::KrakError& error) {
    std::cerr << "krak_lint: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "krak_lint: unexpected error: " << error.what() << "\n";
    return 2;
  }
}
