#include "lint/checks.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <string_view>

#include "lint/rules.hpp"

namespace krak::lint {

namespace {

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

/// The file's code channel joined into one string, with offset -> line
/// mapping. Rules that span lines (balanced parentheses, template
/// argument lists, function bodies) run on this.
struct FlatCode {
  std::string text;
  std::vector<std::size_t> line_start;  // offset of line i + 1's first char

  explicit FlatCode(const ScannedFile& file) {
    for (const SourceLine& line : file.lines) {
      line_start.push_back(text.size());
      text += line.code;
      text += '\n';
    }
    if (line_start.empty()) line_start.push_back(0);
  }

  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(),
                                     offset);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

/// Next occurrence of `word` at or after `from` with non-identifier
/// characters on both sides; npos when absent.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string_view::npos;
}

/// True when the word at `pos` is written as a member access
/// (`x.word`, `x->word`) — those name project methods, not the banned
/// free/std functions.
bool is_member_access(std::string_view text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(text[i - 1])) != 0) {
    --i;
  }
  if (i == 0) return false;
  if (text[i - 1] == '.') return true;
  return text[i - 1] == '>' && i >= 2 && text[i - 2] == '-';
}

/// True when `word` at `pos` is immediately called: optional whitespace
/// then an opening parenthesis.
bool is_call(std::string_view text, std::size_t pos, std::size_t word_size) {
  std::size_t i = pos + word_size;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  return i < text.size() && text[i] == '(';
}

/// Offset of the parenthesis closing the one at `open`; npos when the
/// file ends first. Literal contents are already blanked, so counting
/// is exact.
std::size_t match_paren(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// Offset of the `>` closing the template argument list opened at
/// `open`; `->` arrows are skipped, `>>` closes two levels.
std::size_t match_angle(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') ++depth;
    if (c == '>') {
      if (i > 0 && text[i - 1] == '-') continue;  // ->
      if (--depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

/// First identifier token of `expr` ("deck.cells" -> "deck").
std::string_view leading_identifier(std::string_view expr) {
  expr = trim(expr);
  while (!expr.empty() && (expr.front() == '*' || expr.front() == '&')) {
    expr.remove_prefix(1);
  }
  std::size_t end = 0;
  while (end < expr.size() && is_ident_char(expr[end])) ++end;
  return expr.substr(0, end);
}

class FileLinter {
 public:
  FileLinter(const ScannedFile& file, const Policy& policy)
      : file_(file), policy_(policy), flat_(file) {}

  FileLintResult run() {
    check_banned_tokens();
    check_deterministic_containers();
    check_threadpool_tasks();
    check_headers();
    check_includes();
    check_hot_annotations();
    check_todos();
    check_suppressions();
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(result_);
  }

 private:
  void add(std::string_view rule, std::size_t line, std::string message) {
    if (!policy_.rule_enabled(rule)) return;
    if (file_.is_suppressed(rule, line)) return;
    result_.findings.push_back(
        Finding{std::string(rule), file_.path, line, std::move(message)});
  }

  /// Flag every called/used occurrence of a banned token.
  void flag_calls(std::string_view word, std::string_view rule,
                  const std::string& message) {
    if (!policy_.rule_enabled(rule)) return;
    const std::string_view text = flat_.text;
    for (std::size_t pos = find_word(text, word, 0);
         pos != std::string_view::npos;
         pos = find_word(text, word, pos + word.size())) {
      if (is_member_access(text, pos)) continue;
      if (!is_call(text, pos, word.size())) continue;
      add(rule, flat_.line_of(pos), message);
    }
  }

  void flag_words(std::string_view word, std::string_view rule,
                  const std::string& message) {
    if (!policy_.rule_enabled(rule)) return;
    const std::string_view text = flat_.text;
    for (std::size_t pos = find_word(text, word, 0);
         pos != std::string_view::npos;
         pos = find_word(text, word, pos + word.size())) {
      add(rule, flat_.line_of(pos), message);
    }
  }

  void check_banned_tokens() {
    flag_words("random_device", rules::kNoRandomDevice,
               "std::random_device is nondeterministic; seed a util::Rng "
               "instead");
    flag_calls("rand", rules::kNoStdRand,
               "std::rand is banned; draw from a seeded util::Rng");
    flag_calls("srand", rules::kNoStdRand,
               "srand is banned; seed a util::Rng instead");

    if (!policy_.clock_exempt) {
      const std::string clock_message =
          "wall-clock read outside a clock-exempt tree; use util::Stopwatch "
          "or an obs timer";
      flag_words("steady_clock", rules::kNoWallClock, clock_message);
      flag_words("system_clock", rules::kNoWallClock, clock_message);
      flag_words("high_resolution_clock", rules::kNoWallClock, clock_message);
      flag_calls("time", rules::kNoWallClock, clock_message);
      flag_calls("clock", rules::kNoWallClock, clock_message);
      flag_calls("gettimeofday", rules::kNoWallClock, clock_message);
      flag_calls("clock_gettime", rules::kNoWallClock, clock_message);
      flag_calls("timespec_get", rules::kNoWallClock, clock_message);
    }

    flag_calls("assert", rules::kNoNakedAssert,
               "naked assert() compiles out under NDEBUG; use KRAK_ASSERT "
               "or KRAK_REQUIRE");
    const std::string abort_message =
        "process teardown bypasses destructors and sweep recovery; throw "
        "KrakError instead";
    flag_calls("abort", rules::kNoAbort, abort_message);
    flag_calls("terminate", rules::kNoAbort, abort_message);
    flag_calls("exit", rules::kNoAbort, abort_message);
    flag_calls("quick_exit", rules::kNoAbort, abort_message);
    flag_calls("_Exit", rules::kNoAbort, abort_message);
  }

  /// Names declared in this file with an unordered container type.
  std::set<std::string, std::less<>> unordered_names() const {
    std::set<std::string, std::less<>> names;
    const std::string_view text = flat_.text;
    for (const std::string_view container :
         {std::string_view("unordered_map"),
          std::string_view("unordered_set")}) {
      for (std::size_t pos = find_word(text, container, 0);
           pos != std::string_view::npos;
           pos = find_word(text, container, pos + container.size())) {
        std::size_t open = pos + container.size();
        while (open < text.size() &&
               std::isspace(static_cast<unsigned char>(text[open])) != 0) {
          ++open;
        }
        if (open >= text.size() || text[open] != '<') continue;
        const std::size_t close = match_angle(text, open);
        if (close == std::string_view::npos) continue;
        std::size_t name_begin = close + 1;
        while (name_begin < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[name_begin])) !=
                    0 ||
                text[name_begin] == '&' || text[name_begin] == '*')) {
          ++name_begin;
        }
        std::size_t name_end = name_begin;
        while (name_end < text.size() && is_ident_char(text[name_end])) {
          ++name_end;
        }
        if (name_end > name_begin) {
          names.insert(std::string(text.substr(name_begin,
                                               name_end - name_begin)));
        }
      }
    }
    return names;
  }

  void check_deterministic_containers() {
    if (!policy_.deterministic) return;
    const std::string_view text = flat_.text;

    if (policy_.rule_enabled(rules::kNoUnorderedIteration)) {
      const std::set<std::string, std::less<>> names = unordered_names();
      // Range-for over an unordered container declared in this file.
      for (std::size_t pos = find_word(text, "for", 0);
           pos != std::string_view::npos;
           pos = find_word(text, "for", pos + 3)) {
        if (!is_call(text, pos, 3)) continue;
        const std::size_t open = text.find('(', pos);
        const std::size_t close = match_paren(text, open);
        if (close == std::string_view::npos) continue;
        const std::string_view inside = text.substr(open + 1,
                                                    close - open - 1);
        // The range expression follows the single top-level colon.
        std::size_t colon = std::string_view::npos;
        for (std::size_t i = 0; i < inside.size(); ++i) {
          if (inside[i] != ':') continue;
          const bool double_colon =
              (i + 1 < inside.size() && inside[i + 1] == ':') ||
              (i > 0 && inside[i - 1] == ':');
          if (!double_colon) {
            colon = i;
            break;
          }
        }
        if (colon == std::string_view::npos) continue;
        const std::string_view range_ident =
            leading_identifier(inside.substr(colon + 1));
        if (!range_ident.empty() && names.count(range_ident) > 0) {
          add(rules::kNoUnorderedIteration, flat_.line_of(open),
              "iteration over unordered container '" +
                  std::string(range_ident) +
                  "' leaks hash order into a deterministic tree");
        }
      }
      // Explicit iterator walks over the same names.
      for (const std::string& name : names) {
        for (const std::string_view method :
             {std::string_view(".begin"), std::string_view(".cbegin")}) {
          const std::string needle = name + std::string(method);
          std::size_t pos = 0;
          while ((pos = text.find(needle, pos)) != std::string_view::npos) {
            const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
            if (left_ok && is_call(text, pos, needle.size())) {
              add(rules::kNoUnorderedIteration, flat_.line_of(pos),
                  "iteration over unordered container '" + name +
                      "' leaks hash order into a deterministic tree");
            }
            pos += needle.size();
          }
        }
      }
    }

    if (policy_.rule_enabled(rules::kNoPointerKeyedContainer)) {
      for (const std::string_view container :
           {std::string_view("map"), std::string_view("set"),
            std::string_view("unordered_map"),
            std::string_view("unordered_set")}) {
        for (std::size_t pos = find_word(text, container, 0);
             pos != std::string_view::npos;
             pos = find_word(text, container, pos + container.size())) {
          std::size_t open = pos + container.size();
          if (open >= text.size() || text[open] != '<') continue;
          const std::size_t close = match_angle(text, open);
          if (close == std::string_view::npos) continue;
          // First template argument: up to the top-level comma or the
          // closing angle bracket.
          std::size_t arg_end = close;
          int angle_depth = 0;
          int paren_depth = 0;
          for (std::size_t i = open + 1; i < close; ++i) {
            const char c = text[i];
            if (c == '<') ++angle_depth;
            if (c == '>' && text[i - 1] != '-') --angle_depth;
            if (c == '(') ++paren_depth;
            if (c == ')') --paren_depth;
            if (c == ',' && angle_depth == 0 && paren_depth == 0) {
              arg_end = i;
              break;
            }
          }
          const std::string_view key =
              trim(text.substr(open + 1, arg_end - open - 1));
          if (key.find('*') != std::string_view::npos) {
            add(rules::kNoPointerKeyedContainer, flat_.line_of(pos),
                "associative container keyed by pointer ('" +
                    std::string(key) +
                    "') orders by address, which varies run to run");
          }
        }
      }
    }
  }

  void check_threadpool_tasks() {
    if (!policy_.rule_enabled(rules::kThreadpoolTaskThrow)) return;
    const std::string_view text = flat_.text;
    for (std::size_t pos = find_word(text, "submit", 0);
         pos != std::string_view::npos;
         pos = find_word(text, "submit", pos + 6)) {
      if (!is_call(text, pos, 6)) continue;
      const std::size_t open = text.find('(', pos);
      const std::size_t close = match_paren(text, open);
      if (close == std::string_view::npos) continue;
      const std::string_view task = text.substr(open + 1, close - open - 1);
      if (find_word(task, "try", 0) != std::string_view::npos) continue;
      for (const std::string_view thrower :
           {std::string_view("throw"), std::string_view("KRAK_REQUIRE"),
            std::string_view("KRAK_ASSERT"), std::string_view("span_at")}) {
        const std::size_t hit = find_word(task, thrower, 0);
        if (hit == std::string_view::npos) continue;
        add(rules::kThreadpoolTaskThrow, flat_.line_of(open + 1 + hit),
            "'" + std::string(thrower) +
                "' can throw out of a ThreadPool::submit task, which "
                "terminates the process; catch inside the task or use "
                "parallel_for");
      }
    }
  }

  void check_headers() {
    if (!file_.is_header) return;
    if (policy_.rule_enabled(rules::kPragmaOnce)) {
      bool found = false;
      std::size_t first_code_line = 0;
      for (std::size_t i = 0; i < file_.lines.size(); ++i) {
        const std::string_view code = trim(file_.lines[i].code);
        if (code.empty()) continue;
        found = code == "#pragma once";
        first_code_line = i + 1;
        break;
      }
      if (!found) {
        add(rules::kPragmaOnce,
            first_code_line == 0 ? 1 : first_code_line,
            "header does not open with #pragma once");
      }
    }
    if (policy_.rule_enabled(rules::kNoUsingNamespaceHeader)) {
      const std::string_view text = flat_.text;
      for (std::size_t pos = find_word(text, "using", 0);
           pos != std::string_view::npos;
           pos = find_word(text, "using", pos + 5)) {
        std::size_t next = pos + 5;
        while (next < text.size() &&
               std::isspace(static_cast<unsigned char>(text[next])) != 0) {
          ++next;
        }
        if (text.compare(next, 9, "namespace") == 0 &&
            (next + 9 >= text.size() || !is_ident_char(text[next + 9]))) {
          add(rules::kNoUsingNamespaceHeader, flat_.line_of(pos),
              "using namespace in a header pollutes every includer");
        }
      }
    }
  }

  /// The include target of a line, or empty when it is not an include.
  static std::string_view include_target(std::string_view code) {
    code = trim(code);
    if (code.empty() || code.front() != '#') return {};
    code.remove_prefix(1);
    code = trim(code);
    if (code.substr(0, 7) != "include") return {};
    code = trim(code.substr(7));
    if (code.size() < 2) return {};
    if (code.front() == '"') {
      const std::size_t end = code.find('"', 1);
      return end == std::string_view::npos ? std::string_view{}
                                           : code.substr(1, end - 1);
    }
    if (code.front() == '<') {
      const std::size_t end = code.find('>', 1);
      return end == std::string_view::npos ? std::string_view{}
                                           : code.substr(1, end - 1);
    }
    return {};
  }

  static std::string_view basename(std::string_view path) {
    const std::size_t slash = path.rfind('/');
    return slash == std::string_view::npos ? path : path.substr(slash + 1);
  }

  void check_includes() {
    std::set<std::string, std::less<>> seen;
    for (std::size_t i = 0; i < file_.lines.size(); ++i) {
      // The code channel (comments stripped) decides whether the line
      // is a live include; the raw line supplies the quoted target,
      // which the scanner blanked as a string literal.
      const std::string_view code = trim(file_.lines[i].code);
      if (code.substr(0, 1) != "#" ||
          trim(code.substr(1)).substr(0, 7) != "include") {
        continue;
      }
      const std::string_view target = include_target(file_.lines[i].raw);
      if (target.empty()) continue;
      if (!seen.insert(std::string(target)).second) {
        add(rules::kNoDuplicateInclude, i + 1,
            "'" + std::string(target) + "' is already included above");
      }
      if (file_.is_header &&
          policy_.rule_enabled(rules::kNoSelfInclude) &&
          basename(target) == basename(file_.path)) {
        add(rules::kNoSelfInclude, i + 1,
            "header includes itself ('" + std::string(target) + "')");
      }
    }
  }

  void check_hot_annotations() {
    if (!policy_.rule_enabled(rules::kHotPathProbe)) return;
    const std::string hot_marker = std::string("krak") + ": hot";
    const std::string_view text = flat_.text;
    for (std::size_t i = 0; i < file_.lines.size(); ++i) {
      if (file_.lines[i].comment.find(hot_marker) == std::string::npos) {
        continue;
      }
      const std::size_t from = flat_.line_start[i];
      const std::size_t open = text.find('{', from);
      bool has_probe = false;
      if (open != std::string_view::npos) {
        int depth = 0;
        std::size_t body_end = text.size();
        for (std::size_t j = open; j < text.size(); ++j) {
          if (text[j] == '{') ++depth;
          if (text[j] == '}' && --depth == 0) {
            body_end = j;
            break;
          }
        }
        const std::string_view body = text.substr(open, body_end - open);
        has_probe =
            body.find("obs::") != std::string_view::npos ||
            body.find("global_registry") != std::string_view::npos ||
            find_word(body, "registry", 0) != std::string_view::npos;
      }
      if (!has_probe) {
        add(rules::kHotPathProbe, i + 1,
            "hot-annotated function registers no obs probe; perf PRs need "
            "baseline counters (docs/OBSERVABILITY.md)");
      }
    }
  }

  void check_todos() {
    for (std::size_t i = 0; i < file_.lines.size(); ++i) {
      const std::string& comment = file_.lines[i].comment;
      for (const std::string_view marker :
           {std::string_view("TODO"), std::string_view("FIXME")}) {
        for (std::size_t pos = find_word(comment, marker, 0);
             pos != std::string_view::npos;
             pos = find_word(comment, marker, pos + marker.size())) {
          ++result_.todo_count;
          std::size_t j = pos + marker.size();
          bool well_formed = false;
          if (j < comment.size() && comment[j] == '(') {
            const std::size_t close = comment.find(')', j + 1);
            if (close != std::string::npos &&
                !trim(std::string_view(comment).substr(j + 1, close - j - 1))
                     .empty() &&
                close + 1 < comment.size() && comment[close + 1] == ':') {
              well_formed = true;
            }
          }
          if (!well_formed) {
            add(rules::kTodoOwner, i + 1,
                std::string(marker) +
                    " without an owner; write " + std::string(marker) +
                    "(name): ...");
          }
        }
      }
    }
  }

  void check_suppressions() {
    if (!policy_.rule_enabled(rules::kBadSuppression)) return;
    for (std::size_t i = 0; i < file_.suppressions.size(); ++i) {
      for (const Suppression& sup : file_.suppressions[i]) {
        if (sup.malformed) {
          add(rules::kBadSuppression, i + 1,
              "malformed suppression marker (want: allow(rule-id reason))");
        } else if (!is_known_rule(sup.rule)) {
          add(rules::kBadSuppression, i + 1,
              "suppression names unknown rule '" + sup.rule + "'");
        }
      }
    }
  }

  const ScannedFile& file_;
  const Policy& policy_;
  FlatCode flat_;
  FileLintResult result_;
};

}  // namespace

FileLintResult lint_source_file(const ScannedFile& file,
                                const Policy& policy) {
  return FileLinter(file, policy).run();
}

}  // namespace krak::lint
