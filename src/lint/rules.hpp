#pragma once

#include <string_view>
#include <vector>

namespace krak::lint {

/// Stable machine-readable rule ids. The full catalog with rationale
/// lives in docs/STATIC_ANALYSIS.md; ids never change once shipped
/// because suppressions and CI greps key on them.
namespace rules {
inline constexpr std::string_view kNoRandomDevice = "no-random-device";
inline constexpr std::string_view kNoStdRand = "no-std-rand";
inline constexpr std::string_view kNoWallClock = "no-wall-clock";
inline constexpr std::string_view kNoUnorderedIteration =
    "no-unordered-iteration";
inline constexpr std::string_view kNoPointerKeyedContainer =
    "no-pointer-keyed-container";
inline constexpr std::string_view kNoNakedAssert = "no-naked-assert";
inline constexpr std::string_view kNoAbort = "no-abort";
inline constexpr std::string_view kThreadpoolTaskThrow =
    "threadpool-task-throw";
inline constexpr std::string_view kPragmaOnce = "pragma-once";
inline constexpr std::string_view kNoUsingNamespaceHeader =
    "no-using-namespace-header";
inline constexpr std::string_view kNoSelfInclude = "no-self-include";
inline constexpr std::string_view kNoDuplicateInclude =
    "no-duplicate-include";
inline constexpr std::string_view kHotPathProbe = "hot-path-probe";
inline constexpr std::string_view kTodoOwner = "todo-owner";
inline constexpr std::string_view kTodoBudget = "todo-budget";
inline constexpr std::string_view kBadSuppression = "bad-suppression";
}  // namespace rules

/// One catalog entry: the stable id plus the one-line summary the CLI
/// prints under --list-rules.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Every rule the analyzer implements, in catalog order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// True when `id` names a catalogued rule (suppressions and policy
/// `disable` lines must reference real rules).
[[nodiscard]] bool is_known_rule(std::string_view id);

}  // namespace krak::lint
