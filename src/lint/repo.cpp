#include "lint/repo.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/checks.hpp"
#include "lint/rules.hpp"
#include "lint/scanner.hpp"
#include "util/error.hpp"

namespace krak::lint {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPolicyFileName = ".kraklint";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::KrakError("cannot read '" + path.string() + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool has_extension(const fs::path& path,
                   const std::vector<std::string>& extensions) {
  const std::string ext = path.extension().string();
  return std::find(extensions.begin(), extensions.end(), ext) !=
         extensions.end();
}

/// Overlay the directory's policy file onto `base` when one exists.
Policy directory_policy(const Policy& base, const fs::path& dir) {
  const fs::path policy_path = dir / kPolicyFileName;
  if (!fs::exists(policy_path)) return base;
  return apply_policy_file(base, policy_path.string());
}

struct TreeWalker {
  const TreeLintOptions& options;
  const fs::path root;
  LintReport report;
  std::int64_t todo_count = 0;

  void walk(const fs::path& dir, const Policy& inherited) {
    const Policy policy = directory_policy(inherited, dir);
    // Sorted traversal keeps the report byte-stable across platforms
    // (directory_iterator order is unspecified).
    std::vector<fs::path> entries;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& path : entries) {
      const std::string name = path.filename().string();
      if (!name.empty() && name.front() == '.') continue;
      if (fs::is_directory(path)) {
        if (name == "build") continue;
        walk(path, policy);
      } else if (has_extension(path, options.extensions)) {
        lint_one(path, policy);
      }
    }
  }

  void lint_one(const fs::path& path, const Policy& policy) {
    const std::string display =
        fs::relative(path, root).generic_string();
    const ScannedFile scanned = scan_source(display, read_file(path));
    FileLintResult result = lint_source_file(scanned, policy);
    todo_count += result.todo_count;
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(result.findings.begin()),
                           std::make_move_iterator(result.findings.end()));
    ++report.files_scanned;
  }
};

}  // namespace

LintReport lint_tree(const std::string& root, const TreeLintOptions& options) {
  const fs::path root_path(root);
  if (!fs::is_directory(root_path)) {
    throw util::KrakError("lint root '" + root + "' is not a directory");
  }
  const Policy root_policy = directory_policy(Policy{}, root_path);

  TreeWalker walker{options, root_path, {}, 0};
  walker.report.root = root_path.generic_string();
  for (const std::string& subdir : options.subdirs) {
    const fs::path tree = root_path / subdir;
    if (!fs::is_directory(tree)) continue;
    walker.walk(tree, root_policy);
  }

  if (root_policy.rule_enabled(rules::kTodoBudget) &&
      root_policy.todo_budget >= 0 &&
      walker.todo_count > root_policy.todo_budget) {
    walker.report.findings.push_back(Finding{
        std::string(rules::kTodoBudget), walker.report.root, 0,
        "tree carries " + std::to_string(walker.todo_count) +
            " TODO/FIXME comments, over the budget of " +
            std::to_string(root_policy.todo_budget) +
            " (raise todo-budget in the root policy or burn some down)"});
  }
  return walker.report;
}

}  // namespace krak::lint
