#pragma once

#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/policy.hpp"

namespace krak::lint {

/// What lint_tree scans. Defaults mirror the project layout: every
/// C++ source under the four source trees, skipping build output and
/// dot-directories.
struct TreeLintOptions {
  /// Subtrees of the root to scan; entries that do not exist are
  /// skipped so the analyzer works in partial checkouts.
  std::vector<std::string> subdirs = {"src", "tests", "bench", "examples"};
  /// File extensions considered C++ sources.
  std::vector<std::string> extensions = {".hpp", ".cpp", ".h", ".hxx"};
};

/// Scan one tree: walk `root`'s configured subtrees in lexicographic
/// order (the report is byte-stable for a given tree), stack `.kraklint`
/// policies directory by directory, lint every source file, and apply
/// the tree-level todo-budget rule from the root policy. Findings
/// arrive in scan order (subtree, then lexicographic path, then line).
/// Throws util::KrakError on unreadable files or malformed policy
/// files.
[[nodiscard]] LintReport lint_tree(const std::string& root,
                                   const TreeLintOptions& options = {});

}  // namespace krak::lint
