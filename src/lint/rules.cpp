#include "lint/rules.hpp"

namespace krak::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {rules::kNoRandomDevice,
       "std::random_device is banned; all randomness flows through seeded "
       "util::Rng"},
      {rules::kNoStdRand,
       "std::rand/srand are banned; use seeded util::Rng"},
      {rules::kNoWallClock,
       "wall-clock reads (std::chrono clocks, time(), clock()) are banned "
       "outside clock-exempt trees; use util::Stopwatch or obs timers"},
      {rules::kNoUnorderedIteration,
       "iterating an unordered container in a deterministic tree leaks "
       "hash order into results"},
      {rules::kNoPointerKeyedContainer,
       "pointer-keyed associative containers order by address, which "
       "varies run to run"},
      {rules::kNoNakedAssert,
       "naked assert() vanishes in release builds; use KRAK_ASSERT / "
       "KRAK_REQUIRE"},
      {rules::kNoAbort,
       "abort/terminate/exit tear the process down past every destructor; "
       "throw KrakError instead"},
      {rules::kThreadpoolTaskThrow,
       "tasks handed to ThreadPool::submit must not throw (an escaping "
       "exception terminates the process); use parallel_for or catch "
       "inside the task"},
      {rules::kPragmaOnce, "headers must open with #pragma once"},
      {rules::kNoUsingNamespaceHeader,
       "using namespace in a header pollutes every includer"},
      {rules::kNoSelfInclude, "a header must not include itself"},
      {rules::kNoDuplicateInclude,
       "the same header is included twice in one file"},
      {rules::kHotPathProbe,
       "a function annotated hot must register an obs probe so perf PRs "
       "have baseline counters"},
      {rules::kTodoOwner,
       "TODO/FIXME comments need an owner: TODO(name): ..."},
      {rules::kTodoBudget,
       "the tree exceeds its todo-budget (set in the root policy file)"},
      {rules::kBadSuppression,
       "malformed suppression marker: unknown rule, missing reason, or "
       "bad syntax"},
  };
  return kCatalog;
}

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& info : rule_catalog()) {
    if (info.id == id) return true;
  }
  return false;
}

}  // namespace krak::lint
