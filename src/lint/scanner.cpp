#include "lint/scanner.hpp"

#include <cctype>

#include "util/error.hpp"

namespace krak::lint {

namespace {

/// The comment token that introduces a suppression. Built from pieces
/// so the scanner's own sources never carry a parseable marker.
const std::string kMarker = std::string("krak-lint") + ":";

bool is_rule_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '-' ||
         c == '_';
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

/// Parse every suppression marker in one line's comment text.
std::vector<Suppression> parse_suppressions(std::string_view comment) {
  std::vector<Suppression> result;
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    std::string_view rest = trim(comment.substr(pos));
    Suppression sup;
    const std::string_view kAllow = "allow";
    if (rest.substr(0, kAllow.size()) != kAllow) {
      sup.malformed = true;
      result.push_back(std::move(sup));
      continue;
    }
    rest = trim(rest.substr(kAllow.size()));
    if (rest.empty() || rest.front() != '(') {
      sup.malformed = true;
      result.push_back(std::move(sup));
      continue;
    }
    rest.remove_prefix(1);
    std::size_t id_end = 0;
    while (id_end < rest.size() && is_rule_char(rest[id_end])) ++id_end;
    sup.rule = std::string(rest.substr(0, id_end));
    const std::size_t close = rest.find(')');
    if (sup.rule.empty() || close == std::string_view::npos) {
      sup.malformed = true;
      result.push_back(std::move(sup));
      continue;
    }
    sup.reason = std::string(trim(rest.substr(id_end, close - id_end)));
    // A suppression without a reason is a finding, not a suppression:
    // the reason is what reviewers audit.
    sup.malformed = sup.reason.empty();
    result.push_back(std::move(sup));
  }
  return result;
}

bool header_extension(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hxx";
}

}  // namespace

const SourceLine& ScannedFile::line(std::size_t number) const {
  KRAK_REQUIRE(number >= 1 && number <= lines.size(),
               "line number out of range");
  return lines[number - 1];
}

bool ScannedFile::is_suppressed(std::string_view rule,
                                std::size_t number) const {
  const auto allows = [&](std::size_t line_number) {
    if (line_number < 1 || line_number > suppressions.size()) return false;
    for (const Suppression& sup : suppressions[line_number - 1]) {
      if (!sup.malformed && sup.rule == rule) return true;
    }
    return false;
  };
  return allows(number) || allows(number - 1);
}

ScannedFile scan_source(std::string path, std::string_view content) {
  ScannedFile file;
  file.path = std::move(path);
  file.is_header = header_extension(file.path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delimiter;  // the )delim" terminator of a raw string

  SourceLine current;
  std::size_t line_begin = 0;
  const auto flush_line = [&](std::size_t line_end) {
    current.raw = std::string(content.substr(line_begin, line_end - line_begin));
    line_begin = line_end + 1;
    file.suppressions.push_back(parse_suppressions(current.comment));
    file.lines.push_back(std::move(current));
    current = SourceLine{};
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      // Line comments end at the newline; every other state carries
      // over (block comments, multi-line raw strings).
      if (state == State::kLineComment) state = State::kCode;
      flush_line(i);
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          current.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          current.code += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; plain " a regular one. The
          // prefix R must itself not be part of a longer identifier.
          const bool raw =
              i >= 1 && content[i - 1] == 'R' &&
              (i < 2 || !(std::isalnum(
                              static_cast<unsigned char>(content[i - 2])) !=
                              0 ||
                          content[i - 2] == '_'));
          if (raw) {
            std::size_t j = i + 1;
            std::string delim;
            while (j < content.size() && content[j] != '(' &&
                   content[j] != '\n') {
              delim += content[j];
              ++j;
            }
            if (j < content.size() && content[j] == '(') {
              raw_delimiter = ")" + delim + "\"";
              state = State::kRawString;
              current.code += '"';
              i = j;  // skip the delimiter and opening parenthesis
              break;
            }
          }
          state = State::kString;
          current.code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          current.code += '\'';
        } else {
          current.code += c;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          current.code += ' ';
          if (next != '\0' && next != '\n') {
            current.code += ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          current.code += '"';
        } else {
          current.code += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          current.code += ' ';
          if (next != '\0' && next != '\n') {
            current.code += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          current.code += '\'';
        } else {
          current.code += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          state = State::kCode;
          current.code += '"';
          i += raw_delimiter.size() - 1;
        } else {
          current.code += ' ';
        }
        break;
    }
  }
  if (line_begin < content.size()) flush_line(content.size());
  return file;
}

}  // namespace krak::lint
