#include "lint/policy.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/error.hpp"

namespace krak::lint {

namespace {

std::vector<std::string> split_words(std::string_view line) {
  std::vector<std::string> words;
  std::string word;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!word.empty()) words.push_back(std::move(word));
      word.clear();
    } else {
      word += c;
    }
  }
  if (!word.empty()) words.push_back(std::move(word));
  return words;
}

[[noreturn]] void bad_policy(std::string_view origin, std::size_t line,
                             const std::string& what) {
  throw util::InvalidArgument(std::string(origin) + ":" +
                              std::to_string(line) + ": " + what);
}

bool parse_bool(std::string_view origin, std::size_t line,
                const std::string& value) {
  if (value == "true") return true;
  if (value == "false") return false;
  bad_policy(origin, line, "expected true or false, got '" + value + "'");
}

}  // namespace

Policy apply_policy_text(const Policy& base, std::string_view text,
                         std::string_view origin) {
  Policy policy = base;
  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> words = split_words(raw);
    if (words.empty()) continue;
    const std::string& key = words[0];
    if (key == "deterministic" || key == "clock-exempt") {
      if (words.size() != 2) bad_policy(origin, line_number, key + " wants one value");
      const bool value = parse_bool(origin, line_number, words[1]);
      (key == "deterministic" ? policy.deterministic : policy.clock_exempt) =
          value;
    } else if (key == "todo-budget") {
      if (words.size() != 2) {
        bad_policy(origin, line_number, "todo-budget wants one value");
      }
      try {
        policy.todo_budget = std::stoll(words[1]);
      } catch (const std::exception&) {
        bad_policy(origin, line_number,
                   "todo-budget value '" + words[1] + "' is not an integer");
      }
    } else if (key == "disable" || key == "enable") {
      if (words.size() < 2) {
        bad_policy(origin, line_number, key + " wants at least one rule id");
      }
      for (std::size_t i = 1; i < words.size(); ++i) {
        if (!is_known_rule(words[i])) {
          bad_policy(origin, line_number, "unknown rule '" + words[i] + "'");
        }
        if (key == "disable") {
          policy.disabled.insert(words[i]);
        } else {
          policy.disabled.erase(words[i]);
        }
      }
    } else {
      bad_policy(origin, line_number, "unknown policy key '" + key + "'");
    }
  }
  return policy;
}

Policy apply_policy_file(const Policy& base, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::KrakError("cannot read policy file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return apply_policy_text(base, text.str(), path);
}

}  // namespace krak::lint
