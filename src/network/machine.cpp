#include "network/machine.hpp"

namespace krak::network {

MachineConfig make_es45_qsnet() {
  MachineConfig config;
  config.name = "ES45-QsNet";
  config.nodes = 256;
  config.pes_per_node = 4;
  config.compute_speedup = 1.0;
  config.network = make_qsnet1_model();
  return config;
}

MachineConfig make_hypothetical_upgrade() {
  MachineConfig config;
  config.name = "Upgrade-2x";
  config.nodes = 256;
  config.pes_per_node = 4;
  config.compute_speedup = 2.0;
  config.network = make_qsnet1_model().scaled(0.5, 0.5);
  return config;
}

}  // namespace krak::network
