#include "network/msgmodel.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace krak::network {

using util::check;
using util::Interpolation;
using util::PiecewiseLinear;

MessageCostModel::MessageCostModel(PiecewiseLinear latency,
                                   PiecewiseLinear byte_cost)
    : latency_(std::move(latency)),
      byte_cost_(std::move(byte_cost)),
      zero_(false) {
  check(!latency_.empty(), "latency table must be non-empty");
  check(!byte_cost_.empty(), "byte-cost table must be non-empty");
}

double MessageCostModel::latency(double bytes) const {
  check(bytes >= 0.0, "message size must be non-negative");
  if (zero_) return 0.0;
  // Tables are indexed from 1 byte (log interpolation); clamp below.
  return latency_(bytes < 1.0 ? 1.0 : bytes);
}

double MessageCostModel::byte_cost(double bytes) const {
  check(bytes >= 0.0, "message size must be non-negative");
  if (zero_) return 0.0;
  return byte_cost_(bytes < 1.0 ? 1.0 : bytes);
}

double MessageCostModel::message_time(double bytes) const {
  return latency(bytes) + bytes * byte_cost(bytes);
}

double MessageCostModel::effective_bandwidth(double bytes) const {
  check(bytes > 0.0, "effective bandwidth needs a positive size");
  return bytes / message_time(bytes);
}

double MessageCostModel::min_message_time() const {
  if (zero_) return 0.0;
  // Tmsg(S) = L(S) + S * TB(S) with S >= 0 and TB >= 0, so the infimum
  // over sizes is bounded below by the infimum of L alone. L is
  // piecewise linear over the evaluated domain [1, inf): its infimum is
  // attained at a breakpoint (or at the clamped left edge) unless the
  // table extrapolates past its last breakpoint with a negative slope,
  // in which case no positive bound exists and the horizon degenerates.
  const std::span<const double> ys = latency_.ys();
  double bound = latency_(1.0);
  for (const double y : ys) bound = std::min(bound, y);
  if (latency_.extrapolation() == util::Extrapolation::kLinear &&
      ys.size() >= 2 && ys[ys.size() - 1] < ys[ys.size() - 2]) {
    return 0.0;
  }
  return bound > 0.0 ? bound : 0.0;
}

MessageCostModel MessageCostModel::scaled(double latency_factor,
                                          double byte_cost_factor) const {
  check(latency_factor > 0.0 && byte_cost_factor > 0.0,
        "scale factors must be positive");
  if (zero_) return {};
  // Scale the y values only; x breakpoints and — crucially — the source
  // table's interpolation and extrapolation modes carry over unchanged,
  // so a scaled Hockney (linear-interp) model stays Hockney and a
  // linear-extrapolating table keeps extrapolating.
  const auto scale_table = [](const PiecewiseLinear& table, double factor) {
    std::vector<double> ys(table.ys().begin(), table.ys().end());
    for (double& y : ys) y *= factor;
    return PiecewiseLinear(table.xs(), ys, table.interpolation(),
                           table.extrapolation());
  };
  return MessageCostModel(scale_table(latency_, latency_factor),
                          scale_table(byte_cost_, byte_cost_factor));
}

MessageCostModel make_qsnet1_model() {
  using util::microseconds;
  using util::nanoseconds;
  // Start-up cost L(S): ~4.5 us for tiny messages, growing mildly with
  // size as rendezvous protocols kick in.
  PiecewiseLinear latency;
  latency.set_interpolation(Interpolation::kLogX);
  latency.add_point(1.0, microseconds(4.5));
  latency.add_point(64.0, microseconds(4.6));
  latency.add_point(512.0, microseconds(5.0));
  latency.add_point(4096.0, microseconds(6.0));
  latency.add_point(65536.0, microseconds(8.0));
  latency.add_point(1048576.0, microseconds(10.0));

  // Per-byte cost TB(S): overhead-dominated for small messages, falling
  // to the ~305 MB/s asymptote (~3.3 ns/byte) for large ones.
  PiecewiseLinear byte_cost;
  byte_cost.set_interpolation(Interpolation::kLogX);
  byte_cost.add_point(1.0, nanoseconds(12.0));
  byte_cost.add_point(64.0, nanoseconds(10.0));
  byte_cost.add_point(512.0, nanoseconds(6.0));
  byte_cost.add_point(4096.0, nanoseconds(4.0));
  byte_cost.add_point(65536.0, nanoseconds(3.4));
  byte_cost.add_point(1048576.0, nanoseconds(3.28));

  return MessageCostModel(std::move(latency), std::move(byte_cost));
}

MessageCostModel make_hockney_model(double latency_seconds,
                                    double bytes_per_second) {
  check(latency_seconds >= 0.0, "latency must be non-negative");
  check(bytes_per_second > 0.0, "bandwidth must be positive");
  PiecewiseLinear latency;
  latency.add_point(1.0, latency_seconds);
  PiecewiseLinear byte_cost;
  byte_cost.add_point(1.0, 1.0 / bytes_per_second);
  return MessageCostModel(std::move(latency), std::move(byte_cost));
}

}  // namespace krak::network
