#pragma once

#include <cstdint>

#include "network/msgmodel.hpp"

namespace krak::network {

/// Block placement of MPI ranks onto SMP nodes: ranks 0..k-1 on node 0,
/// k..2k-1 on node 1, and so on — the default placement of the paper's
/// era and machines (4-way ES-45 nodes).
class Placement {
 public:
  Placement(std::int32_t pes, std::int32_t pes_per_node);

  [[nodiscard]] std::int32_t pes() const { return pes_; }
  [[nodiscard]] std::int32_t pes_per_node() const { return pes_per_node_; }

  [[nodiscard]] std::int32_t node_of(std::int32_t pe) const;
  [[nodiscard]] bool same_node(std::int32_t a, std::int32_t b) const;

  /// Number of nodes actually occupied.
  [[nodiscard]] std::int32_t nodes_used() const;

 private:
  std::int32_t pes_;
  std::int32_t pes_per_node_;
};

/// Two-level message-cost model: messages between ranks on the same SMP
/// node move through shared memory (cheap), messages between nodes
/// cross the interconnect (Equation 4's Tmsg).
///
/// The paper's model uses a single flat Tmsg; this extension quantifies
/// what that flattening costs (see bench_ablation_hierarchy).
class HierarchicalNetwork {
 public:
  HierarchicalNetwork(MessageCostModel intra_node, MessageCostModel inter_node,
                      Placement placement);

  [[nodiscard]] double message_time(std::int32_t from, std::int32_t to,
                                    double bytes) const;
  [[nodiscard]] double latency(std::int32_t from, std::int32_t to,
                               double bytes) const;

  [[nodiscard]] const MessageCostModel& intra_node() const { return intra_; }
  [[nodiscard]] const MessageCostModel& inter_node() const { return inter_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }

 private:
  MessageCostModel intra_;
  MessageCostModel inter_;
  Placement placement_;
};

/// Shared-memory transfer model for a 4-way AlphaServer node: sub-
/// microsecond latency and memory-bus bandwidth far above the NIC's.
[[nodiscard]] MessageCostModel make_es45_shared_memory_model();

}  // namespace krak::network
