#pragma once


#include "util/piecewise.hpp"

namespace krak::network {

/// Point-to-point message cost model, Equation (4) of the paper:
///
///   Tmsg(S) = L(S) + S * TB(S)
///
/// where L(S) is the start-up (latency) cost for a message of S bytes
/// and TB(S) the per-byte bandwidth cost, both piecewise-linear in S.
/// Costs are in seconds; sizes in bytes.
class MessageCostModel {
 public:
  /// A degenerate zero-cost model; useful in tests.
  MessageCostModel() = default;

  MessageCostModel(util::PiecewiseLinear latency,
                   util::PiecewiseLinear byte_cost);

  /// L(S): start-up cost in seconds.
  [[nodiscard]] double latency(double bytes) const;

  /// TB(S): cost per byte in seconds.
  [[nodiscard]] double byte_cost(double bytes) const;

  /// Tmsg(S) = L(S) + S * TB(S).
  [[nodiscard]] double message_time(double bytes) const;

  /// Effective bandwidth S / Tmsg(S) in bytes per second.
  [[nodiscard]] double effective_bandwidth(double bytes) const;

  /// A guaranteed lower bound on message_time over every message size —
  /// the lookahead horizon of the conservative parallel simulator: no
  /// payload sent at time t can arrive before t + min_message_time().
  /// Returns 0 (a degenerate horizon) for the zero-cost model or when
  /// the latency table's extrapolation could dip below its breakpoints.
  [[nodiscard]] double min_message_time() const;

  /// Scale latencies by `latency_factor` and per-byte costs by
  /// `byte_cost_factor` (procurement what-if knob; factors < 1 mean a
  /// faster network).
  [[nodiscard]] MessageCostModel scaled(double latency_factor,
                                        double byte_cost_factor) const;

 private:
  util::PiecewiseLinear latency_;
  util::PiecewiseLinear byte_cost_;
  bool zero_ = true;
};

/// Piecewise tables parameterized to Quadrics QsNet-I era measurements
/// (Petrini et al., IEEE Micro 22(1), 2002): ~5 us MPI latency and
/// ~300 MB/s sustained bandwidth, with per-byte cost falling toward the
/// asymptote as messages grow.
[[nodiscard]] MessageCostModel make_qsnet1_model();

/// A simple latency/bandwidth (Hockney) model: constant latency and
/// per-byte cost, handy for analytic sanity checks.
[[nodiscard]] MessageCostModel make_hockney_model(double latency_seconds,
                                                  double bytes_per_second);

}  // namespace krak::network
