#pragma once

#include <cstdint>
#include <string>

#include "network/msgmodel.hpp"

namespace krak::network {

/// Description of a target machine: processor layout plus the
/// point-to-point message cost model of its interconnect.
///
/// The validation platform of the paper (Section 5.1) is a 256-node
/// HP/Compaq AlphaServer: ES-45 nodes with 4 Alpha EV-68 processors at
/// 1.25 GHz, connected by a Quadrics QsNet-I fat tree.
struct MachineConfig {
  std::string name;
  std::int32_t nodes = 1;
  std::int32_t pes_per_node = 1;
  /// Scales all computation costs: 1.0 is the reference (ES-45) speed;
  /// 2.0 means CPUs twice as fast (costs halved). This is the knob a
  /// procurement study turns.
  double compute_speedup = 1.0;
  MessageCostModel network;

  [[nodiscard]] std::int32_t total_pes() const { return nodes * pes_per_node; }
};

/// The paper's validation platform: 256 ES-45 nodes, 4 PEs each,
/// QsNet-I interconnect.
[[nodiscard]] MachineConfig make_es45_qsnet();

/// A hypothetical faster machine for procurement-study examples:
/// same topology, 2x compute speed, half network latency, double
/// bandwidth.
[[nodiscard]] MachineConfig make_hypothetical_upgrade();

}  // namespace krak::network
