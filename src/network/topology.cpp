#include "network/topology.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace krak::network {

using util::check;

Placement::Placement(std::int32_t pes, std::int32_t pes_per_node)
    : pes_(pes), pes_per_node_(pes_per_node) {
  KRAK_REQUIRE(pes > 0, "Placement requires at least one PE");
  KRAK_REQUIRE(pes_per_node > 0, "Placement requires pes_per_node > 0");
}

std::int32_t Placement::node_of(std::int32_t pe) const {
  KRAK_REQUIRE(pe >= 0 && pe < pes_, "pe out of range");
  return pe / pes_per_node_;
}

bool Placement::same_node(std::int32_t a, std::int32_t b) const {
  return node_of(a) == node_of(b);
}

std::int32_t Placement::nodes_used() const {
  return (pes_ + pes_per_node_ - 1) / pes_per_node_;
}

HierarchicalNetwork::HierarchicalNetwork(MessageCostModel intra_node,
                                         MessageCostModel inter_node,
                                         Placement placement)
    : intra_(std::move(intra_node)),
      inter_(std::move(inter_node)),
      placement_(placement) {}

double HierarchicalNetwork::message_time(std::int32_t from, std::int32_t to,
                                         double bytes) const {
  return placement_.same_node(from, to) ? intra_.message_time(bytes)
                                        : inter_.message_time(bytes);
}

double HierarchicalNetwork::latency(std::int32_t from, std::int32_t to,
                                    double bytes) const {
  return placement_.same_node(from, to) ? intra_.latency(bytes)
                                        : inter_.latency(bytes);
}

MessageCostModel make_es45_shared_memory_model() {
  using util::microseconds;
  using util::nanoseconds;
  util::PiecewiseLinear latency;
  latency.set_interpolation(util::Interpolation::kLogX);
  latency.add_point(1.0, microseconds(0.8));
  latency.add_point(4096.0, microseconds(1.0));
  latency.add_point(1048576.0, microseconds(1.5));

  util::PiecewiseLinear byte_cost;
  byte_cost.set_interpolation(util::Interpolation::kLogX);
  byte_cost.add_point(1.0, nanoseconds(2.0));
  byte_cost.add_point(65536.0, nanoseconds(1.2));
  byte_cost.add_point(1048576.0, nanoseconds(1.0));
  return MessageCostModel(std::move(latency), std::move(byte_cost));
}

}  // namespace krak::network
