#include "network/collectives.hpp"

#include <bit>

#include "util/error.hpp"

namespace krak::network {

CollectiveModel::CollectiveModel(MessageCostModel message_model)
    : model_(std::move(message_model)) {}

std::int32_t CollectiveModel::tree_depth(std::int32_t pes) {
  KRAK_REQUIRE(pes >= 1, "tree_depth requires at least one PE");
  const auto u = static_cast<std::uint32_t>(pes);
  // ceil(log2(pes)): bit_width(p - 1) for p > 1.
  return (pes == 1) ? 0 : static_cast<std::int32_t>(std::bit_width(u - 1));
}

double CollectiveModel::fan_out(std::int32_t pes, double bytes) const {
  return static_cast<double>(tree_depth(pes)) * model_.message_time(bytes);
}

double CollectiveModel::fan_in(std::int32_t pes, double bytes) const {
  return fan_out(pes, bytes);
}

double CollectiveModel::fan_in_fan_out(std::int32_t pes, double bytes) const {
  return 2.0 * fan_out(pes, bytes);
}

double CollectiveModel::iteration_broadcast(std::int32_t pes) const {
  const CollectiveInventory inv;
  const auto depth = static_cast<double>(tree_depth(pes));
  return depth * (inv.bcast_4b * model_.message_time(4.0) +
                  inv.bcast_8b * model_.message_time(8.0));
}

double CollectiveModel::iteration_allreduce(std::int32_t pes) const {
  const CollectiveInventory inv;
  const auto depth = static_cast<double>(tree_depth(pes));
  // Equation (9)'s coefficients 18 and 26 are 2x the Table 4 counts.
  return depth * (2.0 * inv.allreduce_4b * model_.message_time(4.0) +
                  2.0 * inv.allreduce_8b * model_.message_time(8.0));
}

double CollectiveModel::iteration_gather(std::int32_t pes) const {
  const CollectiveInventory inv;
  const auto depth = static_cast<double>(tree_depth(pes));
  return depth * inv.gather_32b * model_.message_time(32.0);
}

double CollectiveModel::iteration_collectives(std::int32_t pes) const {
  return iteration_broadcast(pes) + iteration_allreduce(pes) +
         iteration_gather(pes);
}

}  // namespace krak::network
