#pragma once

#include <cstdint>

#include "network/msgmodel.hpp"

namespace krak::network {

/// Binary-tree collective cost models, Section 4.3 of the paper.
///
/// Collectives are modeled as fan-out, fan-in, or fan-in-and-fan-out
/// over a binary tree: a one-to-all operation takes log2(P) message
/// steps, an all-to-all synchronization 2*log2(P). Tree depth is the
/// integer ceil(log2 P), which is exact for the paper's power-of-two
/// processor counts.
class CollectiveModel {
 public:
  explicit CollectiveModel(MessageCostModel message_model);

  [[nodiscard]] const MessageCostModel& message_model() const {
    return model_;
  }

  /// Depth of a binary tree over `pes` processors (0 for one PE).
  [[nodiscard]] static std::int32_t tree_depth(std::int32_t pes);

  /// One fan-out (broadcast) of `bytes` over `pes`: depth * Tmsg(bytes).
  [[nodiscard]] double fan_out(std::int32_t pes, double bytes) const;

  /// One fan-in (reduction/gather): same cost shape as fan-out.
  [[nodiscard]] double fan_in(std::int32_t pes, double bytes) const;

  /// Fan-in followed by fan-out (allreduce): 2 * depth * Tmsg(bytes).
  [[nodiscard]] double fan_in_fan_out(std::int32_t pes, double bytes) const;

  /// Equation (8): per-iteration broadcast total — 3 MPI_Bcast of 4
  /// bytes and 3 of 8 bytes, each log(P) messages.
  [[nodiscard]] double iteration_broadcast(std::int32_t pes) const;

  /// Equation (9): per-iteration allreduce total — 9 MPI_Allreduce of 4
  /// bytes and 13 of 8 bytes, each 2*log(P) messages.
  [[nodiscard]] double iteration_allreduce(std::int32_t pes) const;

  /// Equation (10): per-iteration gather — one MPI_Gather of 32 bytes,
  /// log(P) messages.
  [[nodiscard]] double iteration_gather(std::int32_t pes) const;

  /// Sum of Equations (8)-(10).
  [[nodiscard]] double iteration_collectives(std::int32_t pes) const;

 private:
  MessageCostModel model_;
};

/// Fixed per-iteration collective inventory (Table 4 of the paper).
struct CollectiveInventory {
  std::int32_t bcast_4b = 3;
  std::int32_t bcast_8b = 3;
  std::int32_t allreduce_4b = 9;
  std::int32_t allreduce_8b = 13;
  std::int32_t gather_32b = 1;

  [[nodiscard]] std::int32_t total_allreduces() const {
    return allreduce_4b + allreduce_8b;
  }
};

}  // namespace krak::network
