#pragma once

/// Umbrella header: the whole public API of the krakmodel libraries.
/// Fine-grained includes (e.g. "core/model.hpp") are preferred in
/// library code; this header is a convenience for applications and
/// exploratory tools.

#include "core/calibration.hpp"   // IWYU pragma: export
#include "core/campaign.hpp"      // IWYU pragma: export
#include "core/comm_model.hpp"    // IWYU pragma: export
#include "core/comp_model.hpp"    // IWYU pragma: export
#include "core/cost_table.hpp"    // IWYU pragma: export
#include "core/general_model.hpp" // IWYU pragma: export
#include "core/mesh_specific_model.hpp"  // IWYU pragma: export
#include "core/model.hpp"         // IWYU pragma: export
#include "core/optimizer.hpp"     // IWYU pragma: export
#include "core/report.hpp"        // IWYU pragma: export
#include "core/sensitivity.hpp"   // IWYU pragma: export
#include "core/table_io.hpp"      // IWYU pragma: export
#include "core/validation.hpp"    // IWYU pragma: export
#include "hydro/eos.hpp"          // IWYU pragma: export
#include "hydro/measure.hpp"      // IWYU pragma: export
#include "hydro/solver.hpp"       // IWYU pragma: export
#include "hydro/state.hpp"        // IWYU pragma: export
#include "mesh/deck.hpp"          // IWYU pragma: export
#include "mesh/grid.hpp"          // IWYU pragma: export
#include "mesh/io.hpp"            // IWYU pragma: export
#include "mesh/material.hpp"      // IWYU pragma: export
#include "network/collectives.hpp"  // IWYU pragma: export
#include "network/machine.hpp"    // IWYU pragma: export
#include "network/msgmodel.hpp"   // IWYU pragma: export
#include "network/topology.hpp"   // IWYU pragma: export
#include "partition/partition.hpp"  // IWYU pragma: export
#include "partition/stats.hpp"    // IWYU pragma: export
#include "sim/simulator.hpp"      // IWYU pragma: export
#include "simapp/simkrak.hpp"     // IWYU pragma: export
#include "simapp/trace.hpp"       // IWYU pragma: export
#include "util/cli.hpp"           // IWYU pragma: export
#include "util/logging.hpp"       // IWYU pragma: export
#include "util/stats.hpp"         // IWYU pragma: export
