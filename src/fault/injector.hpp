#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "sim/simulator.hpp"

namespace krak::fault {

/// Compiles a FaultPlan into the per-op decisions sim::Simulator asks
/// for through the sim::FaultInjector interface.
///
/// The (phase, iteration) coordinates of one-off delays and crashes are
/// resolved against the schedule convention that every phase contributes
/// exactly one kCompute op per iteration (SimKrak's Table 1 schedules),
/// i.e. compute index = iteration * phases_per_iteration + (phase - 1).
/// Raw-simulator users can pass phases_per_iteration = 1 so `phase` is
/// always 1 and `iteration` indexes compute ops directly.
///
/// Everything is deterministic in (plan.seed, rank, op ordinal): two
/// runs of the same plan produce bit-identical injections regardless of
/// event interleaving, and on_run_start rewinds all stream state so one
/// engine can serve repeated Simulator::run calls.
class InjectionEngine final : public sim::FaultInjector {
 public:
  InjectionEngine(const FaultPlan& plan, std::int32_t ranks,
                  std::int32_t phases_per_iteration);

  void on_run_start(std::int32_t ranks) override;
  double compute_delay(sim::RankId rank, std::int64_t index,
                       double duration) override;
  double recovery_delay(sim::RankId rank, std::int64_t index,
                        double now) override;
  MessageFate message_fate(sim::RankId from, sim::RankId to, double bytes,
                           std::int64_t send_index) override;

  /// The watchdog configuration the plan implies: structured failures
  /// on, plus the plan's simulated-time bound.
  [[nodiscard]] sim::WatchdogConfig watchdog() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct NoiseStream {
    double period = 0.0;
    double duration = 0.0;
    double offset = 0.0;       ///< seeded burst-phase jitter in [0, period)
    double accumulated = 0.0;  ///< compute seconds seen so far this run
  };
  struct CrashSite {
    double restart = 0.0;
    double interval = 0.0;
  };

  FaultPlan plan_;
  std::int32_t ranks_ = 0;
  std::vector<double> slowdown_;           ///< per-rank compute factor
  std::vector<double> bandwidth_;          ///< per-rank wire-time divisor
  std::vector<std::vector<NoiseStream>> noise_;  ///< per-rank streams
  std::map<std::pair<std::int32_t, std::int64_t>, double> delays_;
  std::map<std::pair<std::int32_t, std::int64_t>, CrashSite> crashes_;
  /// Message-fault models that apply to a sender rank (indices into
  /// plan_.message_faults), precomputed per rank.
  std::vector<std::vector<std::size_t>> message_models_;
};

}  // namespace krak::fault
