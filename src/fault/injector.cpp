#include "fault/injector.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace krak::fault {

namespace {

/// SplitMix64-style combiner: decorrelates streams keyed by small
/// consecutive integers (ranks, send ordinals).
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a + 0x9e3779b97f4a7c15ull * (b + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void check_rank(std::int32_t rank, std::int32_t ranks, const char* what) {
  util::check(rank == kAllRanks || (rank >= 0 && rank < ranks),
              std::string(what) + ": rank out of range");
}

}  // namespace

InjectionEngine::InjectionEngine(const FaultPlan& plan, std::int32_t ranks,
                                 std::int32_t phases_per_iteration)
    : plan_(plan), ranks_(ranks) {
  util::check(ranks > 0, "InjectionEngine requires at least one rank");
  util::check(phases_per_iteration > 0,
              "phases_per_iteration must be positive");
  const auto n = static_cast<std::size_t>(ranks);
  slowdown_.assign(n, 1.0);
  bandwidth_.assign(n, 1.0);
  noise_.assign(n, {});
  message_models_.assign(n, {});

  const auto compute_key = [&](std::int32_t phase, std::int32_t iteration,
                               const char* what) {
    util::check(phase >= 1 && phase <= phases_per_iteration,
                std::string(what) + ": phase out of range");
    util::check(iteration >= 0,
                std::string(what) + ": iteration must be non-negative");
    return static_cast<std::int64_t>(iteration) * phases_per_iteration +
           (phase - 1);
  };
  const auto each_rank = [&](std::int32_t rank, const auto& apply) {
    if (rank == kAllRanks) {
      for (std::int32_t r = 0; r < ranks; ++r) apply(r);
    } else {
      apply(rank);
    }
  };

  for (const ComputeSlowdown& s : plan.slowdowns) {
    check_rank(s.rank, ranks, "slowdown");
    util::check(s.factor >= 1.0, "slowdown factor must be >= 1");
    each_rank(s.rank, [&](std::int32_t r) {
      slowdown_[static_cast<std::size_t>(r)] *= s.factor;
    });
  }
  for (const NoiseBurst& burst : plan.noise) {
    check_rank(burst.rank, ranks, "noise");
    util::check(burst.period_s > 0.0, "noise period must be positive");
    util::check(burst.duration_s >= 0.0,
                "noise duration must be non-negative");
    each_rank(burst.rank, [&](std::int32_t r) {
      NoiseStream stream;
      stream.period = burst.period_s;
      stream.duration = burst.duration_s;
      // Seeded per-rank phase jitter so ranks do not burst in lockstep.
      util::Rng rng(mix(plan.seed, static_cast<std::uint64_t>(r)));
      stream.offset = rng.next_double() * burst.period_s;
      noise_[static_cast<std::size_t>(r)].push_back(stream);
    });
  }
  for (const OneOffDelay& delay : plan.delays) {
    util::check(delay.rank >= 0 && delay.rank < ranks,
                "delay: rank out of range");
    util::check(delay.seconds >= 0.0, "delay seconds must be non-negative");
    delays_[{delay.rank, compute_key(delay.phase, delay.iteration, "delay")}] +=
        delay.seconds;
  }
  for (const MessageFaultModel& model : plan.message_faults) {
    check_rank(model.rank, ranks, "messages");
    util::check(model.drop_probability >= 0.0 && model.drop_probability < 1.0,
                "message drop probability must be in [0, 1)");
    util::check(model.extra_delay_s >= 0.0,
                "message extra delay must be non-negative");
    util::check(model.retransmit_timeout_s >= 0.0,
                "retransmit timeout must be non-negative");
    util::check(model.max_retries >= 0, "max retries must be non-negative");
  }
  for (std::size_t i = 0; i < plan.message_faults.size(); ++i) {
    each_rank(plan.message_faults[i].rank, [&](std::int32_t r) {
      message_models_[static_cast<std::size_t>(r)].push_back(i);
    });
  }
  for (const NicDegrade& degrade : plan.degrades) {
    check_rank(degrade.rank, ranks, "degrade");
    util::check(degrade.bandwidth_factor > 0.0 &&
                    degrade.bandwidth_factor <= 1.0,
                "bandwidth factor must be in (0, 1]");
    each_rank(degrade.rank, [&](std::int32_t r) {
      bandwidth_[static_cast<std::size_t>(r)] *= degrade.bandwidth_factor;
    });
  }
  for (const RankCrash& crash : plan.crashes) {
    util::check(crash.rank >= 0 && crash.rank < ranks,
                "crash: rank out of range");
    util::check(crash.restart_s >= 0.0,
                "crash restart cost must be non-negative");
    CrashSite& site =
        crashes_[{crash.rank, compute_key(crash.phase, crash.iteration,
                                          "crash")}];
    site.restart += crash.restart_s;
    site.interval = std::max(site.interval, crash.checkpoint_interval_s);
  }
}

void InjectionEngine::on_run_start(std::int32_t ranks) {
  util::check(ranks == ranks_,
              "fault plan compiled for a different rank count");
  for (auto& streams : noise_) {
    for (NoiseStream& stream : streams) stream.accumulated = 0.0;
  }
}

double InjectionEngine::compute_delay(sim::RankId rank, std::int64_t index,
                                      double duration) {
  const auto r = static_cast<std::size_t>(rank);
  double extra = (slowdown_[r] - 1.0) * duration;
  // Noise bursts: one burst each time the rank's accumulated compute
  // crosses a (jittered) period boundary.
  for (NoiseStream& stream : noise_[r]) {
    const double before = stream.accumulated + stream.offset;
    const double after = before + duration;
    const double bursts =
        std::floor(after / stream.period) - std::floor(before / stream.period);
    stream.accumulated += duration;
    extra += bursts * stream.duration;
  }
  if (!delays_.empty()) {
    const auto it = delays_.find({rank, index});
    if (it != delays_.end()) extra += it->second;
  }
  return extra;
}

double InjectionEngine::recovery_delay(sim::RankId rank, std::int64_t index,
                                       double now) {
  if (crashes_.empty()) return 0.0;
  const auto it = crashes_.find({rank, index});
  if (it == crashes_.end()) return 0.0;
  return expected_recovery_cost(it->second.restart, it->second.interval, now);
}

sim::FaultInjector::MessageFate InjectionEngine::message_fate(
    sim::RankId from, sim::RankId to, double bytes, std::int64_t send_index) {
  (void)to;
  (void)bytes;
  MessageFate fate;
  const auto r = static_cast<std::size_t>(from);
  fate.bandwidth_factor = 1.0 / bandwidth_[r];
  if (message_models_[r].empty()) return fate;
  // Per-message stream keyed by (seed, sender, send ordinal): the fate
  // is independent of event interleaving and of every other message.
  util::Rng rng(mix(mix(plan_.seed, static_cast<std::uint64_t>(from)),
                    static_cast<std::uint64_t>(send_index)));
  for (const std::size_t i : message_models_[r]) {
    const MessageFaultModel& model = plan_.message_faults[i];
    fate.extra_delay += model.extra_delay_s;
    if (model.drop_probability <= 0.0) continue;
    std::int32_t drops = 0;
    while (drops <= model.max_retries &&
           rng.next_double() < model.drop_probability) {
      ++drops;
    }
    if (drops > model.max_retries) {
      fate.lost = true;
      fate.retransmits += model.max_retries;
    } else {
      fate.retransmits += drops;
      fate.extra_delay += drops * model.retransmit_timeout_s;
    }
  }
  return fate;
}

sim::WatchdogConfig InjectionEngine::watchdog() const {
  sim::WatchdogConfig config;
  config.structured_failures = true;
  config.max_sim_seconds = plan_.max_sim_seconds;
  return config;
}

}  // namespace krak::fault
