#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace krak::fault {

/// Wildcard rank: the injection applies to every rank.
inline constexpr std::int32_t kAllRanks = -1;

/// Persistent per-rank compute slowdown: every compute op on the rank
/// takes `factor` times as long; the excess is charged to fault_delay.
/// Models a thermally throttled or oversubscribed processor.
struct ComputeSlowdown {
  std::int32_t rank = kAllRanks;
  double factor = 1.0;  ///< >= 1; 1.25 means 25% slower
};

/// Periodic OS-noise bursts: every `period_s` of accumulated compute on
/// the rank, one burst of `duration_s` is injected (charged to
/// fault_delay). The plan seed jitters each rank's burst phase so ranks
/// do not beat in lockstep — the fine-grained-noise regime of Afzal,
/// Hager & Wellein (PAPERS.md).
struct NoiseBurst {
  std::int32_t rank = kAllRanks;
  double period_s = 1e-3;
  double duration_s = 25e-6;
};

/// One-off injected delay at an exact (rank, phase, iteration) — the
/// idle-wave experiment of "Propagation and Decay of Injected One-Off
/// Delays on Clusters". Charged to fault_delay before the phase's
/// compute finishes, so it propagates through the reduction fence.
struct OneOffDelay {
  std::int32_t rank = 0;
  std::int32_t phase = 1;      ///< 1-based Table 1 phase number
  std::int32_t iteration = 0;  ///< 0-based
  double seconds = 0.0;
};

/// Message-loss model with a bounded retransmit timeout: each
/// point-to-point payload sent by `rank` is dropped with
/// `drop_probability` per attempt; each retransmission costs
/// `retransmit_timeout_s` of extra wire delay. A payload dropped more
/// than `max_retries` times is lost for good — the watchdog turns the
/// starved receiver into a structured SimFailure. `extra_delay_s` is a
/// deterministic per-message link delay applied on top.
struct MessageFaultModel {
  std::int32_t rank = kAllRanks;  ///< sender rank
  double drop_probability = 0.0;
  double extra_delay_s = 0.0;
  double retransmit_timeout_s = 1e-4;
  std::int32_t max_retries = 3;
};

/// NIC/link bandwidth degradation on a sender: wire transfer times of
/// its messages are divided by `bandwidth_factor` (0.5 = half the
/// healthy bandwidth).
struct NicDegrade {
  std::int32_t rank = kAllRanks;
  double bandwidth_factor = 1.0;  ///< in (0, 1]
};

/// Rank crash at an exact (rank, phase, iteration) with an analytic
/// checkpoint/restart cost charged to `recovery`: restart_s plus the
/// expected rework. With a checkpoint interval I the expected rework is
/// I/2 (Daly's first-order model); without one (interval <= 0) the rank
/// recomputes everything since t = 0.
struct RankCrash {
  std::int32_t rank = 0;
  std::int32_t phase = 1;
  std::int32_t iteration = 0;
  double restart_s = 0.0;
  double checkpoint_interval_s = 0.0;  ///< <= 0: no checkpointing
};

/// A deterministic, seedable fault-injection plan (docs/RESILIENCE.md).
/// An empty plan is the contract for "no perturbation": SimKrak skips
/// the injector entirely and reproduces pre-fault behavior bit for bit.
struct FaultPlan {
  /// Seeds every stochastic choice (noise phase offsets, message drop
  /// draws); the same seed and plan give bit-identical runs.
  std::uint64_t seed = 0;
  std::vector<ComputeSlowdown> slowdowns;
  std::vector<NoiseBurst> noise;
  std::vector<OneOffDelay> delays;
  std::vector<MessageFaultModel> message_faults;
  std::vector<NicDegrade> degrades;
  std::vector<RankCrash> crashes;
  /// Watchdog bound on simulated time; <= 0 disables (see
  /// sim::WatchdogConfig::max_sim_seconds).
  double max_sim_seconds = 0.0;

  [[nodiscard]] bool empty() const {
    return slowdowns.empty() && noise.empty() && delays.empty() &&
           message_faults.empty() && degrades.empty() && crashes.empty();
  }
  /// Total number of injection directives.
  [[nodiscard]] std::size_t size() const {
    return slowdowns.size() + noise.size() + delays.size() +
           message_faults.size() + degrades.size() + crashes.size();
  }
};

/// Plain-text fault-spec format, versioned like the deck and cost-table
/// formats:
///
///   krakfaults 1
///   seed 7
///   slowdown rank=2 factor=1.5
///   noise rank=* period=1e-3 duration=25e-6
///   delay rank=0 phase=4 iter=1 seconds=2e-3
///   messages rank=* drop=0.05 delay=0 rto=1e-4 retries=3
///   degrade rank=3 bandwidth=0.25
///   crash rank=1 phase=9 iter=0 restart=0.05 interval=0.4
///   watchdog max_seconds=10
///   end
///
/// `rank=*` targets every rank. Unknown directives and keys are errors
/// (no silent skipping: a typo must not quietly weaken an experiment).

/// Serialize a plan. Throws KrakError on stream failure.
void write_fault_plan(std::ostream& out, const FaultPlan& plan);
void save_fault_plan(const std::string& path, const FaultPlan& plan);

/// Parse a plan; throws KrakError naming the offending line on
/// malformed input. load_fault_plan prefixes the path and cause.
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& in);
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

/// Daly's first-order optimal checkpoint interval sqrt(2 * C * M) for
/// checkpoint cost C and mean time between failures M (both > 0).
[[nodiscard]] double daly_optimal_interval(double checkpoint_cost_s,
                                           double mtbf_s);

/// Expected cost of recovering from one crash under a checkpoint
/// interval I: restart plus I/2 of rework; with I <= 0 the rework is
/// `elapsed_s` (recompute everything).
[[nodiscard]] double expected_recovery_cost(double restart_s,
                                            double checkpoint_interval_s,
                                            double elapsed_s);

}  // namespace krak::fault
