#include "fault/plan.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace krak::fault {

namespace {

constexpr std::string_view kMagic = "krakfaults";
constexpr int kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
  throw util::KrakError("malformed fault spec: " + what);
}

std::string rank_token(std::int32_t rank) {
  return rank == kAllRanks ? std::string("*") : std::to_string(rank);
}

/// key=value fields of one directive line, consumed with presence
/// checks so a typo'd key is an error, not a silently ignored token.
class Fields {
 public:
  Fields(const std::string& directive, std::istringstream& line)
      : directive_(directive) {
    std::string token;
    while (line >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        malformed("'" + directive + "': bad field '" + token +
                  "' (expected key=value)");
      }
      const std::string key = token.substr(0, eq);
      if (!fields_.emplace(key, token.substr(eq + 1)).second) {
        malformed("'" + directive + "': duplicate field '" + key + "'");
      }
    }
  }

  [[nodiscard]] std::int32_t rank(const std::string& key = "rank") {
    const std::string value = take(key);
    if (value == "*") return kAllRanks;
    return static_cast<std::int32_t>(to_int(key, value));
  }

  [[nodiscard]] std::int64_t integer(const std::string& key) {
    const std::string value = take(key);
    return to_int(key, value);
  }

  [[nodiscard]] double number(const std::string& key) {
    const std::string value = take(key);
    try {
      std::size_t used = 0;
      const double parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      malformed("'" + directive_ + "': field " + key + "='" + value +
                "' is not a number");
    }
  }

  [[nodiscard]] double number_or(const std::string& key, double fallback) {
    return fields_.count(key) != 0 ? number(key) : fallback;
  }
  [[nodiscard]] std::int64_t integer_or(const std::string& key,
                                        std::int64_t fallback) {
    return fields_.count(key) != 0 ? integer(key) : fallback;
  }

  /// All fields must have been consumed.
  void finish() const {
    if (!fields_.empty()) {
      malformed("'" + directive_ + "': unknown field '" +
                fields_.begin()->first + "'");
    }
  }

 private:
  std::string take(const std::string& key) {
    const auto it = fields_.find(key);
    if (it == fields_.end()) {
      malformed("'" + directive_ + "': missing field '" + key + "'");
    }
    std::string value = it->second;
    fields_.erase(it);
    return value;
  }

  std::int64_t to_int(const std::string& key, const std::string& value) {
    try {
      std::size_t used = 0;
      const std::int64_t parsed = std::stoll(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      malformed("'" + directive_ + "': field " + key + "='" + value +
                "' is not an integer");
    }
  }

  std::string directive_;
  std::map<std::string, std::string> fields_;
};

}  // namespace

void write_fault_plan(std::ostream& out, const FaultPlan& plan) {
  out << kMagic << " " << kVersion << "\n";
  out << "seed " << plan.seed << "\n";
  for (const ComputeSlowdown& s : plan.slowdowns) {
    out << "slowdown rank=" << rank_token(s.rank) << " factor=" << s.factor
        << "\n";
  }
  for (const NoiseBurst& n : plan.noise) {
    out << "noise rank=" << rank_token(n.rank) << " period=" << n.period_s
        << " duration=" << n.duration_s << "\n";
  }
  for (const OneOffDelay& d : plan.delays) {
    out << "delay rank=" << rank_token(d.rank) << " phase=" << d.phase
        << " iter=" << d.iteration << " seconds=" << d.seconds << "\n";
  }
  for (const MessageFaultModel& m : plan.message_faults) {
    out << "messages rank=" << rank_token(m.rank)
        << " drop=" << m.drop_probability << " delay=" << m.extra_delay_s
        << " rto=" << m.retransmit_timeout_s << " retries=" << m.max_retries
        << "\n";
  }
  for (const NicDegrade& d : plan.degrades) {
    out << "degrade rank=" << rank_token(d.rank)
        << " bandwidth=" << d.bandwidth_factor << "\n";
  }
  for (const RankCrash& c : plan.crashes) {
    out << "crash rank=" << rank_token(c.rank) << " phase=" << c.phase
        << " iter=" << c.iteration << " restart=" << c.restart_s
        << " interval=" << c.checkpoint_interval_s << "\n";
  }
  if (plan.max_sim_seconds > 0.0) {
    out << "watchdog max_seconds=" << plan.max_sim_seconds << "\n";
  }
  out << "end\n";
  if (!out) throw util::KrakError("write_fault_plan: stream failure");
}

void save_fault_plan(const std::string& path, const FaultPlan& plan) {
  std::ofstream out(path);
  if (!out) {
    throw util::KrakError("save_fault_plan: cannot open " + path + ": " +
                          util::errno_message());
  }
  write_fault_plan(out, plan);
}

FaultPlan parse_fault_plan(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) malformed("missing header");
  {
    std::istringstream hs(header);
    std::string magic;
    int version = 0;
    if (!(hs >> magic >> version)) malformed("missing header");
    if (magic != kMagic) malformed("bad magic '" + magic + "'");
    if (version != kVersion) {
      malformed("unsupported version " + std::to_string(version));
    }
  }

  FaultPlan plan;
  bool saw_end = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive.front() == '#') continue;
    if (directive == "end") {
      saw_end = true;
      break;
    }
    if (directive == "seed") {
      std::uint64_t seed = 0;
      if (!(ls >> seed)) malformed("'seed': missing value");
      plan.seed = seed;
      continue;
    }
    Fields fields(directive, ls);
    if (directive == "slowdown") {
      ComputeSlowdown s;
      s.rank = fields.rank();
      s.factor = fields.number("factor");
      plan.slowdowns.push_back(s);
    } else if (directive == "noise") {
      NoiseBurst n;
      n.rank = fields.rank();
      n.period_s = fields.number("period");
      n.duration_s = fields.number("duration");
      plan.noise.push_back(n);
    } else if (directive == "delay") {
      OneOffDelay d;
      d.rank = fields.rank();
      d.phase = static_cast<std::int32_t>(fields.integer("phase"));
      d.iteration = static_cast<std::int32_t>(fields.integer("iter"));
      d.seconds = fields.number("seconds");
      plan.delays.push_back(d);
    } else if (directive == "messages") {
      MessageFaultModel m;
      m.rank = fields.rank();
      m.drop_probability = fields.number("drop");
      m.extra_delay_s = fields.number_or("delay", 0.0);
      m.retransmit_timeout_s = fields.number_or("rto", 1e-4);
      m.max_retries =
          static_cast<std::int32_t>(fields.integer_or("retries", 3));
      plan.message_faults.push_back(m);
    } else if (directive == "degrade") {
      NicDegrade d;
      d.rank = fields.rank();
      d.bandwidth_factor = fields.number("bandwidth");
      plan.degrades.push_back(d);
    } else if (directive == "crash") {
      RankCrash c;
      c.rank = fields.rank();
      c.phase = static_cast<std::int32_t>(fields.integer("phase"));
      c.iteration = static_cast<std::int32_t>(fields.integer("iter"));
      c.restart_s = fields.number("restart");
      c.checkpoint_interval_s = fields.number_or("interval", 0.0);
      plan.crashes.push_back(c);
    } else if (directive == "watchdog") {
      plan.max_sim_seconds = fields.number("max_seconds");
    } else {
      malformed("unknown directive '" + directive + "'");
    }
    fields.finish();
  }
  if (!saw_end) malformed("missing 'end'");
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::KrakError("load_fault_plan: cannot open " + path + ": " +
                          util::errno_message());
  }
  try {
    return parse_fault_plan(in);
  } catch (const util::KrakError& error) {
    throw util::KrakError("load_fault_plan: " + path + ": " + error.what());
  }
}

double daly_optimal_interval(double checkpoint_cost_s, double mtbf_s) {
  util::check(checkpoint_cost_s > 0.0, "checkpoint cost must be positive");
  util::check(mtbf_s > 0.0, "MTBF must be positive");
  return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double expected_recovery_cost(double restart_s, double checkpoint_interval_s,
                              double elapsed_s) {
  util::check(restart_s >= 0.0, "restart cost must be non-negative");
  const double rework = checkpoint_interval_s > 0.0
                            ? 0.5 * checkpoint_interval_s
                            : std::max(elapsed_s, 0.0);
  return restart_s + rework;
}

}  // namespace krak::fault
