#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "simapp/costmodel.hpp"

namespace krak::simapp {

/// Communication action a phase performs besides computation (Table 1).
enum class PhaseAction : std::uint8_t {
  /// MPI_Bcast of 4 bytes and of 8 bytes.
  kBroadcastPair,
  /// Broadcast pair + boundary exchange + MPI_Gather of 32 bytes.
  kBoundaryExchange,
  /// No point-to-point or one-to-all communication.
  kComputationOnly,
  /// Ghost-node updates, 8 bytes per ghost node.
  kGhostUpdate8,
  /// Ghost-node updates, 16 bytes per ghost node.
  kGhostUpdate16,
};

[[nodiscard]] std::string_view phase_action_name(PhaseAction action);

/// Static description of one of the 15 iteration phases (Table 1).
struct PhaseSpec {
  std::int32_t number = 0;  ///< 1-based phase number
  PhaseAction action = PhaseAction::kComputationOnly;
  /// Payload sizes (bytes) of the global reductions ending the phase;
  /// size() is the phase's "sync points" column in Table 1. The 4/8 byte
  /// mix across all phases reproduces Table 4's 9 x 4-byte and
  /// 13 x 8-byte allreduces.
  std::vector<double> sync_sizes;

  [[nodiscard]] std::int32_t sync_points() const {
    return static_cast<std::int32_t>(sync_sizes.size());
  }
  [[nodiscard]] bool has_point_to_point() const {
    return action == PhaseAction::kBoundaryExchange ||
           action == PhaseAction::kGhostUpdate8 ||
           action == PhaseAction::kGhostUpdate16;
  }
  /// Bytes per ghost node for ghost-update phases (0 otherwise).
  [[nodiscard]] double ghost_bytes() const {
    if (action == PhaseAction::kGhostUpdate8) return 8.0;
    if (action == PhaseAction::kGhostUpdate16) return 16.0;
    return 0.0;
  }
};

/// The fixed 15-phase iteration structure of Table 1.
[[nodiscard]] const std::array<PhaseSpec, kPhaseCount>& iteration_phases();

/// Bytes per face in boundary-exchange messages (Section 4.1).
inline constexpr double kBoundaryBytesPerFace = 12.0;
/// Messages per material step and per final step of a boundary
/// exchange, per neighbor (Section 4.1: "six messages per neighboring
/// process").
inline constexpr std::int32_t kBoundaryMessagesPerStep = 6;
/// Of the six, the first two also carry 12 bytes per multi-material
/// ghost node.
inline constexpr std::int32_t kBoundaryAugmentedMessages = 2;

/// Totals of Table 4, derived from the phase specs (used to cross-check
/// the phase table against the paper's collective inventory).
struct DerivedCollectiveCounts {
  std::int32_t bcast_4b = 0;
  std::int32_t bcast_8b = 0;
  std::int32_t allreduce_4b = 0;
  std::int32_t allreduce_8b = 0;
  std::int32_t gather_32b = 0;
};

[[nodiscard]] DerivedCollectiveCounts derive_collective_counts();

}  // namespace krak::simapp
