#include "simapp/simkrak.hpp"

#include <memory>

#include "fault/injector.hpp"
#include "network/topology.hpp"
#include "util/error.hpp"

namespace krak::simapp {

namespace {

/// Unique point-to-point tag per (phase, exchange step, message index).
/// Steps 0..kExchangeGroupCount-1 are the per-material steps; step
/// kExchangeGroupCount is the final all-materials step; ghost updates
/// use step 0.
std::int32_t make_tag(std::int32_t phase, std::int32_t step,
                      std::int32_t message) {
  return phase * 1000 + step * 100 + message;
}

/// Deterministic per-rank noise stream.
std::uint64_t rank_seed(std::uint64_t base, partition::PeId pe) {
  return base ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(pe + 1));
}

}  // namespace

SimKrak::SimKrak(const mesh::InputDeck& deck,
                 const partition::Partition& partition,
                 const network::MachineConfig& machine,
                 const ComputationCostEngine& costs, SimKrakOptions options)
    : SimKrak(deck, partition, machine, costs,
              std::make_shared<partition::PartitionStats>(deck, partition),
              options) {}

SimKrak::SimKrak(const mesh::InputDeck& deck,
                 const partition::Partition& partition,
                 const network::MachineConfig& machine,
                 const ComputationCostEngine& costs,
                 std::shared_ptr<const partition::PartitionStats> stats,
                 SimKrakOptions options)
    : deck_(deck),
      partition_(partition),
      machine_(machine),
      costs_(costs),
      options_(options),
      stats_(std::move(stats)) {
  util::check(stats_ != nullptr, "stats must not be null");
  util::check(options_.iterations >= 1, "iterations must be >= 1");
  util::check(partition_.parts() <= machine_.total_pes(),
              "partition uses more PEs than the machine has");
  util::check(stats_->parts() == partition_.parts(),
              "stats must describe the partition");
}

void SimKrak::append_boundary_exchange(
    sim::Schedule& schedule, const partition::SubdomainInfo& sub) const {
  constexpr std::int32_t kPhase = 2;
  // Post every asynchronous send first, make sure the sends completed,
  // then post the blocking receives (Section 4's protocol). Face counts
  // and the ghost-node augmentation are canonical per PE pair, so both
  // sides agree on every message size and tag.
  const auto for_each_message =
      [&](const auto& emit) {
        for (const partition::NeighborBoundary& boundary : sub.neighbors) {
          // One step per material group present on this boundary...
          for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
            const std::int64_t faces = boundary.faces_per_group[g];
            if (faces == 0) continue;
            for (std::int32_t msg = 0; msg < kBoundaryMessagesPerStep; ++msg) {
              double bytes = kBoundaryBytesPerFace * static_cast<double>(faces);
              if (msg < kBoundaryAugmentedMessages) {
                bytes += kBoundaryBytesPerFace *
                         static_cast<double>(
                             boundary.multi_material_nodes_per_group[g]);
              }
              emit(boundary.neighbor, bytes,
                   make_tag(kPhase, static_cast<std::int32_t>(g), msg));
            }
          }
          // ...plus the final step over all faces regardless of material.
          for (std::int32_t msg = 0; msg < kBoundaryMessagesPerStep; ++msg) {
            const double bytes =
                kBoundaryBytesPerFace * static_cast<double>(boundary.total_faces);
            emit(boundary.neighbor, bytes,
                 make_tag(kPhase, mesh::kExchangeGroupCount, msg));
          }
        }
      };

  for_each_message([&](partition::PeId peer, double bytes, std::int32_t tag) {
    schedule.push_back(sim::Op::isend(peer, bytes, tag));
  });
  schedule.push_back(sim::Op::wait_all_sends());
  for_each_message([&](partition::PeId peer, double bytes, std::int32_t tag) {
    schedule.push_back(sim::Op::recv(peer, bytes, tag));
  });
}

void SimKrak::append_ghost_update(sim::Schedule& schedule,
                                  const partition::SubdomainInfo& sub,
                                  double bytes_per_node,
                                  std::int32_t phase) const {
  // Two messages per neighbor: the locally-owned ghost nodes go out,
  // the remotely-owned ones come in (Section 4.2). Ownership is
  // globally consistent, so my "local" count equals the neighbor's
  // "remote" count for this boundary.
  for (const partition::NeighborBoundary& boundary : sub.neighbors) {
    schedule.push_back(sim::Op::isend(
        boundary.neighbor,
        bytes_per_node * static_cast<double>(boundary.ghost_nodes_local),
        make_tag(phase, 0, 0)));
  }
  schedule.push_back(sim::Op::wait_all_sends());
  for (const partition::NeighborBoundary& boundary : sub.neighbors) {
    schedule.push_back(sim::Op::recv(
        boundary.neighbor,
        bytes_per_node * static_cast<double>(boundary.ghost_nodes_remote),
        make_tag(phase, 0, 0)));
  }
}

std::size_t SimKrak::boundary_exchange_op_count(
    const partition::SubdomainInfo& sub) {
  std::size_t messages = 0;
  for (const partition::NeighborBoundary& boundary : sub.neighbors) {
    for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
      if (boundary.faces_per_group[g] != 0) {
        messages += static_cast<std::size_t>(kBoundaryMessagesPerStep);
      }
    }
    messages += static_cast<std::size_t>(kBoundaryMessagesPerStep);
  }
  return 2 * messages + 1;  // isends + recvs + wait_all_sends
}

std::size_t SimKrak::ghost_update_op_count(
    const partition::SubdomainInfo& sub) {
  return 2 * sub.neighbors.size() + 1;
}

std::size_t SimKrak::iteration_op_count(const partition::SubdomainInfo& sub) {
  std::size_t count = 0;
  for (const PhaseSpec& phase : iteration_phases()) {
    count += 1;  // compute
    switch (phase.action) {
      case PhaseAction::kBroadcastPair:
        count += 2;
        break;
      case PhaseAction::kBoundaryExchange:
        count += 2 + boundary_exchange_op_count(sub) + 1;
        break;
      case PhaseAction::kGhostUpdate8:
      case PhaseAction::kGhostUpdate16:
        count += ghost_update_op_count(sub);
        break;
      case PhaseAction::kComputationOnly:
        break;
    }
    count += phase.sync_sizes.size();
    count += 1;  // record
  }
  return count;
}

SimKrak::IterationTemplate SimKrak::build_iteration_template(
    partition::PeId pe) const {
  const partition::SubdomainInfo& sub = stats_->subdomain(pe);
  const std::span<const std::int64_t, mesh::kMaterialCount> cells(
      sub.cells_per_material);
  IterationTemplate tmpl;
  tmpl.ops.reserve(iteration_op_count(sub));

  for (const PhaseSpec& phase : iteration_phases()) {
    // Computation: the noise-free ground-truth phase time; replay
    // overwrites it with the iteration's noise draw when noise is on.
    tmpl.compute_ops.emplace_back(tmpl.ops.size(), phase.number);
    tmpl.ops.push_back(sim::Op::compute(
        costs_.subgrid_time(phase.number, cells) / machine_.compute_speedup));

    switch (phase.action) {
      case PhaseAction::kBroadcastPair:
        tmpl.ops.push_back(sim::Op::broadcast(4.0));
        tmpl.ops.push_back(sim::Op::broadcast(8.0));
        break;
      case PhaseAction::kBoundaryExchange:
        tmpl.ops.push_back(sim::Op::broadcast(4.0));
        tmpl.ops.push_back(sim::Op::broadcast(8.0));
        append_boundary_exchange(tmpl.ops, sub);
        tmpl.ops.push_back(sim::Op::gather(32.0));
        break;
      case PhaseAction::kGhostUpdate8:
      case PhaseAction::kGhostUpdate16:
        append_ghost_update(tmpl.ops, sub, phase.ghost_bytes(), phase.number);
        break;
      case PhaseAction::kComputationOnly:
        break;
    }

    // The global reductions separating phases (Table 1 sync points).
    for (double size : phase.sync_sizes) {
      tmpl.ops.push_back(sim::Op::allreduce(size));
    }
    // All ranks leave the final allreduce at the same simulated time,
    // so this marker is a globally consistent phase boundary.
    tmpl.record_ops.push_back(tmpl.ops.size());
    tmpl.ops.push_back(sim::Op::record(phase.number - 1));
  }
  util::require_internal(tmpl.ops.size() == iteration_op_count(sub),
                         "iteration op count drifted from the builder");
  return tmpl;
}

sim::Schedule SimKrak::build_schedule_replay(partition::PeId pe) const {
  const partition::SubdomainInfo& sub = stats_->subdomain(pe);
  const IterationTemplate tmpl = build_iteration_template(pe);
  const std::span<const std::int64_t, mesh::kMaterialCount> cells(
      sub.cells_per_material);
  util::Rng rng(rank_seed(options_.noise_seed, pe));

  sim::Schedule schedule;
  schedule.reserve(tmpl.ops.size() *
                   static_cast<std::size_t>(options_.iterations));
  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    const std::size_t base = schedule.size();
    schedule.insert(schedule.end(), tmpl.ops.begin(), tmpl.ops.end());
    if (options_.enable_noise) {
      // Resample in exactly the rebuild path's draw order — one draw
      // per phase per iteration from the same per-rank stream — so the
      // two paths are bit-identical (golden-tested).
      for (const auto& [pos, phase] : tmpl.compute_ops) {
        double compute_time = costs_.measured_subgrid_time(phase, cells, rng);
        compute_time /= machine_.compute_speedup;
        schedule[base + pos].duration = compute_time;
      }
    }
    if (iter > 0) {
      for (const std::size_t pos : tmpl.record_ops) {
        schedule[base + pos].slot =
            tmpl.ops[pos].slot + iter * kPhaseCount;
      }
    }
  }
  return schedule;
}

sim::Schedule SimKrak::build_schedule_rebuild(partition::PeId pe) const {
  const partition::SubdomainInfo& sub = stats_->subdomain(pe);
  util::Rng rng(rank_seed(options_.noise_seed, pe));
  sim::Schedule schedule;
  schedule.reserve(iteration_op_count(sub) *
                   static_cast<std::size_t>(options_.iterations));

  const std::span<const std::int64_t, mesh::kMaterialCount> cells(
      sub.cells_per_material);

  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    for (const PhaseSpec& phase : iteration_phases()) {
      // Computation: a noisy "measurement" of the ground-truth phase
      // time, scaled by the machine's compute speed.
      double compute_time =
          options_.enable_noise
              ? costs_.measured_subgrid_time(phase.number, cells, rng)
              : costs_.subgrid_time(phase.number, cells);
      compute_time /= machine_.compute_speedup;
      schedule.push_back(sim::Op::compute(compute_time));

      switch (phase.action) {
        case PhaseAction::kBroadcastPair:
          schedule.push_back(sim::Op::broadcast(4.0));
          schedule.push_back(sim::Op::broadcast(8.0));
          break;
        case PhaseAction::kBoundaryExchange:
          schedule.push_back(sim::Op::broadcast(4.0));
          schedule.push_back(sim::Op::broadcast(8.0));
          append_boundary_exchange(schedule, sub);
          schedule.push_back(sim::Op::gather(32.0));
          break;
        case PhaseAction::kGhostUpdate8:
        case PhaseAction::kGhostUpdate16:
          append_ghost_update(schedule, sub, phase.ghost_bytes(),
                              phase.number);
          break;
        case PhaseAction::kComputationOnly:
          break;
      }

      // The global reductions separating phases (Table 1 sync points).
      for (double size : phase.sync_sizes) {
        schedule.push_back(sim::Op::allreduce(size));
      }
      // All ranks leave the final allreduce at the same simulated time,
      // so this marker is a globally consistent phase boundary.
      schedule.push_back(
          sim::Op::record(iter * kPhaseCount + (phase.number - 1)));
    }
  }
  return schedule;
}

sim::Schedule SimKrak::build_schedule(partition::PeId pe) const {
  return options_.replay_schedules ? build_schedule_replay(pe)
                                   : build_schedule_rebuild(pe);
}

SimKrakResult SimKrak::run() const {
  const std::int32_t ranks = partition_.parts();
  sim::SimConfig sim_config;
  sim_config.threads = options_.sim_threads;
  sim::Simulator simulator(ranks, machine_.network, sim_config);
  if (options_.nic_contention && machine_.pes_per_node > 1) {
    sim::NicConfig nic;
    nic.enabled = true;
    nic.pes_per_node = machine_.pes_per_node;
    // The adapter injects at the interconnect's asymptotic bandwidth.
    nic.injection_bandwidth = 1.0 / machine_.network.byte_cost(1 << 20);
    simulator.set_nic(nic);
  }
  if (options_.hierarchical_network && machine_.pes_per_node > 1) {
    // The concrete overload: sends dispatch into the hierarchy directly
    // (no std::function per message), and the parallel engine derives
    // its lookahead and node-aligned shard boundaries from it.
    simulator.set_pair_network(
        std::make_shared<const network::HierarchicalNetwork>(
            network::make_es45_shared_memory_model(), machine_.network,
            network::Placement(ranks, machine_.pes_per_node)));
  }
  // A non-empty fault plan installs the injection engine and arms the
  // watchdog; an empty plan leaves the simulator untouched so the run
  // is bit-identical to one without the fault subsystem.
  std::unique_ptr<fault::InjectionEngine> injector;
  if (!options_.faults.empty()) {
    injector = std::make_unique<fault::InjectionEngine>(options_.faults, ranks,
                                                        kPhaseCount);
    simulator.set_fault_injector(injector.get());
    simulator.set_watchdog(injector->watchdog());
  }
  if (options_.cancel != nullptr) simulator.set_cancellation(options_.cancel);
  for (partition::PeId pe = 0; pe < ranks; ++pe) {
    simulator.set_schedule(pe, build_schedule(pe));
  }
  sim::SimResult sim_result = simulator.run();

  SimKrakResult result;
  result.ranks = ranks;
  result.total_time = sim_result.makespan;
  result.time_per_iteration =
      sim_result.makespan / static_cast<double>(options_.iterations);
  result.traffic = sim_result.traffic;
  result.events_processed = sim_result.events_processed;
  result.max_queue_depth = sim_result.max_queue_depth;
  result.coordinator_seconds = sim_result.coordinator_seconds;
  result.sort_seconds = sim_result.sort_seconds;
  result.inject_seconds = sim_result.inject_seconds;
  // Moved, not copied: at 100k ranks the per-rank breakdown is the
  // result's dominant allocation, and the simulator no longer needs it.
  result.rank_breakdown = std::move(sim_result.breakdown);
  result.fault_stats = sim_result.faults;
  result.failures = std::move(sim_result.failures);
  for (const sim::RankTimeBreakdown& rank : result.rank_breakdown) {
    result.totals.compute += rank.compute;
    result.totals.send_overhead += rank.send_overhead;
    result.totals.recv_overhead += rank.recv_overhead;
    result.totals.send_wait += rank.send_wait;
    result.totals.recv_wait += rank.recv_wait;
    result.totals.collective_wait += rank.collective_wait;
    result.totals.collective_cost += rank.collective_cost;
    result.totals.fault_delay += rank.fault_delay;
    result.totals.recovery += rank.recovery;
  }

  // Phase boundaries from rank 0's records (identical on all ranks by
  // construction). A failed run may have stopped mid-iteration; average
  // phase times over the iterations that completed, and only insist on
  // a full record set when the run was clean.
  // The schedules record slots in strictly increasing order, so the
  // flat log reads with a single cursor — no per-phase lookup.
  const auto& records = sim_result.records.front().entries();
  std::size_t cursor = 0;
  double previous = 0.0;
  std::array<double, kPhaseCount> sums{};
  std::int32_t recorded_iterations = 0;
  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    bool complete = true;
    for (std::int32_t p = 0; p < kPhaseCount; ++p) {
      const std::int32_t slot = iter * kPhaseCount + p;
      if (cursor >= records.size() || records[cursor].first != slot) {
        util::require_internal(result.failed(),
                               "missing phase boundary record");
        complete = false;
        break;
      }
      sums[static_cast<std::size_t>(p)] += records[cursor].second - previous;
      previous = records[cursor].second;
      ++cursor;
    }
    if (!complete) break;
    ++recorded_iterations;
  }
  if (recorded_iterations > 0) {
    for (std::int32_t p = 0; p < kPhaseCount; ++p) {
      result.phase_times[static_cast<std::size_t>(p)] =
          sums[static_cast<std::size_t>(p)] /
          static_cast<double>(recorded_iterations);
    }
  }
  return result;
}

double simulate_iteration_time(const mesh::InputDeck& deck, std::int32_t pes,
                               const network::MachineConfig& machine,
                               const ComputationCostEngine& costs,
                               std::uint64_t seed) {
  const partition::Partition part = partition::partition_deck(
      deck, pes, partition::PartitionMethod::kMultilevel, seed);
  SimKrakOptions options;
  options.noise_seed = seed;
  const SimKrak app(deck, part, machine, costs, options);
  return app.run().time_per_iteration;
}

}  // namespace krak::simapp
