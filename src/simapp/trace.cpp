#include "simapp/trace.hpp"

namespace krak::simapp {

std::int64_t MessageInventory::total_messages() const {
  std::int64_t total = 0;
  for (const PhaseTraffic& t : per_phase) total += t.messages;
  return total;
}

double MessageInventory::total_bytes() const {
  double total = 0.0;
  for (const PhaseTraffic& t : per_phase) total += t.bytes;
  return total;
}

double MessageInventory::mean_message_bytes() const {
  const std::int64_t messages = total_messages();
  if (messages == 0) return 0.0;
  return total_bytes() / static_cast<double>(messages);
}

double MessageInventory::fraction_at_most(double bytes) const {
  const std::int64_t messages = total_messages();
  if (messages == 0) return 0.0;
  std::int64_t covered = 0;
  for (const auto& [size, count] : size_histogram) {
    if (size > bytes) break;
    covered += count;
  }
  return static_cast<double>(covered) / static_cast<double>(messages);
}

MessageInventory compute_message_inventory(
    const partition::PartitionStats& stats) {
  MessageInventory inventory;
  const auto record = [&inventory](std::int32_t phase, double bytes) {
    MessageInventory::PhaseTraffic& t =
        inventory.per_phase[static_cast<std::size_t>(phase - 1)];
    ++t.messages;
    t.bytes += bytes;
    ++inventory.size_histogram[bytes];
  };

  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    for (const partition::NeighborBoundary& boundary : sub.neighbors) {
      // Phase 2: boundary exchange — six messages per material group
      // present, the first two augmented by multi-material ghost nodes,
      // plus six messages over all faces.
      for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
        const std::int64_t faces = boundary.faces_per_group[g];
        if (faces == 0) continue;
        const double base = kBoundaryBytesPerFace * static_cast<double>(faces);
        const double augmented =
            base + kBoundaryBytesPerFace *
                       static_cast<double>(
                           boundary.multi_material_nodes_per_group[g]);
        for (std::int32_t msg = 0; msg < kBoundaryMessagesPerStep; ++msg) {
          record(2, msg < kBoundaryAugmentedMessages ? augmented : base);
        }
      }
      for (std::int32_t msg = 0; msg < kBoundaryMessagesPerStep; ++msg) {
        record(2, kBoundaryBytesPerFace *
                      static_cast<double>(boundary.total_faces));
      }

      // Phases 4, 5, 7: one outgoing ghost-node update per neighbor.
      const auto local = static_cast<double>(boundary.ghost_nodes_local);
      record(4, 8.0 * local);
      record(5, 16.0 * local);
      record(7, 16.0 * local);
    }
  }
  return inventory;
}

}  // namespace krak::simapp
