#include "simapp/costmodel.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace krak::simapp {

using util::check;
using util::microseconds;

ComputationCostEngine::ComputationCostEngine() {
  // Per-phase laws. Values are synthetic but sized so that iteration
  // totals land in the paper's range: with the medium problem on 128
  // PEs (1,600 cells/PE) computation sums to a few tens of ms. Phases
  // 2, 6 and 14 are the expensive ones and phase 2 carries both a large
  // floor and the strongest knee bump (the paper singles phase 2 out as
  // the one defeating the mesh-specific model near the knee).
  const auto law = [](double per_cell_us, double floor_us, double bump,
                      bool material_dependent) {
    PhaseLaw l;
    l.per_cell_cost = microseconds(per_cell_us);
    l.floor = microseconds(floor_us);
    l.bump_amplitude = bump;
    l.material_dependent = material_dependent;
    return l;
  };
  laws_ = {
      law(0.3, 40.0, 0.2, false),   // phase 1: broadcast bookkeeping
      law(2.5, 500.0, 2.0, true),   // phase 2: boundary exchange + EOS
      law(2.0, 80.0, 0.1, true),    // phase 3
      law(0.8, 60.0, 0.3, false),   // phase 4: ghost prep
      law(1.2, 60.0, 0.2, false),   // phase 5
      law(3.0, 100.0, 0.1, true),   // phase 6: force accumulation
      law(0.5, 50.0, 1.0, false),   // phase 7
      law(1.5, 70.0, 0.1, true),    // phase 8
      law(1.8, 60.0, 0.4, false),   // phase 9
      law(1.0, 50.0, 0.1, false),   // phase 10
      law(2.2, 90.0, 0.2, false),   // phase 11
      law(0.9, 40.0, 0.1, false),   // phase 12
      law(1.4, 60.0, 0.1, false),   // phase 13
      law(2.8, 80.0, 0.2, true),    // phase 14: material EOS update
      law(0.4, 40.0, 0.2, false),   // phase 15
  };
  // Material cost factors for material-dependent phases: detonating HE
  // gas is the most expensive, foam the cheapest, the two aluminum
  // layers nearly identical (Figure 2).
  material_factors_ = {1.6, 1.0, 0.65, 1.05};
}

void ComputationCostEngine::check_phase(std::int32_t phase) {
  check(phase >= 1 && phase <= kPhaseCount, "phase must be in 1..15");
}

const ComputationCostEngine::PhaseLaw& ComputationCostEngine::phase_law(
    std::int32_t phase) const {
  check_phase(phase);
  return laws_[static_cast<std::size_t>(phase - 1)];
}

double ComputationCostEngine::material_factor(std::int32_t phase,
                                              mesh::Material material) const {
  check_phase(phase);
  if (!laws_[static_cast<std::size_t>(phase - 1)].material_dependent) {
    return 1.0;
  }
  return material_factors_[mesh::material_index(material)];
}

double ComputationCostEngine::knee_bump(double cells) const {
  if (cells <= 0.0) return 0.0;
  const double z = std::log(cells / knee_cells_) / knee_sigma_;
  return std::exp(-0.5 * z * z);
}

double ComputationCostEngine::subgrid_time(
    std::int32_t phase,
    std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material)
    const {
  check_phase(phase);
  const PhaseLaw& law = laws_[static_cast<std::size_t>(phase - 1)];
  std::int64_t total = 0;
  for (std::int64_t n : cells_per_material) {
    check(n >= 0, "cell counts must be non-negative");
    total += n;
  }
  if (total == 0) return 0.0;  // an idle processor does no phase work
  const double bump = 1.0 + law.bump_amplitude *
                                 knee_bump(static_cast<double>(total));
  double time = law.floor;
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    const double factor =
        law.material_dependent ? material_factors_[m] : 1.0;
    time += static_cast<double>(cells_per_material[m]) * law.per_cell_cost *
            factor * bump;
  }
  return time * inv_speedup_;
}

double ComputationCostEngine::uniform_subgrid_time(std::int32_t phase,
                                                   mesh::Material material,
                                                   std::int64_t cells) const {
  std::array<std::int64_t, mesh::kMaterialCount> counts{};
  counts[mesh::material_index(material)] = cells;
  return subgrid_time(phase, counts);
}

double ComputationCostEngine::per_cell_cost(std::int32_t phase,
                                            mesh::Material material,
                                            std::int64_t cells) const {
  check(cells > 0, "per-cell cost requires at least one cell");
  return uniform_subgrid_time(phase, material, cells) /
         static_cast<double>(cells);
}

double ComputationCostEngine::measured_subgrid_time(
    std::int32_t phase,
    std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material,
    util::Rng& rng) const {
  const double truth = subgrid_time(phase, cells_per_material);
  // Log-normal multiplicative noise: always positive, mean ~ truth.
  const double factor = std::exp(rng.next_normal(0.0, noise_sigma_));
  return truth * factor;
}

void ComputationCostEngine::set_noise_sigma(double sigma) {
  check(sigma >= 0.0 && sigma < 1.0, "noise sigma must be in [0, 1)");
  noise_sigma_ = sigma;
}

void ComputationCostEngine::set_compute_speedup(double speedup) {
  check(speedup > 0.0, "compute speedup must be positive");
  inv_speedup_ = 1.0 / speedup;
}

}  // namespace krak::simapp
