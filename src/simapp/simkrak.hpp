#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "sim/simulator.hpp"
#include "simapp/costmodel.hpp"
#include "simapp/phases.hpp"

namespace krak::simapp {

/// Options of a SimKrak run.
struct SimKrakOptions {
  /// Iterations to simulate; phase times are averaged over them.
  std::int32_t iterations = 1;
  /// Seed of the per-rank measurement-noise streams.
  std::uint64_t noise_seed = 42;
  /// Disable to make runs exactly reproduce ground truth (useful in
  /// tests asserting analytic identities).
  bool enable_noise = true;
  /// Model intra-node (shared-memory) messages separately from
  /// inter-node ones using the machine's node layout. The paper's model
  /// flattens this; enabling it quantifies the flattening error
  /// (bench_ablation_hierarchy).
  bool hierarchical_network = false;
  /// Serialize each node's outbound payloads at its adapter's injection
  /// bandwidth (the ranks of one ES-45 node share a single QsNet
  /// adapter). Off by default — the paper's Tmsg is contention-free.
  bool nic_contention = false;
  /// Build each rank's per-iteration op sequence once and replay it
  /// across `iterations`, resampling only the noisy compute times and
  /// the record slots per iteration (docs/PERFORMANCE.md). The op
  /// stream is bit-identical to the per-iteration rebuild — the legacy
  /// path is kept reachable (and golden-tested) by clearing this flag.
  bool replay_schedules = true;
  /// Deterministic fault-injection plan (see fault/plan.hpp). Empty by
  /// default: no injector is installed and the run is bit-identical to
  /// a build without the fault subsystem. A non-empty plan also arms
  /// the simulator's watchdog, so hangs the plan induces surface as
  /// structured SimKrakResult::failures instead of thrown deadlocks.
  fault::FaultPlan faults;
  /// Worker threads of the simulator's conservative parallel engine;
  /// <= 1 keeps the single-thread oracle. Results are bit-identical
  /// across thread counts (sim::SimConfig::threads), nic_contention
  /// included — shards align to NIC-node boundaries, so the adapter
  /// model is shard-local and runs parallel with no oracle fallback.
  std::int32_t sim_threads = 1;
  /// Cooperative cancellation token (not owned; must outlive the run).
  /// When it expires mid-run the simulator throws a structured
  /// sim::SimFailureError of kind kDeadline instead of finishing; null
  /// disables the checkpoints entirely, keeping the run bit-identical
  /// to a build without the cancellation subsystem.
  const util::CancellationToken* cancel = nullptr;
};

/// Result of a SimKrak run.
struct SimKrakResult {
  /// Simulated wall time of the whole run.
  double total_time = 0.0;
  /// total_time / iterations — the quantity the paper's tables report.
  double time_per_iteration = 0.0;
  /// Mean wall time of each phase (communication included).
  std::array<double, kPhaseCount> phase_times{};
  sim::TrafficStats traffic;
  /// Sum of the per-rank time decompositions over all ranks:
  /// compute vs. point-to-point vs. collective, the per-phase split the
  /// paper's Equations 1-10 predict (totals.total_seconds() is the sum
  /// of rank finish times, i.e. ranks x makespan minus end-of-run idle).
  sim::RankTimeBreakdown totals;
  /// Per-rank decomposition, index = rank.
  std::vector<sim::RankTimeBreakdown> rank_breakdown;
  std::int32_t ranks = 0;
  std::size_t events_processed = 0;
  /// High-water mark of the simulator's event queue.
  std::size_t max_queue_depth = 0;
  /// Host wall seconds of the parallel engine's serial coordinator
  /// sections (sim::SimResult::coordinator_seconds; zero under the
  /// serial oracle). The Amdahl numerator BENCH reports as
  /// coordinator_serial_fraction.
  double coordinator_seconds = 0.0;
  /// Worker-phase barrier prep seconds, summed over shards
  /// (sim::SimResult::sort_seconds).
  double sort_seconds = 0.0;
  /// Barrier apply-phase seconds, summed over shards
  /// (sim::SimResult::inject_seconds).
  double inject_seconds = 0.0;
  /// Aggregate fault-injection accounting (zero when no plan was set).
  sim::FaultStats fault_stats;
  /// Structured failures the watchdog recorded instead of hanging or
  /// aborting. Non-empty only when options.faults armed the watchdog;
  /// when non-empty, phase_times covers only fully recorded iterations.
  std::vector<sim::SimFailure> failures;
  [[nodiscard]] bool failed() const { return !failures.empty(); }
};

/// SimKrak: a discrete-event-simulated execution of the Krak iteration.
///
/// This is the project's substitute for the proprietary 270k-line
/// application (see DESIGN.md): it executes the 15-phase iteration of
/// Table 1 on P simulated processors — per-phase computation from the
/// ground-truth cost engine, boundary exchanges and ghost-node updates
/// with the exact message sizing rules of Sections 4.1–4.2, and the
/// collective inventory of Table 4 — over the discrete-event network.
/// Its outputs are the "measured" columns of the validation tables.
class SimKrak {
 public:
  SimKrak(const mesh::InputDeck& deck, const partition::Partition& partition,
          const network::MachineConfig& machine,
          const ComputationCostEngine& costs, SimKrakOptions options = {});

  /// Shares an already computed PartitionStats (e.g. from the campaign
  /// partition cache) instead of rebuilding one from the partition.
  /// `stats` must describe exactly `partition` over `deck`.
  SimKrak(const mesh::InputDeck& deck, const partition::Partition& partition,
          const network::MachineConfig& machine,
          const ComputationCostEngine& costs,
          std::shared_ptr<const partition::PartitionStats> stats,
          SimKrakOptions options);

  /// Run the simulation and aggregate timing results.
  [[nodiscard]] SimKrakResult run() const;

  /// The per-PE subgrid statistics the schedules were built from.
  [[nodiscard]] const partition::PartitionStats& stats() const {
    return *stats_;
  }

 private:
  /// One iteration's op sequence plus the positions replay must patch:
  /// compute ops get a fresh noise draw per iteration, record ops get
  /// the iteration's slot offset. Everything else is invariant.
  struct IterationTemplate {
    sim::Schedule ops;  ///< compute times noise-free, record slots for iter 0
    /// (op position, phase number) of every compute op, in phase order.
    std::vector<std::pair<std::size_t, std::int32_t>> compute_ops;
    /// Op positions of the per-phase record markers.
    std::vector<std::size_t> record_ops;
  };

  [[nodiscard]] sim::Schedule build_schedule(partition::PeId pe) const;
  [[nodiscard]] sim::Schedule build_schedule_replay(partition::PeId pe) const;
  [[nodiscard]] sim::Schedule build_schedule_rebuild(partition::PeId pe) const;
  [[nodiscard]] IterationTemplate build_iteration_template(
      partition::PeId pe) const;
  void append_boundary_exchange(sim::Schedule& schedule,
                                const partition::SubdomainInfo& sub) const;
  void append_ghost_update(sim::Schedule& schedule,
                           const partition::SubdomainInfo& sub,
                           double bytes_per_node, std::int32_t phase) const;
  [[nodiscard]] static std::size_t boundary_exchange_op_count(
      const partition::SubdomainInfo& sub);
  [[nodiscard]] static std::size_t ghost_update_op_count(
      const partition::SubdomainInfo& sub);
  /// Exact number of ops one iteration appends for this subdomain.
  [[nodiscard]] static std::size_t iteration_op_count(
      const partition::SubdomainInfo& sub);

  const mesh::InputDeck& deck_;
  // Stored by value: callers routinely pass freshly built partitions as
  // temporaries, and a dangling reference here outlives the expression.
  partition::Partition partition_;
  const network::MachineConfig& machine_;
  const ComputationCostEngine& costs_;
  SimKrakOptions options_;
  std::shared_ptr<const partition::PartitionStats> stats_;
};

/// Convenience wrapper: partition `deck` over `pes` processors with the
/// multilevel partitioner and return the simulated per-iteration time.
[[nodiscard]] double simulate_iteration_time(
    const mesh::InputDeck& deck, std::int32_t pes,
    const network::MachineConfig& machine, const ComputationCostEngine& costs,
    std::uint64_t seed = 1);

}  // namespace krak::simapp
