#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "partition/stats.hpp"
#include "simapp/phases.hpp"

namespace krak::simapp {

/// Static point-to-point message inventory of one iteration: every
/// directed message SimKrak would send, derived analytically from the
/// partition statistics and the Section 4.1-4.2 sizing rules. Useful
/// for studying the traffic mix (many tiny latency-bound messages) that
/// drives the paper's heterogeneous-mode over-prediction.
struct MessageInventory {
  struct PhaseTraffic {
    std::int64_t messages = 0;
    double bytes = 0.0;
  };
  /// Indexed by phase-1; only phases 2, 4, 5 and 7 are non-zero.
  std::array<PhaseTraffic, kPhaseCount> per_phase{};
  /// Message size (bytes) -> count, across all phases.
  std::map<double, std::int64_t> size_histogram;

  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] double total_bytes() const;
  /// Mean message size; 0 when there are no messages.
  [[nodiscard]] double mean_message_bytes() const;
  /// Fraction of messages no larger than `bytes`.
  [[nodiscard]] double fraction_at_most(double bytes) const;
};

/// Enumerate one iteration's directed messages from the partition
/// statistics (each pair's traffic counted once per direction, matching
/// SimKrak's sends exactly).
[[nodiscard]] MessageInventory compute_message_inventory(
    const partition::PartitionStats& stats);

}  // namespace krak::simapp
