#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mesh/material.hpp"
#include "util/rng.hpp"

namespace krak::simapp {

inline constexpr std::int32_t kPhaseCount = 15;

/// Ground-truth per-phase computation cost engine of SimKrak.
///
/// This class plays the role the real Krak application's computation
/// plays in the paper: the analytic model never reads it directly —
/// calibration only observes it through noisy `measured_*` calls, the
/// way the authors observed Krak through wall-clock timers.
///
/// The per-subgrid time of phase p on a subgrid with n_m cells of
/// material m (n = sum n_m) is
///
///   T(p, {n_m}) = C0_p + sum_m n_m * c_{p,m} * (1 + A_p * B(n))
///
/// where C0_p is a fixed per-phase overhead (producing the paper's
/// observation that "computation time per subgrid approaches a constant"
/// as the subgrid shrinks, Figure 3), c_{p,m} the asymptotic per-cell
/// cost (material-dependent only for some phases, Figure 2), and
/// B(n) = exp(-(ln(n / knee))^2 / (2 sigma^2)) a log-normal bump centered
/// at the knee of the cost curve. The bump gives the per-cell curve real
/// curvature around the knee, which is what defeats the model's
/// piecewise-linear interpolation there (the >50% errors of Table 5).
class ComputationCostEngine {
 public:
  /// Parameters of one phase's cost law.
  struct PhaseLaw {
    double per_cell_cost = 0.0;  ///< c_p base, seconds per cell
    double floor = 0.0;          ///< C0_p, seconds
    double bump_amplitude = 0.0; ///< A_p, dimensionless
    bool material_dependent = false;
  };

  /// The reference engine: calibrated so iteration totals land in the
  /// paper's range (tens of milliseconds per iteration at hundreds of
  /// PEs on the medium problem).
  ComputationCostEngine();

  /// Per-subgrid ground-truth time of one phase (no noise). `phase` is
  /// 1-based (1..15); cells_per_material holds n_m.
  [[nodiscard]] double subgrid_time(
      std::int32_t phase,
      std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material)
      const;

  /// Ground-truth time of a single-material subgrid of n cells.
  [[nodiscard]] double uniform_subgrid_time(std::int32_t phase,
                                            mesh::Material material,
                                            std::int64_t cells) const;

  /// Ground-truth per-cell cost (uniform_subgrid_time / cells); the
  /// curves of Figure 3.
  [[nodiscard]] double per_cell_cost(std::int32_t phase,
                                     mesh::Material material,
                                     std::int64_t cells) const;

  /// A "wall-clock measurement": ground truth with multiplicative
  /// log-normal noise. Calibration consumes only this.
  [[nodiscard]] double measured_subgrid_time(
      std::int32_t phase,
      std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material,
      util::Rng& rng) const;

  /// Relative standard deviation of measurement noise (default 1%).
  void set_noise_sigma(double sigma);
  [[nodiscard]] double noise_sigma() const { return noise_sigma_; }

  /// Multiplicative factor of `material` relative to the base per-cell
  /// cost in material-dependent phases (1.0 in independent phases).
  [[nodiscard]] double material_factor(std::int32_t phase,
                                       mesh::Material material) const;

  [[nodiscard]] const PhaseLaw& phase_law(std::int32_t phase) const;

  /// Scale every cost by 1/speedup (procurement what-if knob).
  void set_compute_speedup(double speedup);

 private:
  [[nodiscard]] double knee_bump(double cells) const;
  static void check_phase(std::int32_t phase);

  std::array<PhaseLaw, kPhaseCount> laws_;
  std::array<double, mesh::kMaterialCount> material_factors_;
  double knee_cells_ = 64.0;
  double knee_sigma_ = 0.9;  ///< width in ln(cells)
  double noise_sigma_ = 0.01;
  double inv_speedup_ = 1.0;
};

}  // namespace krak::simapp
