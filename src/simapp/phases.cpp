#include "simapp/phases.hpp"

namespace krak::simapp {

std::string_view phase_action_name(PhaseAction action) {
  switch (action) {
    case PhaseAction::kBroadcastPair: return "Broadcast (4 bytes, 8 bytes)";
    case PhaseAction::kBoundaryExchange:
      return "Bcast (4, 8 bytes) + Boundary exchange + Gather (32 bytes)";
    case PhaseAction::kComputationOnly: return "Computation only";
    case PhaseAction::kGhostUpdate8: return "Ghost node updates (8 bytes)";
    case PhaseAction::kGhostUpdate16: return "Ghost node updates (16 bytes)";
  }
  return "unknown";
}

const std::array<PhaseSpec, kPhaseCount>& iteration_phases() {
  // Sync sizes distribute Table 4's 9 x 4-byte + 13 x 8-byte allreduces
  // over Table 1's per-phase sync-point counts
  // (2,1,3,1,1,3,1,1,1,1,2,1,1,1,2).
  static const std::array<PhaseSpec, kPhaseCount> kPhases = {{
      {1, PhaseAction::kBroadcastPair, {4, 8}},
      {2, PhaseAction::kBoundaryExchange, {8}},
      {3, PhaseAction::kComputationOnly, {4, 4, 8}},
      {4, PhaseAction::kGhostUpdate8, {8}},
      {5, PhaseAction::kGhostUpdate16, {8}},
      {6, PhaseAction::kComputationOnly, {4, 4, 8}},
      {7, PhaseAction::kGhostUpdate16, {8}},
      {8, PhaseAction::kComputationOnly, {4}},
      {9, PhaseAction::kComputationOnly, {4}},
      {10, PhaseAction::kComputationOnly, {8}},
      {11, PhaseAction::kComputationOnly, {4, 8}},
      {12, PhaseAction::kComputationOnly, {8}},
      {13, PhaseAction::kComputationOnly, {8}},
      {14, PhaseAction::kComputationOnly, {8}},
      {15, PhaseAction::kBroadcastPair, {4, 8}},
  }};
  return kPhases;
}

DerivedCollectiveCounts derive_collective_counts() {
  DerivedCollectiveCounts counts;
  for (const PhaseSpec& phase : iteration_phases()) {
    if (phase.action == PhaseAction::kBroadcastPair ||
        phase.action == PhaseAction::kBoundaryExchange) {
      ++counts.bcast_4b;
      ++counts.bcast_8b;
    }
    if (phase.action == PhaseAction::kBoundaryExchange) {
      ++counts.gather_32b;
    }
    for (double size : phase.sync_sizes) {
      if (size == 4.0) {
        ++counts.allreduce_4b;
      } else {
        ++counts.allreduce_8b;
      }
    }
  }
  return counts;
}

}  // namespace krak::simapp
