#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <numeric>
#include <vector>

#include "partition/partition.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace krak::partition {

namespace {

/// One coarsening step: heavy-edge matching, as in Metis. Returns the
/// coarse graph and the fine->coarse vertex map.
struct CoarseningStep {
  Graph coarse;
  std::vector<std::int32_t> fine_to_coarse;
};

CoarseningStep coarsen_once(const Graph& fine, util::Rng& rng) {
  const std::int32_t n = fine.num_vertices();
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  // Heavy-edge matching: pair each unmatched vertex with its unmatched
  // neighbor across the heaviest edge.
  for (std::int32_t v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    const auto neighbors = fine.neighbors(v);
    const auto weights = fine.edge_weights(v);
    std::int32_t best = -1;
    std::int32_t best_weight = -1;
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      const std::int32_t u = neighbors[e];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (weights[e] > best_weight) {
        best_weight = weights[e];
        best = u;
      }
    }
    if (best != -1) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  CoarseningStep step;
  step.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  std::int32_t coarse_count = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    if (step.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const std::int32_t partner = match[static_cast<std::size_t>(v)];
    step.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
    step.fine_to_coarse[static_cast<std::size_t>(partner)] = coarse_count;
    ++coarse_count;
  }

  Graph& coarse = step.coarse;
  coarse.vwgt.assign(static_cast<std::size_t>(coarse_count), 0);
  for (std::int32_t v = 0; v < n; ++v) {
    coarse.vwgt[static_cast<std::size_t>(
        step.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        fine.vwgt[static_cast<std::size_t>(v)];
  }

  // Members of each coarse vertex (a matched pair or a singleton).
  std::vector<std::array<std::int32_t, 2>> members(
      static_cast<std::size_t>(coarse_count), {-1, -1});
  for (std::int32_t v = 0; v < n; ++v) {
    auto& slot = members[static_cast<std::size_t>(
        step.fine_to_coarse[static_cast<std::size_t>(v)])];
    if (slot[0] == -1) {
      slot[0] = v;
    } else if (slot[0] != v) {
      slot[1] = v;
    }
  }

  // Aggregate edges between coarse vertices. A scatter array keeps this
  // O(E) without hashing; it is cleared after each coarse vertex so the
  // matched pair's combined neighbor list is deduplicated. Coarse
  // vertices are emitted in order, so the deduplicated lists stream
  // straight into the CSR arrays — no per-vertex staging vectors.
  std::vector<std::int32_t> edge_pos(static_cast<std::size_t>(coarse_count), -1);
  coarse.xadj.reserve(static_cast<std::size_t>(coarse_count) + 1);
  coarse.xadj.push_back(0);
  // Upper bound: coarsening only ever collapses or merges fine edges.
  coarse.adjncy.reserve(fine.adjncy.size());
  coarse.ewgt.reserve(fine.adjncy.size());
  for (std::int32_t cv = 0; cv < coarse_count; ++cv) {
    const std::size_t start = coarse.adjncy.size();
    for (std::int32_t v : members[static_cast<std::size_t>(cv)]) {
      if (v == -1) continue;
      const auto neighbors = fine.neighbors(v);
      const auto weights = fine.edge_weights(v);
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        const std::int32_t cu =
            step.fine_to_coarse[static_cast<std::size_t>(neighbors[e])];
        if (cu == cv) continue;  // edge collapses inside the coarse vertex
        const std::int32_t pos = edge_pos[static_cast<std::size_t>(cu)];
        if (pos >= 0) {
          coarse.ewgt[start + static_cast<std::size_t>(pos)] += weights[e];
        } else {
          edge_pos[static_cast<std::size_t>(cu)] =
              static_cast<std::int32_t>(coarse.adjncy.size() - start);
          coarse.adjncy.push_back(cu);
          coarse.ewgt.push_back(weights[e]);
        }
      }
    }
    for (std::size_t i = start; i < coarse.adjncy.size(); ++i) {
      edge_pos[static_cast<std::size_t>(coarse.adjncy[i])] = -1;
    }
    coarse.xadj.push_back(static_cast<std::int64_t>(coarse.adjncy.size()));
  }
  return step;
}

/// Greedy graph growing: grow parts 0..k-2 by BFS from a seed until each
/// reaches its weight target; the last part takes the remainder.
std::vector<PeId> initial_partition(const Graph& graph, std::int32_t parts,
                                    util::Rng& rng) {
  const std::int32_t n = graph.num_vertices();
  const std::int64_t total = graph.total_vertex_weight();
  std::vector<PeId> part(static_cast<std::size_t>(n), -1);
  std::int32_t unassigned = n;

  for (PeId p = 0; p < parts - 1; ++p) {
    const std::int64_t target = total / parts;
    // Seed: a random unassigned vertex, preferring one adjacent to an
    // already-assigned region boundary for contiguity.
    std::int32_t seed = -1;
    for (std::int32_t attempt = 0; attempt < 16 && seed == -1; ++attempt) {
      const auto v = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (part[static_cast<std::size_t>(v)] == -1) seed = v;
    }
    if (seed == -1) {
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
      }
    }
    if (seed == -1) break;  // everything assigned already

    std::int64_t weight = 0;
    std::deque<std::int32_t> frontier{seed};
    part[static_cast<std::size_t>(seed)] = p;
    --unassigned;
    weight += graph.vwgt[static_cast<std::size_t>(seed)];
    while (weight < target && !frontier.empty()) {
      const std::int32_t v = frontier.front();
      frontier.pop_front();
      for (std::int32_t u : graph.neighbors(v)) {
        if (part[static_cast<std::size_t>(u)] != -1) continue;
        if (weight >= target) break;
        const std::int64_t w = graph.vwgt[static_cast<std::size_t>(u)];
        // Overshoot the target by at most half a vertex so coarse-level
        // parts start out balanced.
        if (weight + w > target + w / 2) continue;
        part[static_cast<std::size_t>(u)] = p;
        --unassigned;
        weight += w;
        frontier.push_back(u);
      }
    }
    // The BFS can stall inside a closed region; restart from any
    // unassigned vertex to honor the weight target.
    while (weight < target && unassigned > parts - 1 - p) {
      std::int32_t restart = -1;
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          restart = v;
          break;
        }
      }
      if (restart == -1) break;
      part[static_cast<std::size_t>(restart)] = p;
      --unassigned;
      weight += graph.vwgt[static_cast<std::size_t>(restart)];
      frontier.push_back(restart);
      while (weight < target && !frontier.empty()) {
        const std::int32_t v = frontier.front();
        frontier.pop_front();
        for (std::int32_t u : graph.neighbors(v)) {
          if (part[static_cast<std::size_t>(u)] != -1) continue;
          if (weight >= target) break;
          part[static_cast<std::size_t>(u)] = p;
          --unassigned;
          weight += graph.vwgt[static_cast<std::size_t>(u)];
          frontier.push_back(u);
        }
      }
    }
  }
  for (std::int32_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = parts - 1;
    }
  }
  return part;
}

/// Greedy k-way FM-style refinement: repeatedly move boundary vertices
/// to the neighboring part with the best cut gain, subject to a balance
/// ceiling. Also performs balance repair moves when a part exceeds the
/// ceiling even at zero or negative gain.
void refine(const Graph& graph, std::int32_t parts, std::vector<PeId>& part,
            double max_imbalance) {
  const std::int32_t n = graph.num_vertices();
  const std::int64_t total = graph.total_vertex_weight();
  const auto ceiling = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(total) / parts * max_imbalance));

  std::vector<std::int64_t> weight(static_cast<std::size_t>(parts), 0);
  for (std::int32_t v = 0; v < n; ++v) {
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        graph.vwgt[static_cast<std::size_t>(v)];
  }

  // Connection weight of v to each part, computed on demand. `touched`
  // (the parts v connects to, in first-occurrence order — the move
  // loops' tie-break order) is hoisted out of the vertex loop: clearing
  // keeps its capacity, so steady state allocates nothing per vertex.
  std::vector<std::int64_t> conn(static_cast<std::size_t>(parts), 0);
  std::vector<PeId> touched;

  // Interior fast path: a vertex whose neighbors all share its part can
  // never move, and its conn/touched state would be discarded unread.
  // Boundary membership is tracked incrementally: it depends only on a
  // vertex's own part and its neighbors' parts, so a move of v can only
  // change the status of v and of v's neighbors — exactly those are
  // recomputed. Every pass then pays O(V) flag reads plus full gain
  // computation on the O(boundary) fringe, instead of rescanning every
  // adjacency list. The flag always equals what a fresh scan would
  // return, so visit order and move decisions — and therefore the
  // resulting assignment — are unchanged.
  const auto is_boundary = [&graph, &part](std::int32_t v) -> char {
    const PeId p = part[static_cast<std::size_t>(v)];
    for (const std::int32_t u : graph.neighbors(v)) {
      if (part[static_cast<std::size_t>(u)] != p) return 1;
    }
    return 0;
  };
  std::vector<char> boundary(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    boundary[static_cast<std::size_t>(v)] = is_boundary(v);
  }

  constexpr int kMaxPasses = 32;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool moved_any = false;
    for (std::int32_t v = 0; v < n; ++v) {
      if (!boundary[static_cast<std::size_t>(v)]) continue;
      const PeId from = part[static_cast<std::size_t>(v)];
      const auto neighbors = graph.neighbors(v);
      const auto weights = graph.edge_weights(v);
      touched.clear();
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        const PeId p = part[static_cast<std::size_t>(neighbors[e])];
        if (conn[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
        conn[static_cast<std::size_t>(p)] += weights[e];
      }
      {
        const std::int64_t vw = graph.vwgt[static_cast<std::size_t>(v)];
        const std::int64_t internal = conn[static_cast<std::size_t>(from)];
        PeId best_part = from;
        std::int64_t best_gain = 0;
        const bool from_overweight =
            weight[static_cast<std::size_t>(from)] > ceiling;
        if (from_overweight) {
          // Balance repair: bleed the overweight part toward its
          // lightest adjacent part, taking cut gain only as tie-break.
          // Negative-gain moves are allowed — restoring balance beats
          // edge cut here (Metis behaves the same way).
          std::int64_t best_weight = weight[static_cast<std::size_t>(from)] - vw;
          for (PeId p : touched) {
            if (p == from) continue;
            const std::int64_t gain =
                conn[static_cast<std::size_t>(p)] - internal;
            const std::int64_t w = weight[static_cast<std::size_t>(p)];
            if (w + vw >= weight[static_cast<std::size_t>(from)]) continue;
            if (w < best_weight ||
                (w == best_weight && best_part != from && gain > best_gain)) {
              best_weight = w;
              best_gain = gain;
              best_part = p;
            }
          }
        } else {
          for (PeId p : touched) {
            if (p == from) continue;
            const std::int64_t gain =
                conn[static_cast<std::size_t>(p)] - internal;
            if (weight[static_cast<std::size_t>(p)] + vw > ceiling) continue;
            if (gain > best_gain) {
              best_gain = gain;
              best_part = p;
            }
          }
        }
        if (best_part != from) {
          // Never empty a part: the model indexes every PE.
          if (weight[static_cast<std::size_t>(from)] - vw > 0) {
            part[static_cast<std::size_t>(v)] = best_part;
            weight[static_cast<std::size_t>(from)] -= vw;
            weight[static_cast<std::size_t>(best_part)] += vw;
            moved_any = true;
            boundary[static_cast<std::size_t>(v)] = is_boundary(v);
            for (const std::int32_t u : neighbors) {
              boundary[static_cast<std::size_t>(u)] = is_boundary(u);
            }
          }
        }
      }
      for (PeId p : touched) conn[static_cast<std::size_t>(p)] = 0;
    }
    if (!moved_any) break;
  }
}

}  // namespace

Partition partition_multilevel(const Graph& graph, std::int32_t parts,
                               std::uint64_t seed) {
  KRAK_REQUIRE(parts > 0, "partition_multilevel requires parts > 0");
  KRAK_REQUIRE(graph.num_vertices() >= parts, "more parts than vertices");
  util::Rng rng(seed);

  if (parts == 1) {
    return Partition(1, std::vector<PeId>(
                            static_cast<std::size_t>(graph.num_vertices()), 0));
  }

  // Coarsen until the graph is small relative to the part count or
  // matching stops shrinking it.
  std::vector<Graph> levels{graph};
  std::vector<std::vector<std::int32_t>> maps;
  const std::int32_t coarse_target = std::max(parts * 16, 256);
  while (levels.back().num_vertices() > coarse_target) {
    CoarseningStep step = coarsen_once(levels.back(), rng);
    if (step.coarse.num_vertices() >=
        levels.back().num_vertices() * 19 / 20) {
      break;  // diminishing returns; stop coarsening
    }
    maps.push_back(std::move(step.fine_to_coarse));
    levels.push_back(std::move(step.coarse));
  }

  constexpr double kMaxImbalance = 1.02;
  std::vector<PeId> part = initial_partition(levels.back(), parts, rng);
  refine(levels.back(), parts, part, kMaxImbalance);

  // Uncoarsen: project to each finer level and refine.
  for (std::size_t level = maps.size(); level-- > 0;) {
    const Graph& fine = levels[level];
    std::vector<PeId> fine_part(static_cast<std::size_t>(fine.num_vertices()));
    for (std::int32_t v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(maps[level][static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    refine(fine, parts, part, kMaxImbalance);
  }

  // Guarantee no part is empty (tiny graphs with aggressive growing can
  // starve the last parts): steal single cells from the largest part.
  std::vector<std::int64_t> weight(static_cast<std::size_t>(parts), 0);
  for (PeId p : part) ++weight[static_cast<std::size_t>(p)];
  for (PeId p = 0; p < parts; ++p) {
    if (weight[static_cast<std::size_t>(p)] > 0) continue;
    const auto largest = static_cast<PeId>(
        std::max_element(weight.begin(), weight.end()) - weight.begin());
    for (std::size_t v = 0; v < part.size(); ++v) {
      if (part[v] == largest) {
        part[v] = p;
        --weight[static_cast<std::size_t>(largest)];
        ++weight[static_cast<std::size_t>(p)];
        break;
      }
    }
  }

  return Partition(parts, std::move(part));
}

}  // namespace krak::partition
