#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "partition/partition.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

// Multilevel k-way partitioner (the project's Metis stand-in).
//
// Everything in this file obeys one contract: the resulting assignment
// is a pure function of (graph, parts, seed). Thread count, ladder-cache
// hits, and every fast path below are output-invariant, so the model's
// measured/predicted numbers never move when the partitioner gets
// faster. docs/PERFORMANCE.md ("Partitioner") walks through the
// identity argument for each path; tests/partition/determinism_test.cpp
// enforces it against checked-in checksums at 1/2/8 threads.

namespace krak::partition {

namespace {

/// One coarsening step: heavy-edge matching, as in Metis. Returns the
/// coarse graph and the fine->coarse vertex map.
struct CoarseningStep {
  Graph coarse;
  std::vector<std::int32_t> fine_to_coarse;
};

/// Serial reference matching: walk the shuffled order, pair each
/// unmatched vertex with its unmatched neighbor across the heaviest
/// edge (first occurrence wins ties via the strict comparison).
void match_serial(const Graph& fine, const std::vector<std::int32_t>& order,
                  std::vector<std::int32_t>& match) {
  const std::int64_t* const xadj = fine.xadj.data();
  const std::int32_t* const adjncy = fine.adjncy.data();
  const std::int32_t* const ewgt = fine.ewgt.data();
  const std::size_t count = order.size();
  for (std::size_t oi = 0; oi < count; ++oi) {
    if (oi + 8 < count) {
      // The shuffled order makes both loads effectively random; telling
      // the prefetcher a few iterations ahead hides most of the misses.
      const std::int32_t pv = order[oi + 8];
      __builtin_prefetch(&match[static_cast<std::size_t>(pv)]);
      __builtin_prefetch(&xadj[pv]);
    }
    const std::int32_t v = order[oi];
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    std::int32_t best = -1;
    std::int32_t best_weight = -1;
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const std::int32_t u = adjncy[e];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (ewgt[e] > best_weight) {
        best_weight = ewgt[e];
        best = u;
      }
    }
    if (best != -1) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }
}

/// Speculative parallel matching, identical output to match_serial.
///
/// The order is processed in fixed windows. Workers compute a match
/// proposal for every position of the window against the match state as
/// of the window start (no writes happen during the parallel phase), a
/// serial committer then walks the window in order. Matches only ever
/// grow, so a proposal is still exact at commit time unless its partner
/// was taken by an earlier commit:
///  - the proposed partner is the first strictly-heaviest unmatched
///    neighbor over a superset of the commit-time unmatched set; if it
///    is still unmatched, removing other vertices can only have removed
///    competitors it already beat, so it is still the serial pick;
///  - a self-match proposal (no unmatched neighbor at snapshot time)
///    stays valid because the unmatched set only shrinks.
/// Invalidated proposals (rare) are recomputed serially in place.
void match_speculative(const Graph& fine, const std::vector<std::int32_t>& order,
                       std::vector<std::int32_t>& match,
                       util::ThreadPool& pool) {
  const std::int64_t* const xadj = fine.xadj.data();
  const std::int32_t* const adjncy = fine.adjncy.data();
  const std::int32_t* const ewgt = fine.ewgt.data();
  constexpr std::size_t kWindow = 8192;
  constexpr std::int32_t kAlreadyMatched = -2;
  std::vector<std::int32_t> proposal(std::min(kWindow, order.size()));

  const auto propose = [&](std::int32_t v) -> std::int32_t {
    std::int32_t best = -1;
    std::int32_t best_weight = -1;
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const std::int32_t u = adjncy[e];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (ewgt[e] > best_weight) {
        best_weight = ewgt[e];
        best = u;
      }
    }
    return best;  // -1: self-match
  };

  for (std::size_t window = 0; window < order.size(); window += kWindow) {
    const std::size_t end = std::min(window + kWindow, order.size());
    const std::size_t size = end - window;
    pool.parallel_for_chunked(
        size, 1024, [&](std::size_t begin, std::size_t stop) {
          for (std::size_t i = begin; i < stop; ++i) {
            const std::int32_t v = order[window + i];
            proposal[i] = match[static_cast<std::size_t>(v)] != -1
                              ? kAlreadyMatched
                              : propose(v);
          }
        });
    for (std::size_t i = 0; i < size; ++i) {
      const std::int32_t v = order[window + i];
      if (match[static_cast<std::size_t>(v)] != -1) continue;
      std::int32_t best = proposal[i];
      if (best == kAlreadyMatched ||
          (best >= 0 && match[static_cast<std::size_t>(best)] != -1)) {
        best = propose(v);  // partner taken by an earlier commit
      }
      if (best != -1) {
        match[static_cast<std::size_t>(v)] = best;
        match[static_cast<std::size_t>(best)] = v;
      } else {
        match[static_cast<std::size_t>(v)] = v;
      }
    }
  }
}

CoarseningStep coarsen_once(const Graph& fine, util::Rng& rng,
                            util::ThreadPool* pool) {
  const std::int32_t n = fine.num_vertices();
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  if (pool != nullptr) {
    match_speculative(fine, order, match, *pool);
  } else {
    match_serial(fine, order, match);
  }

  CoarseningStep step;
  step.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  std::int32_t coarse_count = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    if (step.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const std::int32_t partner = match[static_cast<std::size_t>(v)];
    step.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
    step.fine_to_coarse[static_cast<std::size_t>(partner)] = coarse_count;
    ++coarse_count;
  }

  Graph& coarse = step.coarse;
  coarse.vwgt.assign(static_cast<std::size_t>(coarse_count), 0);
  for (std::int32_t v = 0; v < n; ++v) {
    coarse.vwgt[static_cast<std::size_t>(
        step.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        fine.vwgt[static_cast<std::size_t>(v)];
  }

  // Members of each coarse vertex (a matched pair or a singleton).
  std::vector<std::array<std::int32_t, 2>> members(
      static_cast<std::size_t>(coarse_count), {-1, -1});
  for (std::int32_t v = 0; v < n; ++v) {
    auto& slot = members[static_cast<std::size_t>(
        step.fine_to_coarse[static_cast<std::size_t>(v)])];
    if (slot[0] == -1) {
      slot[0] = v;
    } else if (slot[0] != v) {
      slot[1] = v;
    }
  }

  // Aggregate edges between coarse vertices. A coarse vertex merges at
  // most two fine adjacency lists, so deduplicating with a linear scan
  // over its own (short) output range beats a scatter array: no O(n)
  // clearing, and the range being scanned is the cache line just
  // written. Coarse vertices are emitted in order and neighbors in
  // first-occurrence order — the same lists the scatter version built.
  const std::int64_t* const fxadj = fine.xadj.data();
  const std::int32_t* const fadjncy = fine.adjncy.data();
  const std::int32_t* const fewgt = fine.ewgt.data();
  const std::int32_t* const f2c = step.fine_to_coarse.data();

  if (pool == nullptr) {
    coarse.xadj.reserve(static_cast<std::size_t>(coarse_count) + 1);
    coarse.xadj.push_back(0);
    // Upper bound: coarsening only ever collapses or merges fine edges.
    coarse.adjncy.reserve(fine.adjncy.size());
    coarse.ewgt.reserve(fine.adjncy.size());
    for (std::int32_t cv = 0; cv < coarse_count; ++cv) {
      const std::size_t start = coarse.adjncy.size();
      for (std::int32_t v : members[static_cast<std::size_t>(cv)]) {
        if (v == -1) continue;
        for (std::int64_t e = fxadj[v]; e < fxadj[v + 1]; ++e) {
          const std::int32_t cu = f2c[fadjncy[e]];
          if (cu == cv) continue;  // edge collapses inside the coarse vertex
          std::size_t pos = start;
          const std::size_t filled = coarse.adjncy.size();
          while (pos < filled && coarse.adjncy[pos] != cu) ++pos;
          if (pos < filled) {
            coarse.ewgt[pos] += fewgt[e];
          } else {
            coarse.adjncy.push_back(cu);
            coarse.ewgt.push_back(fewgt[e]);
          }
        }
      }
      coarse.xadj.push_back(static_cast<std::int64_t>(coarse.adjncy.size()));
    }
    return step;
  }

  // Two-pass parallel aggregation, identical output to the streaming
  // loop: coarse degrees are counted per coarse vertex in parallel, a
  // serial prefix sum fixes every vertex's CSR range, and a second
  // parallel pass fills the ranges. Each coarse vertex's list is built
  // by the same member-order linear dedup as the serial loop, and the
  // ranges are disjoint, so the passes are race-free and the resulting
  // CSR arrays are byte-identical.
  const std::size_t grain = std::max<std::size_t>(
      1024, static_cast<std::size_t>(coarse_count) / (pool->thread_count() * 4));
  const auto emit = [&](std::int32_t cv, std::int32_t* out_adj,
                        std::int32_t* out_wgt) -> std::int64_t {
    std::int64_t filled = 0;
    for (std::int32_t v : members[static_cast<std::size_t>(cv)]) {
      if (v == -1) continue;
      for (std::int64_t e = fxadj[v]; e < fxadj[v + 1]; ++e) {
        const std::int32_t cu = f2c[fadjncy[e]];
        if (cu == cv) continue;
        std::int64_t pos = 0;
        while (pos < filled && out_adj[pos] != cu) ++pos;
        if (pos < filled) {
          if (out_wgt != nullptr) out_wgt[pos] += fewgt[e];
        } else {
          out_adj[filled] = cu;
          if (out_wgt != nullptr) out_wgt[filled] = fewgt[e];
          ++filled;
        }
      }
    }
    return filled;
  };

  coarse.xadj.assign(static_cast<std::size_t>(coarse_count) + 1, 0);
  pool->parallel_for_chunked(
      static_cast<std::size_t>(coarse_count), grain,
      [&](std::size_t begin, std::size_t stop) {
        // Degree pass: count distinct coarse neighbors into a scratch
        // list; a pair merges at most two short adjacency lists.
        std::vector<std::int32_t> scratch(16);
        for (std::size_t cv = begin; cv < stop; ++cv) {
          const std::int32_t c = static_cast<std::int32_t>(cv);
          const std::int64_t cap =
              (members[cv][0] != -1 ? fxadj[members[cv][0] + 1] -
                                          fxadj[members[cv][0]]
                                    : 0) +
              (members[cv][1] != -1 ? fxadj[members[cv][1] + 1] -
                                          fxadj[members[cv][1]]
                                    : 0);
          if (static_cast<std::size_t>(cap) > scratch.size()) {
            scratch.resize(static_cast<std::size_t>(cap));
          }
          coarse.xadj[cv + 1] = emit(c, scratch.data(), nullptr);
        }
      });
  for (std::size_t cv = 0; cv < static_cast<std::size_t>(coarse_count); ++cv) {
    coarse.xadj[cv + 1] += coarse.xadj[cv];
  }
  coarse.adjncy.resize(static_cast<std::size_t>(coarse.xadj.back()));
  coarse.ewgt.resize(static_cast<std::size_t>(coarse.xadj.back()));
  pool->parallel_for_chunked(
      static_cast<std::size_t>(coarse_count), grain,
      [&](std::size_t begin, std::size_t stop) {
        for (std::size_t cv = begin; cv < stop; ++cv) {
          emit(static_cast<std::int32_t>(cv),
               coarse.adjncy.data() + coarse.xadj[cv],
               coarse.ewgt.data() + coarse.xadj[cv]);
        }
      });
  return step;
}

/// Greedy graph growing: grow parts 0..k-2 by BFS from a seed until each
/// reaches its weight target; the last part takes the remainder.
std::vector<PeId> initial_partition(const Graph& graph, std::int32_t parts,
                                    util::Rng& rng) {
  const std::int32_t n = graph.num_vertices();
  const std::int64_t total = graph.total_vertex_weight();
  std::vector<PeId> part(static_cast<std::size_t>(n), -1);
  std::int32_t unassigned = n;

  for (PeId p = 0; p < parts - 1; ++p) {
    const std::int64_t target = total / parts;
    // Seed: a random unassigned vertex, preferring one adjacent to an
    // already-assigned region boundary for contiguity.
    std::int32_t seed = -1;
    for (std::int32_t attempt = 0; attempt < 16 && seed == -1; ++attempt) {
      const auto v = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (part[static_cast<std::size_t>(v)] == -1) seed = v;
    }
    if (seed == -1) {
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
      }
    }
    if (seed == -1) break;  // everything assigned already

    std::int64_t weight = 0;
    std::deque<std::int32_t> frontier{seed};
    part[static_cast<std::size_t>(seed)] = p;
    --unassigned;
    weight += graph.vwgt[static_cast<std::size_t>(seed)];
    while (weight < target && !frontier.empty()) {
      const std::int32_t v = frontier.front();
      frontier.pop_front();
      for (std::int32_t u : graph.neighbors(v)) {
        if (part[static_cast<std::size_t>(u)] != -1) continue;
        if (weight >= target) break;
        const std::int64_t w = graph.vwgt[static_cast<std::size_t>(u)];
        // Overshoot the target by at most half a vertex so coarse-level
        // parts start out balanced.
        if (weight + w > target + w / 2) continue;
        part[static_cast<std::size_t>(u)] = p;
        --unassigned;
        weight += w;
        frontier.push_back(u);
      }
    }
    // The BFS can stall inside a closed region; restart from any
    // unassigned vertex to honor the weight target.
    while (weight < target && unassigned > parts - 1 - p) {
      std::int32_t restart = -1;
      for (std::int32_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          restart = v;
          break;
        }
      }
      if (restart == -1) break;
      part[static_cast<std::size_t>(restart)] = p;
      --unassigned;
      weight += graph.vwgt[static_cast<std::size_t>(restart)];
      frontier.push_back(restart);
      while (weight < target && !frontier.empty()) {
        const std::int32_t v = frontier.front();
        frontier.pop_front();
        for (std::int32_t u : graph.neighbors(v)) {
          if (part[static_cast<std::size_t>(u)] != -1) continue;
          if (weight >= target) break;
          part[static_cast<std::size_t>(u)] = p;
          --unassigned;
          weight += graph.vwgt[static_cast<std::size_t>(u)];
          frontier.push_back(u);
        }
      }
    }
  }
  for (std::int32_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = parts - 1;
    }
  }
  return part;
}

/// Greedy k-way FM-style refinement: repeatedly move boundary vertices
/// to the neighboring part with the best cut gain, subject to a balance
/// ceiling. Also performs balance repair moves when a part exceeds the
/// ceiling even at zero or negative gain.
///
/// A vertex's move decision depends only on its own part, its
/// neighbors' parts and edge weights, and the weights of the parts
/// involved. Between passes most of that state is untouched, so the
/// loop keeps per-part and per-vertex stamps and skips any vertex whose
/// decision inputs provably did not change since its last evaluation —
/// the skipped evaluation would have reproduced the same "stay"
/// decision, so the move sequence is bit-identical to evaluating
/// everything. Two stamp granularities keep the skip rate high:
/// `weight_stamp` advances on every weight change of a part, while
/// `danger_stamp` advances only when a change can flip one of the three
/// predicates a decision actually reads (the balance-ceiling filter,
/// the overweight test, and the never-empty guard), which lets vertices
/// ignore irrelevant weight drift in non-overweight parts.
///
/// FM refinement is the single largest cost of a cold run (1.22 s of
/// 1.96 s in BENCH_PR5), so it carries the partition.fm.* probes:
/// counters accumulate in locals and record once per call, keeping the
/// move loop free of atomics and the move sequence bit-identical.
// krak: hot
void refine(const Graph& graph, std::int32_t parts, std::vector<PeId>& part,
            double max_imbalance, util::ThreadPool* pool) {
  const util::Stopwatch fm_watch;
  std::int64_t fm_passes = 0;
  std::int64_t fm_moves = 0;
  std::int64_t fm_proposals_reused = 0;
  const std::int32_t n = graph.num_vertices();
  const std::int64_t total = graph.total_vertex_weight();
  const auto ceiling = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(total) / parts * max_imbalance));

  std::vector<std::int64_t> weight(static_cast<std::size_t>(parts), 0);
  for (std::int32_t v = 0; v < n; ++v) {
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        graph.vwgt[static_cast<std::size_t>(v)];
  }

  // Connection weight of v to each part, computed on demand. `touched`
  // (the parts v connects to, in first-occurrence order — the move
  // loops' tie-break order) is hoisted out of the vertex loop: clearing
  // keeps its capacity, so steady state allocates nothing per vertex.
  std::vector<std::int64_t> conn(static_cast<std::size_t>(parts), 0);
  std::vector<PeId> touched;

  const std::int64_t* const xadj = graph.xadj.data();
  const std::int32_t* const adjncy = graph.adjncy.data();
  const std::int32_t* const ewgt = graph.ewgt.data();

  // Interior fast path: a vertex whose neighbors all share its part can
  // never move. Boundary membership depends only on a vertex's own part
  // and its neighbors' parts, so a move of v can only change the status
  // of v and of v's neighbors — exactly those are recomputed after each
  // move, and the flag always equals what a fresh scan would return.
  const auto is_boundary = [&part, xadj, adjncy](std::int32_t v) -> char {
    const PeId p = part[static_cast<std::size_t>(v)];
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      if (part[static_cast<std::size_t>(adjncy[e])] != p) return 1;
    }
    return 0;
  };
  std::vector<char> boundary(static_cast<std::size_t>(n));
  if (pool != nullptr) {
    pool->parallel_for_chunked(static_cast<std::size_t>(n), 4096,
                               [&](std::size_t begin, std::size_t end) {
                                 for (std::size_t v = begin; v < end; ++v) {
                                   boundary[v] = is_boundary(
                                       static_cast<std::int32_t>(v));
                                 }
                               });
  } else {
    for (std::int32_t v = 0; v < n; ++v) {
      boundary[static_cast<std::size_t>(v)] = is_boundary(v);
    }
  }

  std::int64_t max_vw = 0;
  for (const std::int32_t w : graph.vwgt) {
    max_vw = std::max<std::int64_t>(max_vw, w);
  }
  std::vector<std::uint32_t> weight_stamp(static_cast<std::size_t>(parts), 1);
  std::vector<std::uint32_t> danger_stamp(static_cast<std::size_t>(parts), 1);
  std::vector<std::uint32_t> moved_stamp(static_cast<std::size_t>(n), 1);
  std::vector<std::uint32_t> vertex_stamp(static_cast<std::size_t>(n), 0);
  std::uint32_t move_counter = 1;

  // Advance a part's stamps after its weight changed from old_w to
  // new_w. The danger stamp moves only when the change can flip a
  // predicate some vertex's decision reads: the ceiling filter
  // (weight + vw > ceiling for vw in [1, max_vw]), the overweight test
  // (weight > ceiling), or the never-empty guard (weight - vw > 0).
  const auto bump_part = [&](PeId p, std::int64_t old_w, std::int64_t new_w) {
    weight_stamp[static_cast<std::size_t>(p)] = move_counter;
    const std::int64_t lo = std::min(old_w, new_w);
    const std::int64_t hi = std::max(old_w, new_w);
    const bool ceiling_flip = lo <= ceiling - 1 && hi > ceiling - max_vw;
    const bool overweight_flip = lo <= ceiling && hi > ceiling;
    const bool empty_flip = lo <= max_vw && hi > 1;
    if (ceiling_flip || overweight_flip || empty_flip) {
      danger_stamp[static_cast<std::size_t>(p)] = move_counter;
    }
  };

  // True when any decision input of v changed after `stamp`; stamp 0
  // means "never evaluated". Overweight parts re-check against the
  // fine-grained weight stamp because the balance-repair branch orders
  // candidates by exact weights.
  const auto is_stale = [&](std::int32_t v, std::uint32_t stamp) -> bool {
    if (stamp == 0) return true;
    const PeId from = part[static_cast<std::size_t>(v)];
    const bool overweight_now = weight[static_cast<std::size_t>(from)] > ceiling;
    const auto& part_stamps = overweight_now ? weight_stamp : danger_stamp;
    if (part_stamps[static_cast<std::size_t>(from)] > stamp) return true;
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const std::int32_t u = adjncy[e];
      if (moved_stamp[static_cast<std::size_t>(u)] > stamp ||
          part_stamps[static_cast<std::size_t>(
              part[static_cast<std::size_t>(u)])] > stamp) {
        return true;
      }
    }
    return false;
  };

  // The move decision of the serial algorithm, computed against the
  // current assignment with caller-provided scratch. Returns `from`
  // for "stay".
  const auto evaluate_move = [&](std::int32_t v,
                                 std::vector<std::int64_t>& conn_scratch,
                                 std::vector<PeId>& touched_scratch) -> PeId {
    const PeId from = part[static_cast<std::size_t>(v)];
    touched_scratch.clear();
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const PeId p = part[static_cast<std::size_t>(adjncy[e])];
      if (conn_scratch[static_cast<std::size_t>(p)] == 0) {
        touched_scratch.push_back(p);
      }
      conn_scratch[static_cast<std::size_t>(p)] += ewgt[e];
    }
    const std::int64_t vw = graph.vwgt[static_cast<std::size_t>(v)];
    const std::int64_t internal = conn_scratch[static_cast<std::size_t>(from)];
    PeId best_part = from;
    std::int64_t best_gain = 0;
    if (weight[static_cast<std::size_t>(from)] > ceiling) {
      // Balance repair: bleed the overweight part toward its lightest
      // adjacent part, taking cut gain only as tie-break. Negative-gain
      // moves are allowed — restoring balance beats edge cut here
      // (Metis behaves the same way).
      std::int64_t best_weight = weight[static_cast<std::size_t>(from)] - vw;
      for (PeId p : touched_scratch) {
        if (p == from) continue;
        const std::int64_t gain =
            conn_scratch[static_cast<std::size_t>(p)] - internal;
        const std::int64_t w = weight[static_cast<std::size_t>(p)];
        if (w + vw >= weight[static_cast<std::size_t>(from)]) continue;
        if (w < best_weight ||
            (w == best_weight && best_part != from && gain > best_gain)) {
          best_weight = w;
          best_gain = gain;
          best_part = p;
        }
      }
    } else {
      for (PeId p : touched_scratch) {
        if (p == from) continue;
        const std::int64_t gain =
            conn_scratch[static_cast<std::size_t>(p)] - internal;
        if (weight[static_cast<std::size_t>(p)] + vw > ceiling) continue;
        if (gain > best_gain) {
          best_gain = gain;
          best_part = p;
        }
      }
    }
    for (PeId p : touched_scratch) conn_scratch[static_cast<std::size_t>(p)] = 0;
    return best_part;
  };

  // Speculative parallel gain recomputation (pool mode): before each
  // serial pass, workers evaluate every vertex the pass will visit
  // against the pass-start state. The serial walk reuses a proposal
  // only when the same stamp check proves the vertex's decision inputs
  // did not change after the snapshot — the exactness argument is the
  // cross-pass skip's, applied within a pass — and recomputes the rest
  // in place, so the applied move sequence is the serial one.
  std::vector<PeId> proposal;
  std::vector<char> has_proposal;
  if (pool != nullptr) {
    proposal.resize(static_cast<std::size_t>(n));
    has_proposal.resize(static_cast<std::size_t>(n));
  }

  constexpr int kMaxPasses = 32;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    ++fm_passes;
    bool moved_any = false;
    const std::uint32_t pass_stamp = move_counter;
    if (pool != nullptr) {
      const std::size_t grain = std::max<std::size_t>(
          4096, static_cast<std::size_t>(n) / (pool->thread_count() * 4));
      pool->parallel_for_chunked(
          static_cast<std::size_t>(n), grain,
          [&](std::size_t begin, std::size_t end) {
            std::vector<std::int64_t> conn_scratch(
                static_cast<std::size_t>(parts), 0);
            std::vector<PeId> touched_scratch;
            for (std::size_t i = begin; i < end; ++i) {
              const auto v = static_cast<std::int32_t>(i);
              has_proposal[i] = 0;
              if (!boundary[i]) continue;
              if (!is_stale(v, vertex_stamp[i])) continue;
              proposal[i] = evaluate_move(v, conn_scratch, touched_scratch);
              has_proposal[i] = 1;
            }
          });
    }
    for (std::int32_t v = 0; v < n; ++v) {
      if (!boundary[static_cast<std::size_t>(v)]) continue;
      if (!is_stale(v, vertex_stamp[static_cast<std::size_t>(v)])) continue;
      const PeId from = part[static_cast<std::size_t>(v)];
      PeId best_part = from;
      if (pool != nullptr && has_proposal[static_cast<std::size_t>(v)] != 0 &&
          !is_stale(v, pass_stamp)) {
        best_part = proposal[static_cast<std::size_t>(v)];
        ++fm_proposals_reused;
      } else {
        best_part = evaluate_move(v, conn, touched);
      }
      vertex_stamp[static_cast<std::size_t>(v)] = move_counter;
      if (best_part != from) {
        const std::int64_t vw = graph.vwgt[static_cast<std::size_t>(v)];
        // Never empty a part: the model indexes every PE.
        if (weight[static_cast<std::size_t>(from)] - vw > 0) {
          part[static_cast<std::size_t>(v)] = best_part;
          ++move_counter;
          moved_stamp[static_cast<std::size_t>(v)] = move_counter;
          const std::int64_t old_from = weight[static_cast<std::size_t>(from)];
          const std::int64_t old_to =
              weight[static_cast<std::size_t>(best_part)];
          weight[static_cast<std::size_t>(from)] -= vw;
          weight[static_cast<std::size_t>(best_part)] += vw;
          bump_part(from, old_from, old_from - vw);
          bump_part(best_part, old_to, old_to + vw);
          moved_any = true;
          ++fm_moves;
          boundary[static_cast<std::size_t>(v)] = is_boundary(v);
          for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
            const std::int32_t u = adjncy[e];
            boundary[static_cast<std::size_t>(u)] = is_boundary(u);
          }
        }
      }
    }
    if (!moved_any) break;
  }
  if (obs::enabled()) {
    obs::Registry& registry = obs::global_registry();
    registry.timer("partition.fm.seconds").record(fm_watch.seconds());
    registry.counter("partition.fm.passes").add(fm_passes);
    registry.counter("partition.fm.moves").add(fm_moves);
    registry.counter("partition.fm.proposals_reused").add(fm_proposals_reused);
  }
}

// --- coarsening ladder cache ---------------------------------------------
//
// Coarsening is independent of the part count: the RNG consumes draws
// only through the per-level shuffles, so for a fixed (graph, seed) the
// sequence of coarse graphs is the same whether the caller wants 128 or
// 512 parts — a larger part count merely stops higher up the ladder.
// Campaigns partition each deck at several PE counts, so the ladder is
// memoized per (graph identity, seed): later calls replay the shared
// prefix and only refinement runs per part count. Each level snapshots
// the RNG state it left behind so a replayed query resumes the draw
// sequence exactly where a fresh run would be; a stalled attempt (the
// 19/20 shrink test failing) is recorded too, because the attempt
// consumes draws even though its graph is discarded.

struct LadderLevel {
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const std::vector<std::int32_t>> map;
  util::Rng::State rng_after;
};

struct CoarseningLadder {
  std::vector<LadderLevel> levels;
  bool stalled = false;  ///< one more step from the deepest level stalls
  util::Rng::State rng_after_stall;
};

class LadderCache {
 public:
  static LadderCache& instance() {
    static LadderCache cache;
    return cache;
  }

  std::shared_ptr<const CoarseningLadder> find(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);
        return entries_.front().second;
      }
    }
    return nullptr;
  }

  // Entries are immutable: an extension stores a new ladder object under
  // the same key. Concurrent extenders can race, but both compute
  // bit-identical levels, so whichever store wins is correct.
  void store(std::uint64_t key, std::shared_ptr<const CoarseningLadder> value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.erase(it);
        break;
      }
    }
    entries_.emplace_front(key, std::move(value));
    // Ladders hold full coarse graphs (roughly the fine graph's size
    // across all levels), so keep only the few decks a campaign cycles
    // through.
    constexpr std::size_t kMaxEntries = 4;
    while (entries_.size() > kMaxEntries) entries_.pop_back();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

 private:
  std::mutex mutex_;
  std::list<std::pair<std::uint64_t, std::shared_ptr<const CoarseningLadder>>>
      entries_;
};

std::uint64_t fnv_mix(std::uint64_t hash, const void* data, std::size_t size) {
  // Word-at-a-time FNV-1a: one multiply per 8 bytes instead of per
  // byte, fast enough to fingerprint multi-megabyte CSR arrays.
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes + i, 8);
    hash ^= word;
    hash *= 0x100000001b3ull;
  }
  for (; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t ladder_cache_key(const Graph& graph, std::uint64_t seed,
                               const std::optional<std::uint64_t>& provided) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const std::uint64_t tag = provided.has_value() ? 1 : 0;
  hash = fnv_mix(hash, &tag, sizeof(tag));
  hash = fnv_mix(hash, &seed, sizeof(seed));
  if (provided.has_value()) {
    const std::uint64_t value = *provided;
    return fnv_mix(hash, &value, sizeof(value));
  }
  const std::int64_t n = graph.num_vertices();
  hash = fnv_mix(hash, &n, sizeof(n));
  hash = fnv_mix(hash, graph.xadj.data(),
                 graph.xadj.size() * sizeof(graph.xadj[0]));
  hash = fnv_mix(hash, graph.adjncy.data(),
                 graph.adjncy.size() * sizeof(graph.adjncy[0]));
  hash = fnv_mix(hash, graph.vwgt.data(),
                 graph.vwgt.size() * sizeof(graph.vwgt[0]));
  hash = fnv_mix(hash, graph.ewgt.data(),
                 graph.ewgt.size() * sizeof(graph.ewgt[0]));
  return hash;
}

}  // namespace

void clear_multilevel_ladder_cache() { LadderCache::instance().clear(); }

Partition partition_multilevel(const Graph& graph, std::int32_t parts,
                               std::uint64_t seed) {
  return partition_multilevel(graph, parts, seed, MultilevelOptions{});
}

Partition partition_multilevel(const Graph& graph, std::int32_t parts,
                               std::uint64_t seed,
                               const MultilevelOptions& options) {
  KRAK_REQUIRE(parts > 0, "partition_multilevel requires parts > 0");
  KRAK_REQUIRE(graph.num_vertices() >= parts, "more parts than vertices");
  util::Rng rng(seed);

  if (parts == 1) {
    return Partition(1, std::vector<PeId>(
                            static_cast<std::size_t>(graph.num_vertices()), 0));
  }

  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool* pool = nullptr;
  if (options.threads > 1) {
    local_pool.emplace(static_cast<std::size_t>(options.threads));
    pool = &*local_pool;
  }

  // Coarsen until the graph is small relative to the part count or
  // matching stops shrinking it, replaying cached ladder levels where
  // available.
  const util::Stopwatch coarsen_watch;
  const std::uint64_t key = ladder_cache_key(graph, seed, options.ladder_key);
  std::shared_ptr<const CoarseningLadder> cached =
      LadderCache::instance().find(key);
  if (obs::enabled()) {
    obs::global_registry()
        .counter(cached != nullptr ? "partition.ladder.hits"
                                   : "partition.ladder.misses")
        .add();
  }
  CoarseningLadder working;
  if (cached != nullptr) working = *cached;  // shallow: levels are shared

  std::vector<const Graph*> levels{&graph};
  std::vector<const std::vector<std::int32_t>*> maps;
  util::Rng::State rng_state = rng.state();
  const std::int32_t coarse_target = std::max(parts * 16, 256);
  bool extended = false;
  std::size_t depth = 0;
  while (levels.back()->num_vertices() > coarse_target) {
    if (depth < working.levels.size()) {
      const LadderLevel& level = working.levels[depth];
      maps.push_back(level.map.get());
      levels.push_back(level.graph.get());
      rng_state = level.rng_after;
      ++depth;
      continue;
    }
    if (working.stalled) {
      // The next attempt is known to stall; its only lasting effect is
      // the RNG draws it consumed.
      rng_state = working.rng_after_stall;
      break;
    }
    rng.restore(rng_state);
    CoarseningStep step = coarsen_once(*levels.back(), rng, pool);
    extended = true;
    if (step.coarse.num_vertices() >=
        levels.back()->num_vertices() * 19 / 20) {
      working.stalled = true;
      working.rng_after_stall = rng.state();
      rng_state = working.rng_after_stall;
      break;  // diminishing returns; stop coarsening
    }
    LadderLevel level;
    level.graph = std::make_shared<const Graph>(std::move(step.coarse));
    level.map = std::make_shared<const std::vector<std::int32_t>>(
        std::move(step.fine_to_coarse));
    level.rng_after = rng.state();
    maps.push_back(level.map.get());
    levels.push_back(level.graph.get());
    rng_state = level.rng_after;
    working.levels.push_back(std::move(level));
    ++depth;
  }
  // Pin the levels this call uses (the cache may evict concurrently),
  // and publish any extension.
  std::shared_ptr<const CoarseningLadder> pinned;
  if (extended) {
    pinned = std::make_shared<const CoarseningLadder>(std::move(working));
    LadderCache::instance().store(key, pinned);
  } else {
    pinned = std::move(cached);
  }
  rng.restore(rng_state);
  const double coarsen_seconds = coarsen_watch.seconds();

  constexpr double kMaxImbalance = 1.02;
  const util::Stopwatch init_watch;
  std::vector<PeId> part = initial_partition(*levels.back(), parts, rng);
  const double init_seconds = init_watch.seconds();

  const util::Stopwatch refine_watch;
  refine(*levels.back(), parts, part, kMaxImbalance, pool);

  // Uncoarsen: project to each finer level and refine.
  for (std::size_t level = maps.size(); level-- > 0;) {
    const Graph& fine = *levels[level];
    const std::vector<std::int32_t>& map = *maps[level];
    std::vector<PeId> fine_part(static_cast<std::size_t>(fine.num_vertices()));
    for (std::int32_t v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    refine(fine, parts, part, kMaxImbalance, pool);
  }
  const double refine_seconds = refine_watch.seconds();

  if (obs::enabled()) {
    obs::Registry& registry = obs::global_registry();
    registry.timer("partition.coarsen.seconds").record(coarsen_seconds);
    registry.timer("partition.init.seconds").record(init_seconds);
    registry.timer("partition.refine.seconds").record(refine_seconds);
  }

  // Guarantee no part is empty (tiny graphs with aggressive growing can
  // starve the last parts): steal single cells from the largest part.
  std::vector<std::int64_t> weight(static_cast<std::size_t>(parts), 0);
  for (PeId p : part) ++weight[static_cast<std::size_t>(p)];
  for (PeId p = 0; p < parts; ++p) {
    if (weight[static_cast<std::size_t>(p)] > 0) continue;
    const auto largest = static_cast<PeId>(
        std::max_element(weight.begin(), weight.end()) - weight.begin());
    for (std::size_t v = 0; v < part.size(); ++v) {
      if (part[v] == largest) {
        part[v] = p;
        --weight[static_cast<std::size_t>(largest)];
        ++weight[static_cast<std::size_t>(p)];
        break;
      }
    }
  }

  return Partition(parts, std::move(part));
}

}  // namespace krak::partition
