#include "partition/dualgraph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace krak::partition {

using util::check;
using util::require_internal;

std::int64_t Graph::total_vertex_weight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), std::int64_t{0});
}

std::span<const std::int32_t> Graph::neighbors(std::int32_t v) const {
  KRAK_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
  const auto begin = static_cast<std::size_t>(xadj[v]);
  const auto end = static_cast<std::size_t>(xadj[v + 1]);
  return {adjncy.data() + begin, end - begin};
}

std::span<const std::int32_t> Graph::edge_weights(std::int32_t v) const {
  KRAK_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
  const auto begin = static_cast<std::size_t>(xadj[v]);
  const auto end = static_cast<std::size_t>(xadj[v + 1]);
  return {ewgt.data() + begin, end - begin};
}

void Graph::validate() const {
  const std::int32_t n = num_vertices();
  KRAK_ASSERT(xadj.size() == static_cast<std::size_t>(n) + 1,
              "Graph xadj size mismatch");
  KRAK_ASSERT(xadj.front() == 0, "Graph xadj must start at 0");
  KRAK_ASSERT(xadj.back() == static_cast<std::int64_t>(adjncy.size()),
              "Graph xadj must end at adjncy size");
  KRAK_ASSERT(adjncy.size() == ewgt.size(),
              "Graph adjncy/ewgt size mismatch");
  for (std::int32_t v = 0; v < n; ++v) {
    KRAK_ASSERT(xadj[v] <= xadj[v + 1], "Graph xadj must be monotone");
    for (std::int32_t u : neighbors(v)) {
      KRAK_ASSERT(u >= 0 && u < n, "Graph neighbor out of range");
      KRAK_ASSERT(u != v, "Graph must not contain self loops");
      // Symmetry: v must appear in u's list.
      const auto nu = neighbors(u);
      KRAK_ASSERT(std::find(nu.begin(), nu.end(), v) != nu.end(),
                  "Graph adjacency must be symmetric");
    }
  }
}

Graph build_dual_graph(const mesh::Grid& grid) {
  const auto n = static_cast<std::int32_t>(grid.num_cells());
  const auto nx = static_cast<std::int32_t>(grid.nx());
  const auto ny = static_cast<std::int32_t>(grid.ny());
  Graph g;
  g.vwgt.assign(static_cast<std::size_t>(n), 1);
  g.xadj.reserve(static_cast<std::size_t>(n) + 1);
  g.xadj.push_back(0);
  // Emit the 4-neighborhood straight from the row-major layout in the
  // order neighbors_of_cell uses — (i-1,j), (i+1,j), (i,j-1), (i,j+1) —
  // without materialising a per-cell vector. Every interior face
  // contributes two directed edges.
  const auto num_edges = static_cast<std::size_t>(
      2 * ((static_cast<std::int64_t>(nx) - 1) * ny +
           static_cast<std::int64_t>(nx) * (ny - 1)));
  g.adjncy.reserve(num_edges);
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      const std::int32_t cell = j * nx + i;
      if (i > 0) g.adjncy.push_back(cell - 1);
      if (i + 1 < nx) g.adjncy.push_back(cell + 1);
      if (j > 0) g.adjncy.push_back(cell - nx);
      if (j + 1 < ny) g.adjncy.push_back(cell + nx);
      g.xadj.push_back(static_cast<std::int64_t>(g.adjncy.size()));
    }
  }
  g.ewgt.assign(g.adjncy.size(), 1);
  return g;
}

Graph build_weighted_dual_graph(
    const mesh::InputDeck& deck,
    std::span<const double, mesh::kMaterialCount> material_costs) {
  double min_cost = 0.0;
  for (double cost : material_costs) {
    KRAK_REQUIRE(cost >= 0.0, "material costs must be non-negative");
    if (cost > 0.0 && (min_cost == 0.0 || cost < min_cost)) min_cost = cost;
  }
  KRAK_REQUIRE(min_cost > 0.0, "at least one material cost must be positive");

  Graph g = build_dual_graph(deck.grid());
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const double cost = material_costs[mesh::material_index(
        deck.material_of(static_cast<mesh::CellId>(v)))];
    g.vwgt[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(
        std::max(1.0, std::round(100.0 * cost / min_cost)));
  }
  return g;
}

}  // namespace krak::partition
