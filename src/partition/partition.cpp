#include "partition/partition.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace krak::partition {

using util::check;

namespace {

/// Per-method timing and quality probes (docs/OBSERVABILITY.md). Cheap
/// relative to partitioning itself: one registry lookup per call plus a
/// cell-count scan for the balance gauges.
void record_partition_metrics(PartitionMethod method,
                              const Partition& partition, double seconds) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::global_registry();
  const std::string prefix =
      "partition." + std::string(partition_method_name(method));
  registry.counter(prefix + ".calls").add(1);
  registry.timer(prefix + ".seconds").record(seconds);
  const std::vector<std::int64_t> counts = partition.cell_counts();
  std::int64_t max_cells = 0;
  std::int32_t empty_parts = 0;
  for (const std::int64_t count : counts) {
    max_cells = std::max(max_cells, count);
    if (count == 0) ++empty_parts;
  }
  const double mean_cells = static_cast<double>(partition.num_cells()) /
                            static_cast<double>(partition.parts());
  registry.gauge(prefix + ".imbalance")
      .set(static_cast<double>(max_cells) / mean_cells);
  registry.gauge(prefix + ".empty_parts")
      .set(static_cast<double>(empty_parts));
}

/// The unweighted dual graph is fully determined by the grid
/// dimensions, and a campaign partitions the same few decks at many PE
/// counts — memoize the CSR arrays the same way (and under the same
/// key) as the coarsening ladder. Entries are immutable; concurrent
/// builders of the same key produce identical graphs, so whichever
/// insert wins is correct.
std::shared_ptr<const Graph> dual_graph_for(const mesh::Grid& grid) {
  constexpr std::size_t kMaxEntries = 4;
  static std::mutex mutex;
  static std::vector<std::pair<std::uint64_t, std::shared_ptr<const Graph>>>
      entries;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(grid.nx()))
       << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(grid.ny()));
  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (auto& entry : entries) {
      if (entry.first == key) {
        std::swap(entry, entries.front());
        return entries.front().second;
      }
    }
  }
  auto graph = std::make_shared<const Graph>(build_dual_graph(grid));
  const std::lock_guard<std::mutex> lock(mutex);
  entries.emplace(entries.begin(), key, graph);
  if (entries.size() > kMaxEntries) entries.pop_back();
  return graph;
}

}  // namespace

Partition::Partition(std::int32_t parts, std::vector<PeId> assignment)
    : parts_(parts), assignment_(std::move(assignment)) {
  KRAK_REQUIRE(parts > 0, "Partition requires at least one part");
  KRAK_REQUIRE(!assignment_.empty(), "Partition requires at least one cell");
  for (PeId pe : assignment_) {
    KRAK_REQUIRE(pe >= 0 && pe < parts, "Partition assignment out of range");
  }
}

PeId Partition::pe_of(std::int64_t cell) const {
  KRAK_REQUIRE(cell >= 0 && cell < num_cells(), "cell id out of range");
  return assignment_[static_cast<std::size_t>(cell)];
}

std::vector<std::int64_t> Partition::cell_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(parts_), 0);
  for (PeId pe : assignment_) ++counts[static_cast<std::size_t>(pe)];
  return counts;
}

std::vector<std::int64_t> Partition::cells_of_pe(PeId pe) const {
  KRAK_REQUIRE(pe >= 0 && pe < parts_, "pe id out of range");
  std::vector<std::int64_t> cells;
  for (std::size_t cell = 0; cell < assignment_.size(); ++cell) {
    if (assignment_[cell] == pe) cells.push_back(static_cast<std::int64_t>(cell));
  }
  return cells;
}

PartitionQuality evaluate_partition(const Graph& graph,
                                    const Partition& partition) {
  KRAK_REQUIRE(graph.num_vertices() == partition.num_cells(),
               "graph/partition size mismatch");
  PartitionQuality q;
  const auto counts = partition.cell_counts();
  q.min_cells = *std::min_element(counts.begin(), counts.end());
  q.max_cells = *std::max_element(counts.begin(), counts.end());
  q.mean_cells = static_cast<double>(partition.num_cells()) /
                 static_cast<double>(partition.parts());
  q.imbalance = static_cast<double>(q.max_cells) / q.mean_cells;
  q.empty_parts = static_cast<std::int32_t>(
      std::count(counts.begin(), counts.end(), std::int64_t{0}));

  std::int64_t cut = 0;
  std::vector<std::set<PeId>> neighbor_sets(
      static_cast<std::size_t>(partition.parts()));
  for (std::int32_t v = 0; v < graph.num_vertices(); ++v) {
    const PeId pv = partition.pe_of(v);
    const auto neighbors = graph.neighbors(v);
    const auto weights = graph.edge_weights(v);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      const PeId pu = partition.pe_of(neighbors[e]);
      if (pu != pv) {
        cut += weights[e];
        neighbor_sets[static_cast<std::size_t>(pv)].insert(pu);
      }
    }
  }
  q.edge_cut = cut / 2;  // each cut edge visited from both endpoints

  std::int64_t total_neighbors = 0;
  for (const auto& s : neighbor_sets) {
    total_neighbors += static_cast<std::int64_t>(s.size());
    q.max_neighbors =
        std::max(q.max_neighbors, static_cast<std::int32_t>(s.size()));
  }
  q.mean_neighbors = static_cast<double>(total_neighbors) /
                     static_cast<double>(partition.parts());
  return q;
}

std::string_view partition_method_name(PartitionMethod method) {
  switch (method) {
    case PartitionMethod::kStrip: return "strip";
    case PartitionMethod::kRcb: return "rcb";
    case PartitionMethod::kMultilevel: return "multilevel";
    case PartitionMethod::kMaterialAware: return "material-aware";
  }
  return "unknown";
}

Partition partition_cost_aware(
    const mesh::InputDeck& deck, std::int32_t parts,
    std::span<const double, mesh::kMaterialCount> material_costs,
    std::uint64_t seed) {
  const Graph graph = build_weighted_dual_graph(deck, material_costs);
  return partition_multilevel(graph, parts, seed);
}

Partition partition_strips(std::int64_t num_cells, std::int32_t parts) {
  KRAK_REQUIRE(num_cells > 0, "partition_strips requires cells");
  KRAK_REQUIRE(parts > 0, "partition_strips requires parts");
  KRAK_REQUIRE(parts <= num_cells, "more parts than cells");
  std::vector<PeId> assignment(static_cast<std::size_t>(num_cells));
  // Distribute the remainder one cell at a time so strip sizes differ by
  // at most one.
  const std::int64_t base = num_cells / parts;
  const std::int64_t extra = num_cells % parts;
  std::int64_t cell = 0;
  for (std::int32_t pe = 0; pe < parts; ++pe) {
    const std::int64_t size = base + (pe < extra ? 1 : 0);
    for (std::int64_t k = 0; k < size; ++k) {
      assignment[static_cast<std::size_t>(cell++)] = pe;
    }
  }
  return Partition(parts, std::move(assignment));
}

Partition partition_deck(const mesh::InputDeck& deck, std::int32_t parts,
                         PartitionMethod method, std::uint64_t seed,
                         std::int32_t threads) {
  const mesh::Grid& grid = deck.grid();
  KRAK_REQUIRE(parts > 0, "partition_deck requires parts > 0");
  KRAK_REQUIRE(parts <= grid.num_cells(), "more parts than cells");
  const util::Stopwatch watch;
  const auto finish = [&](Partition partition) {
    record_partition_metrics(method, partition, watch.seconds());
    return partition;
  };
  switch (method) {
    case PartitionMethod::kStrip:
      return finish(partition_strips(grid.num_cells(), parts));
    case PartitionMethod::kRcb: {
      std::vector<mesh::Point> centers;
      centers.reserve(static_cast<std::size_t>(grid.num_cells()));
      for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
        centers.push_back(grid.cell_center(static_cast<mesh::CellId>(cell)));
      }
      return finish(partition_rcb(centers, parts));
    }
    case PartitionMethod::kMultilevel: {
      const std::shared_ptr<const Graph> graph = dual_graph_for(grid);
      MultilevelOptions options;
      options.threads = threads;
      // (nx, ny) is a sound ladder-cache identity for the same reason
      // it keys the dual-graph cache, and saves hashing the CSR arrays
      // on every call.
      options.ladder_key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(grid.nx()))
           << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(grid.ny()));
      return finish(partition_multilevel(*graph, parts, seed, options));
    }
    case PartitionMethod::kMaterialAware:
      return finish(partition_material_aware(deck, parts));
  }
  KRAK_ASSERT(false, "unknown partition method");
  return partition_strips(grid.num_cells(), parts);  // unreachable
}

}  // namespace krak::partition
