#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/deck.hpp"
#include "mesh/grid.hpp"

namespace krak::partition {

/// Undirected graph in compressed sparse row form, the input format of
/// the partitioners (mirrors the Metis API's xadj/adjncy arrays).
///
/// Vertices carry integer weights (aggregate cell counts after
/// coarsening); edges carry weights (aggregate face counts).
struct Graph {
  /// xadj[v]..xadj[v+1] indexes adjncy/ewgt for vertex v; size n+1.
  std::vector<std::int64_t> xadj;
  std::vector<std::int32_t> adjncy;
  std::vector<std::int32_t> vwgt;
  std::vector<std::int32_t> ewgt;

  [[nodiscard]] std::int32_t num_vertices() const {
    return static_cast<std::int32_t>(vwgt.size());
  }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adjncy.size()) / 2;
  }
  [[nodiscard]] std::int64_t total_vertex_weight() const;

  /// Neighbors of v with parallel edge weights.
  [[nodiscard]] std::span<const std::int32_t> neighbors(std::int32_t v) const;
  [[nodiscard]] std::span<const std::int32_t> edge_weights(std::int32_t v) const;

  /// Throws InternalError if CSR structure is malformed (asymmetric
  /// adjacency, self loops, bad xadj).
  void validate() const;
};

/// Build the cell-adjacency (dual) graph of a grid: one vertex per cell,
/// one edge per interior face, unit weights.
[[nodiscard]] Graph build_dual_graph(const mesh::Grid& grid);

/// Weighted variant: each cell's vertex weight reflects its material's
/// relative computational cost (e.g. the model's calibrated per-cell
/// costs), so a weight-balancing partitioner equalizes predicted
/// compute time instead of cell counts. Weights are scaled to integers
/// with the cheapest material at ~100.
[[nodiscard]] Graph build_weighted_dual_graph(
    const mesh::InputDeck& deck,
    std::span<const double, mesh::kMaterialCount> material_costs);

}  // namespace krak::partition
