#include "partition/stats.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/error.hpp"

namespace krak::partition {

namespace {

/// Deterministic node hash (SplitMix64 finalizer) for ghost ownership.
std::uint64_t hash_node(std::int64_t node) {
  auto z = static_cast<std::uint64_t>(node) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One side of one boundary face: the owning PE, the neighbor PE, the
/// face's exchange group, and the face's two endpoint nodes.
struct FaceIncidence {
  PeId pe;
  PeId npe;
  std::uint8_t group;
  mesh::NodeId nodes[2];
};

/// On a quad grid a node touches at most four cells, so at most four
/// distinct PEs can share it.
struct NodeSharers {
  PeId pes[4];
  std::uint8_t count = 0;

  void insert(PeId pe) {
    for (std::uint8_t k = 0; k < count; ++k) {
      if (pes[k] == pe) return;
    }
    pes[count++] = pe;
  }
};

}  // namespace

std::int64_t SubdomainInfo::total_boundary_faces() const {
  std::int64_t total = 0;
  for (const NeighborBoundary& b : neighbors) total += b.total_faces;
  return total;
}

std::int64_t SubdomainInfo::total_ghost_nodes() const {
  std::int64_t total = 0;
  for (const NeighborBoundary& b : neighbors) total += b.total_ghost_nodes();
  return total;
}

PartitionStats::PartitionStats(const mesh::InputDeck& deck,
                               const Partition& partition) {
  const mesh::Grid& grid = deck.grid();
  KRAK_REQUIRE(partition.num_cells() == grid.num_cells(),
               "partition does not match deck");
  const std::int32_t parts = partition.parts();
  subdomains_.resize(static_cast<std::size_t>(parts));
  for (PeId pe = 0; pe < parts; ++pe) {
    subdomains_[static_cast<std::size_t>(pe)].pe = pe;
  }

  // Cells and materials per subdomain.
  for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    const PeId pe = partition.pe_of(cell);
    SubdomainInfo& sub = subdomains_[static_cast<std::size_t>(pe)];
    ++sub.total_cells;
    ++sub.cells_per_material[mesh::material_index(
        deck.material_of(static_cast<mesh::CellId>(cell)))];
  }

  // Every quantity below is a per-(pe, neighbor) count over *sets* —
  // faces, distinct boundary nodes, distinct sharer PEs — so any
  // traversal producing the same sets produces the same statistics. The
  // grid is structured, which admits flat arrays everywhere the
  // original formulation used nested maps: one incidence record per
  // boundary face side, grouped by sorting, and per-node sharer sets
  // bounded by the quad-grid valence of four.
  const std::int32_t nx = grid.nx();
  const std::int32_t ny = grid.ny();
  const std::vector<PeId>& owner_of = partition.assignment();
  const std::int64_t num_nodes = grid.num_nodes();
  std::vector<FaceIncidence> incidences;
  std::vector<NodeSharers> sharers(static_cast<std::size_t>(num_nodes));
  std::vector<mesh::NodeId> boundary_nodes;

  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      const auto cell = static_cast<mesh::CellId>(j * nx + i);
      const PeId pe = owner_of[static_cast<std::size_t>(cell)];
      // Nodes of the cell's corners; a face's endpoints are two of them.
      const auto row = static_cast<mesh::NodeId>(j * (nx + 1) + i);
      const mesh::NodeId sw = row;
      const mesh::NodeId se = row + 1;
      const auto nw = static_cast<mesh::NodeId>(row + nx + 1);
      const mesh::NodeId ne = nw + 1;
      const auto emit = [&](mesh::CellId neighbor_cell, mesh::NodeId n0,
                            mesh::NodeId n1) {
        const PeId npe = owner_of[static_cast<std::size_t>(neighbor_cell)];
        if (npe == pe) return;
        // The face's exchange group is decided canonically by the cell
        // on the lower-ranked processor's side, so both sides of a
        // boundary agree on per-group face counts (the exchange
        // protocol in SimKrak is symmetric and would otherwise
        // mismatch).
        const mesh::Material face_material =
            (pe < npe) ? deck.material_of(cell)
                       : deck.material_of(neighbor_cell);
        incidences.push_back(
            {pe, npe,
             static_cast<std::uint8_t>(mesh::exchange_group(face_material)),
             {n0, n1}});
        for (const mesh::NodeId node : {n0, n1}) {
          NodeSharers& shared = sharers[static_cast<std::size_t>(node)];
          if (shared.count == 0) boundary_nodes.push_back(node);
          shared.insert(pe);
          shared.insert(npe);
        }
      };
      if (i > 0) emit(cell - 1, sw, nw);             // west face
      if (i + 1 < nx) emit(cell + 1, se, ne);        // east face
      if (j > 0) emit(cell - nx, sw, se);            // south face
      if (j + 1 < ny) emit(cell + nx, nw, ne);       // north face
    }
  }

  // Ghost-node ownership: hash over the sorted sharer list.
  std::vector<PeId> node_owner(static_cast<std::size_t>(num_nodes), -1);
  for (const mesh::NodeId node : boundary_nodes) {
    NodeSharers& shared = sharers[static_cast<std::size_t>(node)];
    std::sort(shared.pes, shared.pes + shared.count);
    node_owner[static_cast<std::size_t>(node)] =
        shared.pes[hash_node(node) % shared.count];
  }

  // Group incidences into (pe, neighbor) boundaries; ascending neighbor
  // order per PE matches the ordered-map formulation exactly.
  std::sort(incidences.begin(), incidences.end(),
            [](const FaceIncidence& a, const FaceIncidence& b) {
              return a.pe != b.pe ? a.pe < b.pe : a.npe < b.npe;
            });
  std::vector<std::pair<mesh::NodeId, std::uint8_t>> node_groups;
  for (std::size_t begin = 0; begin < incidences.size();) {
    const PeId pe = incidences[begin].pe;
    const PeId npe = incidences[begin].npe;
    std::size_t end = begin;
    NeighborBoundary boundary;
    boundary.neighbor = npe;
    node_groups.clear();
    while (end < incidences.size() && incidences[end].pe == pe &&
           incidences[end].npe == npe) {
      const FaceIncidence& face = incidences[end];
      ++boundary.total_faces;
      ++boundary.faces_per_group[face.group];
      const auto bit = static_cast<std::uint8_t>(1u << face.group);
      node_groups.emplace_back(face.nodes[0], bit);
      node_groups.emplace_back(face.nodes[1], bit);
      ++end;
    }
    std::sort(node_groups.begin(), node_groups.end());
    for (std::size_t k = 0; k < node_groups.size();) {
      const mesh::NodeId node = node_groups[k].first;
      std::uint8_t mask = 0;
      for (; k < node_groups.size() && node_groups[k].first == node; ++k) {
        mask |= node_groups[k].second;
      }
      // Popcount of a byte-size mask.
      const int groups = std::popcount(static_cast<unsigned>(mask));
      if (groups > 1) {
        ++boundary.multi_material_ghost_nodes;
        for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
          if ((mask >> g) & 1u) {
            ++boundary.multi_material_nodes_per_group[g];
          }
        }
      }
      if (node_owner[static_cast<std::size_t>(node)] == pe) {
        ++boundary.ghost_nodes_local;
      } else {
        ++boundary.ghost_nodes_remote;
      }
    }
    subdomains_[static_cast<std::size_t>(pe)].neighbors.push_back(boundary);
    begin = end;
  }
}

const SubdomainInfo& PartitionStats::subdomain(PeId pe) const {
  KRAK_REQUIRE(pe >= 0, "pe id must be non-negative");
  return util::span_at(subdomains_, static_cast<std::size_t>(pe));
}

std::int64_t PartitionStats::total_boundary_faces() const {
  std::int64_t total = 0;
  for (const SubdomainInfo& sub : subdomains_) {
    total += sub.total_boundary_faces();
  }
  return total;
}

std::int64_t PartitionStats::max_cells_per_pe() const {
  std::int64_t max_cells = 0;
  for (const SubdomainInfo& sub : subdomains_) {
    max_cells = std::max(max_cells, sub.total_cells);
  }
  return max_cells;
}

}  // namespace krak::partition
