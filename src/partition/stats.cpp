#include "partition/stats.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace krak::partition {

namespace {

/// Deterministic node hash (SplitMix64 finalizer) for ghost ownership.
std::uint64_t hash_node(std::int64_t node) {
  auto z = static_cast<std::uint64_t>(node) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct BoundaryAccum {
  std::array<std::int64_t, mesh::kExchangeGroupCount> faces_per_group{};
  std::int64_t total_faces = 0;
  /// node -> bitmask of local material groups met on this boundary
  std::unordered_map<mesh::NodeId, std::uint8_t> node_groups;
};

}  // namespace

std::int64_t SubdomainInfo::total_boundary_faces() const {
  std::int64_t total = 0;
  for (const NeighborBoundary& b : neighbors) total += b.total_faces;
  return total;
}

std::int64_t SubdomainInfo::total_ghost_nodes() const {
  std::int64_t total = 0;
  for (const NeighborBoundary& b : neighbors) total += b.total_ghost_nodes();
  return total;
}

PartitionStats::PartitionStats(const mesh::InputDeck& deck,
                               const Partition& partition) {
  const mesh::Grid& grid = deck.grid();
  KRAK_REQUIRE(partition.num_cells() == grid.num_cells(),
               "partition does not match deck");
  const std::int32_t parts = partition.parts();
  subdomains_.resize(static_cast<std::size_t>(parts));
  for (PeId pe = 0; pe < parts; ++pe) {
    subdomains_[static_cast<std::size_t>(pe)].pe = pe;
  }

  // Cells and materials per subdomain.
  for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    const PeId pe = partition.pe_of(cell);
    SubdomainInfo& sub = subdomains_[static_cast<std::size_t>(pe)];
    ++sub.total_cells;
    ++sub.cells_per_material[mesh::material_index(
        deck.material_of(static_cast<mesh::CellId>(cell)))];
  }

  // Boundary accumulation per (pe, neighbor) pair, and the global set of
  // PEs sharing each boundary node (for ownership).
  std::vector<std::map<PeId, BoundaryAccum>> boundaries(
      static_cast<std::size_t>(parts));
  std::unordered_map<mesh::NodeId, std::vector<PeId>> node_sharers;

  for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    const auto cell_id = static_cast<mesh::CellId>(cell);
    const PeId pe = partition.pe_of(cell);
    for (mesh::CellId neighbor_cell : grid.neighbors_of_cell(cell_id)) {
      const PeId npe = partition.pe_of(neighbor_cell);
      if (npe == pe) continue;
      // The face's exchange group is decided canonically by the cell on
      // the lower-ranked processor's side, so both sides of a boundary
      // agree on per-group face counts (the exchange protocol in
      // SimKrak is symmetric and would otherwise mismatch).
      const mesh::Material face_material = (pe < npe)
                                               ? deck.material_of(cell_id)
                                               : deck.material_of(neighbor_cell);
      const std::uint8_t group_bit = static_cast<std::uint8_t>(
          1u << mesh::exchange_group(face_material));
      BoundaryAccum& accum =
          boundaries[static_cast<std::size_t>(pe)][npe];
      const mesh::FaceId face = grid.shared_face(cell_id, neighbor_cell);
      ++accum.total_faces;
      ++accum.faces_per_group[mesh::exchange_group(face_material)];
      for (mesh::NodeId node : grid.nodes_of_face(face)) {
        accum.node_groups[node] |= group_bit;
        auto& sharers = node_sharers[node];
        if (std::find(sharers.begin(), sharers.end(), pe) == sharers.end()) {
          sharers.push_back(pe);
        }
        if (std::find(sharers.begin(), sharers.end(), npe) == sharers.end()) {
          sharers.push_back(npe);
        }
      }
    }
  }

  // Ghost-node ownership: hash over the sorted sharer list.
  std::unordered_map<mesh::NodeId, PeId> node_owner;
  node_owner.reserve(node_sharers.size());
  for (auto& [node, sharers] : node_sharers) {
    std::sort(sharers.begin(), sharers.end());
    node_owner[node] = sharers[hash_node(node) % sharers.size()];
  }

  for (PeId pe = 0; pe < parts; ++pe) {
    SubdomainInfo& sub = subdomains_[static_cast<std::size_t>(pe)];
    for (auto& [npe, accum] : boundaries[static_cast<std::size_t>(pe)]) {
      NeighborBoundary boundary;
      boundary.neighbor = npe;
      boundary.faces_per_group = accum.faces_per_group;
      boundary.total_faces = accum.total_faces;
      for (const auto& [node, mask] : accum.node_groups) {
        // Popcount of a byte-size mask.
        const int groups = std::popcount(static_cast<unsigned>(mask));
        if (groups > 1) {
          ++boundary.multi_material_ghost_nodes;
          for (std::size_t g = 0; g < mesh::kExchangeGroupCount; ++g) {
            if ((mask >> g) & 1u) {
              ++boundary.multi_material_nodes_per_group[g];
            }
          }
        }
        if (node_owner.at(node) == pe) {
          ++boundary.ghost_nodes_local;
        } else {
          ++boundary.ghost_nodes_remote;
        }
      }
      sub.neighbors.push_back(boundary);
    }
  }
}

const SubdomainInfo& PartitionStats::subdomain(PeId pe) const {
  KRAK_REQUIRE(pe >= 0, "pe id must be non-negative");
  return util::span_at(subdomains_, static_cast<std::size_t>(pe));
}

std::int64_t PartitionStats::total_boundary_faces() const {
  std::int64_t total = 0;
  for (const SubdomainInfo& sub : subdomains_) {
    total += sub.total_boundary_faces();
  }
  return total;
}

std::int64_t PartitionStats::max_cells_per_pe() const {
  std::int64_t max_cells = 0;
  for (const SubdomainInfo& sub : subdomains_) {
    max_cells = std::max(max_cells, sub.total_cells);
  }
  return max_cells;
}

}  // namespace krak::partition
