#include <algorithm>
#include <numeric>
#include <vector>

#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::partition {

namespace {

using mesh::Point;

/// Recursively split `indices` (into `centers`) among parts
/// [part_begin, part_begin + parts), writing the result to `assignment`.
///
/// The split axis is the one with the larger coordinate extent, the
/// split position the weighted median so that cell counts stay
/// proportional to the number of parts on each side. Handles arbitrary
/// (non-power-of-two) part counts.
void rcb_recurse(const std::vector<Point>& centers,
                 std::vector<std::int64_t>& indices, std::int64_t begin,
                 std::int64_t end, std::int32_t part_begin, std::int32_t parts,
                 std::vector<PeId>& assignment) {
  if (parts == 1) {
    for (std::int64_t k = begin; k < end; ++k) {
      assignment[static_cast<std::size_t>(indices[static_cast<std::size_t>(k)])] =
          part_begin;
    }
    return;
  }

  const std::int64_t count = end - begin;
  const std::int32_t left_parts = parts / 2;
  const std::int32_t right_parts = parts - left_parts;
  // Cells proportional to part counts on each side.
  const std::int64_t left_count =
      count * left_parts / parts;

  // Pick the axis with the larger extent.
  double min_x = centers[static_cast<std::size_t>(indices[static_cast<std::size_t>(begin)])].x;
  double max_x = min_x;
  double min_y = centers[static_cast<std::size_t>(indices[static_cast<std::size_t>(begin)])].y;
  double max_y = min_y;
  for (std::int64_t k = begin; k < end; ++k) {
    const Point& p = centers[static_cast<std::size_t>(indices[static_cast<std::size_t>(k)])];
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const bool split_x = (max_x - min_x) >= (max_y - min_y);

  const auto mid = indices.begin() + begin + left_count;
  // Ties broken by the other coordinate then index, keeping the split
  // deterministic.
  const auto less = [&](std::int64_t a, std::int64_t b) {
    const Point& pa = centers[static_cast<std::size_t>(a)];
    const Point& pb = centers[static_cast<std::size_t>(b)];
    if (split_x) {
      if (pa.x != pb.x) return pa.x < pb.x;
      if (pa.y != pb.y) return pa.y < pb.y;
    } else {
      if (pa.y != pb.y) return pa.y < pb.y;
      if (pa.x != pb.x) return pa.x < pb.x;
    }
    return a < b;
  };
  std::nth_element(indices.begin() + begin, mid, indices.begin() + end, less);

  rcb_recurse(centers, indices, begin, begin + left_count, part_begin,
              left_parts, assignment);
  rcb_recurse(centers, indices, begin + left_count, end,
              part_begin + left_parts, right_parts, assignment);
}

}  // namespace

Partition partition_rcb(const std::vector<Point>& centers,
                        std::int32_t parts) {
  KRAK_REQUIRE(!centers.empty(), "partition_rcb requires points");
  KRAK_REQUIRE(parts > 0, "partition_rcb requires parts > 0");
  KRAK_REQUIRE(static_cast<std::size_t>(parts) <= centers.size(),
               "more parts than points");
  std::vector<std::int64_t> indices(centers.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<PeId> assignment(centers.size(), 0);
  rcb_recurse(centers, indices, 0, static_cast<std::int64_t>(centers.size()),
              0, parts, assignment);
  return Partition(parts, std::move(assignment));
}

}  // namespace krak::partition
