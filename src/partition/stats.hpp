#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::partition {

/// Statistics of the boundary between one processor and one neighbor,
/// seen from the local processor's side. These are exactly the inputs
/// the paper's communication model consumes (Sections 4.1–4.2).
struct NeighborBoundary {
  PeId neighbor = -1;

  /// Shared faces by boundary-exchange material group (identical
  /// materials — the two aluminum layers — are one group, Section 4.1).
  std::array<std::int64_t, mesh::kExchangeGroupCount> faces_per_group{};

  /// All shared faces regardless of material (the final exchange step).
  std::int64_t total_faces = 0;

  /// Ghost nodes on this boundary adjacent to faces of more than one
  /// material group (they add 12 bytes to the first two messages of
  /// each material's exchange step).
  std::int64_t multi_material_ghost_nodes = 0;

  /// Per-group breakdown of the above: multi-material ghost nodes that
  /// touch faces of group g. This is the count that augments group g's
  /// first two exchange messages (Table 3 of the paper: a node at a
  /// material junction is charged to every material meeting there).
  std::array<std::int64_t, mesh::kExchangeGroupCount>
      multi_material_nodes_per_group{};

  /// Ghost nodes on this boundary owned by the local processor.
  std::int64_t ghost_nodes_local = 0;
  /// Ghost nodes on this boundary owned by the neighbor.
  std::int64_t ghost_nodes_remote = 0;

  [[nodiscard]] std::int64_t total_ghost_nodes() const {
    return ghost_nodes_local + ghost_nodes_remote;
  }
};

/// Everything the model needs to know about one processor's subgrid.
struct SubdomainInfo {
  PeId pe = -1;
  std::int64_t total_cells = 0;
  std::array<std::int64_t, mesh::kMaterialCount> cells_per_material{};
  std::vector<NeighborBoundary> neighbors;

  [[nodiscard]] std::int64_t total_boundary_faces() const;
  [[nodiscard]] std::int64_t total_ghost_nodes() const;
};

/// Per-processor subgrid statistics for a partitioned deck.
///
/// Ghost-node ownership rule: a node on a processor boundary is owned by
/// exactly one of the sharing processors, chosen by a deterministic hash
/// of the node id over the sorted sharer list. Statistically this gives
/// the paper's "half local / half remote" split without requiring the
/// production code's (unknown) ownership rule.
class PartitionStats {
 public:
  PartitionStats(const mesh::InputDeck& deck, const Partition& partition);

  [[nodiscard]] std::int32_t parts() const {
    return static_cast<std::int32_t>(subdomains_.size());
  }
  [[nodiscard]] const SubdomainInfo& subdomain(PeId pe) const;
  [[nodiscard]] const std::vector<SubdomainInfo>& subdomains() const {
    return subdomains_;
  }

  /// Sum of per-PE boundary faces (each shared face counted twice,
  /// once from each side).
  [[nodiscard]] std::int64_t total_boundary_faces() const;

  /// Largest cells-per-PE count.
  [[nodiscard]] std::int64_t max_cells_per_pe() const;

 private:
  std::vector<SubdomainInfo> subdomains_;
};

}  // namespace krak::partition
