#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mesh/deck.hpp"
#include "partition/dualgraph.hpp"
#include "util/rng.hpp"

namespace krak::partition {

using PeId = std::int32_t;

/// An assignment of every cell (graph vertex) to one processor.
class Partition {
 public:
  /// assignment[cell] = pe; every value must lie in [0, parts).
  Partition(std::int32_t parts, std::vector<PeId> assignment);

  [[nodiscard]] std::int32_t parts() const { return parts_; }
  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(assignment_.size());
  }

  [[nodiscard]] PeId pe_of(std::int64_t cell) const;
  [[nodiscard]] const std::vector<PeId>& assignment() const {
    return assignment_;
  }

  /// Cells per processor.
  [[nodiscard]] std::vector<std::int64_t> cell_counts() const;

  /// Cells owned by one processor, in ascending cell order.
  [[nodiscard]] std::vector<std::int64_t> cells_of_pe(PeId pe) const;

 private:
  std::int32_t parts_;
  std::vector<PeId> assignment_;
};

/// Aggregate quality metrics of a partition with respect to its graph.
struct PartitionQuality {
  std::int64_t min_cells = 0;
  std::int64_t max_cells = 0;
  double mean_cells = 0.0;
  /// max_cells / mean_cells; 1.0 is perfect balance.
  double imbalance = 0.0;
  /// Total weight of edges crossing processor boundaries.
  std::int64_t edge_cut = 0;
  /// Number of processors with zero cells.
  std::int32_t empty_parts = 0;
  double mean_neighbors = 0.0;
  std::int32_t max_neighbors = 0;
};

[[nodiscard]] PartitionQuality evaluate_partition(const Graph& graph,
                                                  const Partition& partition);

/// Available partitioning algorithms.
enum class PartitionMethod {
  /// Contiguous runs of cells in row-major order; the naive baseline.
  kStrip,
  /// Recursive coordinate bisection on cell centers.
  kRcb,
  /// Multilevel: heavy-edge-matching coarsening, greedy graph-growing
  /// initial partition, FM boundary refinement per level. This is the
  /// project's stand-in for Metis (Section 2 of the paper).
  kMultilevel,
  /// Material-aware: every material region is RCB-split across ALL
  /// processors, so each subgrid holds the global material mix. Trades
  /// edge cut for per-material load balance — the data-partitioning
  /// "alteration to the application" the paper's introduction proposes
  /// evaluating with the model.
  kMaterialAware,
};

[[nodiscard]] std::string_view partition_method_name(PartitionMethod method);

/// Partition a deck's cells into `parts` subgrids.
///
/// `seed` controls tie-breaking in the multilevel method; strip and RCB
/// are fully deterministic regardless of seed. `threads` > 1 runs the
/// multilevel method's speculative parallel paths; the assignment is
/// bit-identical at every thread count (see partition_multilevel).
[[nodiscard]] Partition partition_deck(const mesh::InputDeck& deck,
                                       std::int32_t parts,
                                       PartitionMethod method,
                                       std::uint64_t seed = 1,
                                       std::int32_t threads = 1);

/// Strip partition of n cells in index order.
[[nodiscard]] Partition partition_strips(std::int64_t num_cells,
                                         std::int32_t parts);

/// Recursive coordinate bisection over arbitrary points; handles
/// non-power-of-two part counts by proportional splits.
[[nodiscard]] Partition partition_rcb(const std::vector<mesh::Point>& centers,
                                      std::int32_t parts);

/// Tuning knobs of the multilevel partitioner. The options never change
/// the resulting assignment — they only change how fast it is computed.
struct MultilevelOptions {
  /// Worker threads for the speculative parallel paths (heavy-edge
  /// matching, coarse-graph aggregation, FM gain recomputation). 1 runs
  /// the fully serial reference path. Any value produces the assignment
  /// the serial path produces, bit for bit; tests/partition enforces
  /// this at 1/2/8 threads against checked-in checksums.
  std::int32_t threads = 1;
  /// Identity token for the coarsening ladder cache (docs/
  /// PERFORMANCE.md). Two calls passing the same key assert that their
  /// input graphs are identical; partition_deck derives it from the
  /// grid dimensions, which fully determine the unweighted dual graph.
  /// Leave empty to fingerprint the graph content instead — always
  /// correct, costs one O(V+E) hash per call.
  std::optional<std::uint64_t> ladder_key;
};

/// Multilevel k-way partition of a CSR graph.
[[nodiscard]] Partition partition_multilevel(const Graph& graph,
                                             std::int32_t parts,
                                             std::uint64_t seed = 1);

/// As above with explicit options; the overloads return identical
/// assignments for every option combination.
[[nodiscard]] Partition partition_multilevel(const Graph& graph,
                                             std::int32_t parts,
                                             std::uint64_t seed,
                                             const MultilevelOptions& options);

/// Drop every cached coarsening ladder (test isolation; the determinism
/// suite clears it between thread counts so parallel coarsening is
/// genuinely re-executed rather than replayed from cache).
void clear_multilevel_ladder_cache();

/// Cost-aware multilevel partition: balances the model's per-cell
/// material costs instead of raw cell counts (the "alteration to the
/// application" loop closed: the model's own calibration drives the
/// partitioner). `material_costs` is typically the calibrated per-cell
/// cost of the dominant material-dependent phases.
[[nodiscard]] Partition partition_cost_aware(
    const mesh::InputDeck& deck, std::int32_t parts,
    std::span<const double, mesh::kMaterialCount> material_costs,
    std::uint64_t seed = 1);

/// Material-aware partition: each material's cells are RCB-split into
/// `parts` pieces and piece p goes to processor p, giving every
/// processor its proportional share of every material.
[[nodiscard]] Partition partition_material_aware(const mesh::InputDeck& deck,
                                                 std::int32_t parts);

}  // namespace krak::partition
