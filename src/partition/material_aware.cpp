#include <algorithm>
#include <array>
#include <vector>

#include "partition/partition.hpp"
#include "util/error.hpp"

namespace krak::partition {

namespace {

/// RCB over a subset of cells, writing part ids into the global
/// assignment. Reuses partition_rcb on the subset's centers and then
/// scatters the result back through the index map.
void rcb_subset(const mesh::Grid& grid, const std::vector<mesh::CellId>& cells,
                std::int32_t parts, std::vector<PeId>& assignment) {
  std::vector<mesh::Point> centers;
  centers.reserve(cells.size());
  for (mesh::CellId cell : cells) {
    centers.push_back(grid.cell_center(cell));
  }
  const Partition sub = partition_rcb(centers, parts);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    assignment[static_cast<std::size_t>(cells[i])] =
        sub.pe_of(static_cast<std::int64_t>(i));
  }
}

}  // namespace

Partition partition_material_aware(const mesh::InputDeck& deck,
                                   std::int32_t parts) {
  const mesh::Grid& grid = deck.grid();
  util::check(parts > 0, "partition_material_aware requires parts > 0");
  util::check(parts <= grid.num_cells(), "more parts than cells");

  // Group cells by material. Each group is split across all processors
  // by RCB so every processor receives a spatially compact share of
  // every material — per-material load balance by construction.
  std::array<std::vector<mesh::CellId>, mesh::kMaterialCount> by_material;
  for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    const auto cell_id = static_cast<mesh::CellId>(cell);
    by_material[mesh::material_index(deck.material_of(cell_id))].push_back(
        cell_id);
  }

  std::vector<PeId> assignment(static_cast<std::size_t>(grid.num_cells()), 0);
  // Some material may have fewer cells than processors (tiny decks);
  // those cells are strip-assigned and the remaining PEs simply get
  // none of that material.
  for (const auto& cells : by_material) {
    if (cells.empty()) continue;
    if (static_cast<std::int64_t>(cells.size()) >= parts) {
      rcb_subset(grid, cells, parts, assignment);
    } else {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        assignment[static_cast<std::size_t>(cells[i])] =
            static_cast<PeId>(i % static_cast<std::size_t>(parts));
      }
    }
  }

  // Guarantee no empty processors: a PE misses cells only when every
  // material had fewer cells than parts; steal from the largest.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(parts), 0);
  for (PeId pe : assignment) ++counts[static_cast<std::size_t>(pe)];
  for (std::int32_t pe = 0; pe < parts; ++pe) {
    if (counts[static_cast<std::size_t>(pe)] > 0) continue;
    const auto largest = static_cast<PeId>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    for (auto& a : assignment) {
      if (a == largest) {
        a = pe;
        --counts[static_cast<std::size_t>(largest)];
        ++counts[static_cast<std::size_t>(pe)];
        break;
      }
    }
  }
  return Partition(parts, std::move(assignment));
}

}  // namespace krak::partition
