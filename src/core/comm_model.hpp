#pragma once

#include <span>

#include "network/collectives.hpp"
#include "network/msgmodel.hpp"
#include "partition/stats.hpp"

namespace krak::core {

/// The communication model of Section 4: boundary exchange (Equation
/// 5), ghost-node updates (Equations 6-7), collectives (Equations
/// 8-10). Point-to-point costs come from the piecewise-linear Tmsg of
/// Equation (4). By design the point-to-point equations serialize the
/// messages of a processor (no overlap between neighbors) — the paper
/// explicitly notes this approximation.

/// Equation (5): the time for one processor to complete a boundary
/// exchange with a single neighbor. `faces` holds the number of
/// boundary faces of each material (entries of zero contribute nothing);
/// the final term covers the additional all-materials step.
///
/// `multi_material_nodes` (parallel to `faces`) gives, per material,
/// the ghost nodes on this boundary that touch that material and more
/// than one material in total; the first two of the six messages in the
/// material's step additionally carry 12 bytes per such node
/// (Section 4.1, Table 3).
[[nodiscard]] double boundary_exchange_time(
    const network::MessageCostModel& network, std::span<const double> faces,
    std::span<const double> multi_material_nodes);

/// Equation (5) exactly as printed (no ghost-node augmentation).
[[nodiscard]] double boundary_exchange_time(
    const network::MessageCostModel& network, std::span<const double> faces);

/// Equations (6)-(7): ghost-node update time with one neighbor —
/// Tmsg(b*N_local) + Tmsg(b*N_remote) with b = 8 bytes for phase 4 and
/// 16 bytes for phases 5 and 7.
[[nodiscard]] double ghost_update_time(const network::MessageCostModel& network,
                                       double bytes_per_node,
                                       double ghost_nodes_local,
                                       double ghost_nodes_remote);

/// Per-iteration point-to-point communication of one processor under
/// the mesh-specific model: Equation (5) summed over its neighbors,
/// plus Equations (6)-(7) over its neighbors for the three ghost-update
/// phases.
struct PointToPointBreakdown {
  double boundary_exchange = 0.0;
  double ghost_updates = 0.0;

  [[nodiscard]] double total() const {
    return boundary_exchange + ghost_updates;
  }
};

/// Evaluate the mesh-specific point-to-point model for one subdomain.
/// `combine_aluminum` mirrors the application's treatment of the two
/// aluminum layers as a single material; disabling it is the paper's
/// "does not account for combining like materials" variant.
[[nodiscard]] PointToPointBreakdown subdomain_point_to_point(
    const network::MessageCostModel& network,
    const partition::SubdomainInfo& sub, bool combine_aluminum = true,
    bool include_ghost_augmentation = true);

/// Max over processors of each point-to-point component (phases end at
/// global synchronizations, so the slowest processor defines the cost).
[[nodiscard]] PointToPointBreakdown max_point_to_point(
    const network::MessageCostModel& network,
    const partition::PartitionStats& stats, bool combine_aluminum = true,
    bool include_ghost_augmentation = true);

}  // namespace krak::core
