#include "core/general_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/comm_model.hpp"
#include "network/collectives.hpp"
#include "util/error.hpp"

namespace krak::core {

using util::check;

std::string_view general_model_mode_name(GeneralModelMode mode) {
  switch (mode) {
    case GeneralModelMode::kHeterogeneous: return "heterogeneous";
    case GeneralModelMode::kHomogeneous: return "homogeneous";
  }
  return "unknown";
}

GeneralModel::GeneralModel(CostTable table, network::MachineConfig machine,
                           std::array<double, mesh::kMaterialCount> ratios)
    : table_(std::move(table)),
      machine_(std::move(machine)),
      ratios_(ratios) {
  double sum = 0.0;
  for (double r : ratios_) {
    check(r >= 0.0, "material ratios must be non-negative");
    sum += r;
  }
  check(std::abs(sum - 1.0) < 1e-6, "material ratios must sum to 1");
}

void GeneralModel::set_neighbors_per_pe(std::int32_t neighbors) {
  check(neighbors >= 0, "neighbor count must be non-negative");
  neighbors_per_pe_ = neighbors;
}

double GeneralModel::boundary_faces(std::int64_t total_cells,
                                    std::int32_t pes) {
  check(total_cells > 0 && pes > 0, "cells and PEs must be positive");
  return std::sqrt(static_cast<double>(total_cells) /
                   static_cast<double>(pes));
}

double GeneralModel::phase_time_heterogeneous(std::int32_t phase,
                                              double cells_per_pe) const {
  // Each material occupies its ratio's share of the idealized subgrid
  // and is costed at that share's size: the general model has no real
  // mixed subgrid, so material m is treated as its own region of
  // ratio_m * n cells. At large processor counts these per-material
  // regions shrink into the knee of the cost curve, which (together
  // with the per-material boundary-exchange messages) is why the
  // heterogeneous flavor over-predicts at scale (Section 5.2).
  double time = 0.0;
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    if (ratios_[m] == 0.0) continue;
    time += table_.uniform_subgrid_time(phase, mesh::material_from_index(m),
                                        ratios_[m] * cells_per_pe);
  }
  return time;
}

double GeneralModel::phase_time_homogeneous(std::int32_t phase,
                                            double cells_per_pe) const {
  // "By calculating which material results in the longest computation
  // time, the time required for each phase of computation can be
  // determined" (Section 3.2).
  double max_time = 0.0;
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    if (ratios_[m] == 0.0) continue;
    max_time = std::max(
        max_time, table_.uniform_subgrid_time(
                      phase, mesh::material_from_index(m), cells_per_pe));
  }
  return max_time;
}

PredictionReport GeneralModel::predict(std::int64_t total_cells,
                                       std::int32_t pes,
                                       GeneralModelMode mode) const {
  check(total_cells > 0, "total_cells must be positive");
  check(pes > 0, "pes must be positive");
  check(pes <= machine_.total_pes(), "machine has too few processors");
  const double cells_per_pe =
      static_cast<double>(total_cells) / static_cast<double>(pes);

  PredictionReport report;

  // --- computation (Equations 1-3 under the idealized partition) -----
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    const double t = (mode == GeneralModelMode::kHeterogeneous)
                         ? phase_time_heterogeneous(phase, cells_per_pe)
                         : phase_time_homogeneous(phase, cells_per_pe);
    report.phase_computation[static_cast<std::size_t>(phase - 1)] =
        t / machine_.compute_speedup;
    report.computation += t / machine_.compute_speedup;
  }

  // --- point-to-point communication (Equations 5-7) ------------------
  const std::int32_t neighbors =
      std::min<std::int32_t>(neighbors_per_pe_, pes - 1);
  if (neighbors > 0) {
    const double faces = boundary_faces(total_cells, pes);

    std::vector<double> face_array;
    if (mode == GeneralModelMode::kHeterogeneous) {
      // "Boundary faces are divided equally among the materials in use."
      std::int32_t in_use = 0;
      for (double r : ratios_) {
        if (r > 0.0) ++in_use;
      }
      face_array.assign(static_cast<std::size_t>(in_use),
                        faces / static_cast<double>(in_use));
    } else {
      // A homogeneous subgrid's boundary touches a single material.
      face_array = {faces};
    }
    // Equation (5) per neighbor, serialized over neighbors (the model
    // does not overlap messages between neighbors).
    // Equation (5) as printed: no ghost-node augmentation.
    report.boundary_exchange =
        static_cast<double>(neighbors) *
        boundary_exchange_time(machine_.network, face_array);

    // "The number of ghost nodes on each boundary is one more than the
    // number of boundary faces, and half ... are local with the
    // remaining half remote" (Section 3.2).
    const double ghost_nodes = faces + 1.0;
    const double local = ghost_nodes / 2.0;
    const double remote = ghost_nodes - local;
    report.ghost_updates =
        static_cast<double>(neighbors) *
        (ghost_update_time(machine_.network, 8.0, local, remote) +
         2.0 * ghost_update_time(machine_.network, 16.0, local, remote));
  }

  // --- collectives (Equations 8-10) -----------------------------------
  const network::CollectiveModel collectives(machine_.network);
  report.broadcast = collectives.iteration_broadcast(pes);
  report.allreduce = collectives.iteration_allreduce(pes);
  report.gather = collectives.iteration_gather(pes);

  return report;
}

}  // namespace krak::core
