#include "core/calibration.hpp"


#include "core/partition_cache.hpp"
#include "linalg/solve.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "util/error.hpp"

namespace krak::core {

using util::check;

CostTable calibrate_contrived(const simapp::ComputationCostEngine& engine,
                              const CalibrationConfig& config) {
  check(!config.sample_sizes.empty(), "calibration needs sample sizes");
  check(config.repetitions >= 1, "calibration needs repetitions >= 1");
  util::Rng rng(config.seed);

  CostTable table;
  for (mesh::Material material : mesh::all_materials()) {
    for (double size : config.sample_sizes) {
      check(size >= 1.0, "sample sizes must be >= 1 cell");
      const auto cells = static_cast<std::int64_t>(size);
      std::array<std::int64_t, mesh::kMaterialCount> counts{};
      counts[mesh::material_index(material)] = cells;
      for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
        double sum = 0.0;
        for (std::int32_t rep = 0; rep < config.repetitions; ++rep) {
          sum += engine.measured_subgrid_time(phase, counts, rng);
        }
        const double mean_time = sum / config.repetitions;
        table.add_sample(phase, material, static_cast<double>(cells),
                         mean_time / static_cast<double>(cells));
      }
    }
  }
  return table;
}

CostTable calibrate_from_input(const simapp::ComputationCostEngine& engine,
                               const mesh::InputDeck& deck,
                               const std::vector<std::int32_t>& pe_counts,
                               const CalibrationConfig& config) {
  check(!pe_counts.empty(), "calibration needs at least one PE count");
  check(config.repetitions >= 1, "calibration needs repetitions >= 1");
  util::Rng rng(config.seed);

  CostTable table;
  for (std::int32_t pes : pe_counts) {
    check(pes >= 1, "PE counts must be positive");
    // Routed through the campaign-wide cache: the calibration partitions
    // also land in the persistent store, and a calibration PE count that
    // a campaign later revisits is computed once.
    const std::shared_ptr<const PartitionedDeck> partitioned =
        PartitionCache::global().get(
            deck, pes, partition::PartitionMethod::kMultilevel, config.seed);
    const partition::PartitionStats& stats = *partitioned->stats;

    // The sample's representative subgrid size: the balanced share.
    const double mean_cells = static_cast<double>(deck.grid().num_cells()) /
                              static_cast<double>(pes);

    // Which materials actually appear in this run (columns of the
    // system); absent materials yield no information at this scale.
    std::array<bool, mesh::kMaterialCount> present{};
    for (const partition::SubdomainInfo& sub : stats.subdomains()) {
      for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
        if (sub.cells_per_material[m] > 0) present[m] = true;
      }
    }
    std::vector<std::size_t> columns;
    for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
      if (present[m]) columns.push_back(m);
    }
    check(!columns.empty(), "deck has no cells");
    // An over- or exactly-determined system needs at least as many
    // processor equations as unknown materials.
    check(static_cast<std::size_t>(pes) >= columns.size(),
          "calibration PE count must be >= number of materials present");

    for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
      linalg::Matrix a(static_cast<std::size_t>(pes), columns.size());
      std::vector<double> b(static_cast<std::size_t>(pes), 0.0);
      for (std::int32_t pe = 0; pe < pes; ++pe) {
        const partition::SubdomainInfo& sub = stats.subdomain(pe);
        for (std::size_t c = 0; c < columns.size(); ++c) {
          a(static_cast<std::size_t>(pe), c) = static_cast<double>(
              sub.cells_per_material[columns[c]]);
        }
        double sum = 0.0;
        for (std::int32_t rep = 0; rep < config.repetitions; ++rep) {
          sum += engine.measured_subgrid_time(
              phase,
              std::span<const std::int64_t, mesh::kMaterialCount>(
                  sub.cells_per_material),
              rng);
        }
        b[static_cast<std::size_t>(pe)] = sum / config.repetitions;
      }
      const linalg::LeastSquaresResult solution =
          linalg::solve_nonnegative_least_squares(a, b);
      for (std::size_t c = 0; c < columns.size(); ++c) {
        table.add_sample(phase, mesh::material_from_index(columns[c]),
                         mean_cells, solution.x[c]);
      }
    }
  }
  return table;
}

}  // namespace krak::core
