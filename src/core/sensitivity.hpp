#pragma once

#include <cstdint>
#include <string>

#include "core/model.hpp"

namespace krak::core {

/// Model-based sensitivity analysis: how much does the predicted
/// iteration time move when one machine parameter is perturbed? This is
/// the quantitative backbone of the procurement studies the paper's
/// introduction motivates — it tells a buyer which component upgrade
/// buys the most for a given workload configuration.
struct SensitivityReport {
  std::int64_t total_cells = 0;
  std::int32_t pes = 0;
  /// Fractional perturbation applied (e.g. 0.10 = +10%).
  double delta = 0.0;
  /// Baseline predicted iteration time.
  double base_time = 0.0;
  /// Relative time change per `delta` increase in network start-up
  /// latency L(S).
  double latency_sensitivity = 0.0;
  /// Relative time change per `delta` increase in per-byte cost TB(S).
  double bandwidth_sensitivity = 0.0;
  /// Relative time change per `delta` *slowdown* of the processors.
  double compute_sensitivity = 0.0;

  /// Multi-line summary naming the dominant parameter.
  [[nodiscard]] std::string to_string() const;

  /// "latency", "bandwidth" or "compute" — the parameter with the
  /// largest sensitivity magnitude.
  [[nodiscard]] std::string dominant_parameter() const;
};

/// Evaluate the general model at (cells, pes) with each machine
/// parameter perturbed by +delta in turn. delta must be positive and
/// small (typically 0.05-0.25).
[[nodiscard]] SensitivityReport analyze_sensitivity(
    const KrakModel& model, std::int64_t total_cells, std::int32_t pes,
    GeneralModelMode mode = GeneralModelMode::kHomogeneous,
    double delta = 0.10);

}  // namespace krak::core
