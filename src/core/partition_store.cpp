#include "core/partition_store.hpp"

#include <charconv>
#include <fstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace krak::core {

namespace {

void bump_store_counter(const char* name) {
  if (!obs::enabled()) return;
  obs::global_registry().counter(name).add();
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Whitespace tokenizer over the whole file. Entry files hold millions
/// of integers, so parsing goes through from_chars over one buffer
/// instead of iostream extraction — the difference is what makes a warm
/// store load cheap relative to repartitioning.
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  bool next(std::string_view& token) {
    while (pos_ < text_.size() && is_space(text_[pos_])) ++pos_;
    if (pos_ >= text_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_space(text_[pos_])) ++pos_;
    token = std::string_view(text_).substr(start, pos_ - start);
    return true;
  }

  template <typename T>
  bool next_value(T& value, int base = 10) {
    std::string_view token;
    if (!next(token)) return false;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value, base);
    return result.ec == std::errc{} &&
           result.ptr == token.data() + token.size();
  }

 private:
  static bool is_space(char c) {
    return c == ' ' || c == '\n' || c == '\r' || c == '\t';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_value(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

/// Parse and fully validate an entry file against `key`; nullopt on any
/// violation. Validation mirrors `krak_analyze --partition-store`
/// (src/analyze/lint_partition_store.cpp) minus the diagnostics.
std::optional<partition::Partition> parse_entry(const std::string& text,
                                                const PartitionStore::Key& key) {
  Tokenizer tok(text);
  std::string_view word;
  if (!tok.next(word) || word != "krakpart") return std::nullopt;
  std::uint64_t version = 0;
  if (!tok.next_value(version) || version != 1) return std::nullopt;

  std::uint64_t fingerprint = 0;
  if (!tok.next(word) || word != "fingerprint") return std::nullopt;
  if (!tok.next_value(fingerprint, 16)) return std::nullopt;
  std::int64_t pes = 0;
  if (!tok.next(word) || word != "pes") return std::nullopt;
  if (!tok.next_value(pes) || pes <= 0) return std::nullopt;
  if (!tok.next(word) || word != "method") return std::nullopt;
  std::string_view method_name;
  if (!tok.next(method_name)) return std::nullopt;
  std::uint64_t seed = 0;
  if (!tok.next(word) || word != "seed") return std::nullopt;
  if (!tok.next_value(seed)) return std::nullopt;
  std::int64_t cells = 0;
  if (!tok.next(word) || word != "cells") return std::nullopt;
  if (!tok.next_value(cells) || cells <= 0) return std::nullopt;
  std::uint64_t checksum = 0;
  if (!tok.next(word) || word != "checksum") return std::nullopt;
  if (!tok.next_value(checksum, 16)) return std::nullopt;

  if (fingerprint != key.fingerprint || pes != key.pes || seed != key.seed ||
      method_name != partition::partition_method_name(key.method)) {
    return std::nullopt;
  }

  if (!tok.next(word) || word != "offsets") return std::nullopt;
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(pes) + 1);
  for (std::int64_t& offset : offsets) {
    if (!tok.next_value(offset)) return std::nullopt;
  }
  if (offsets.front() != 0 || offsets.back() != cells) return std::nullopt;
  for (std::size_t p = 0; p + 1 < offsets.size(); ++p) {
    if (offsets[p] > offsets[p + 1]) return std::nullopt;
  }

  std::vector<partition::PeId> assignment(static_cast<std::size_t>(cells), -1);
  std::int64_t assigned = 0;
  for (std::int64_t p = 0; p < pes; ++p) {
    std::int64_t label = -1;
    if (!tok.next(word) || word != "part") return std::nullopt;
    if (!tok.next_value(label) || label != p) return std::nullopt;
    const std::int64_t count = offsets[static_cast<std::size_t>(p) + 1] -
                               offsets[static_cast<std::size_t>(p)];
    for (std::int64_t k = 0; k < count; ++k) {
      std::int64_t cell = -1;
      if (!tok.next_value(cell)) return std::nullopt;
      if (cell < 0 || cell >= cells) return std::nullopt;
      if (assignment[static_cast<std::size_t>(cell)] != -1) return std::nullopt;
      assignment[static_cast<std::size_t>(cell)] =
          static_cast<partition::PeId>(p);
      ++assigned;
    }
  }
  if (!tok.next(word) || word != "end") return std::nullopt;
  if (tok.next(word)) return std::nullopt;  // trailing garbage
  if (assigned != cells) return std::nullopt;
  if (partition_checksum(assignment) != checksum) return std::nullopt;
  return partition::Partition(static_cast<std::int32_t>(pes),
                              std::move(assignment));
}

}  // namespace

std::uint64_t deck_fingerprint(const mesh::InputDeck& deck) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix_bytes = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ull;
    }
  };
  mix_bytes(deck.name().data(), deck.name().size());
  const std::int32_t nx = deck.grid().nx();
  const std::int32_t ny = deck.grid().ny();
  mix_bytes(&nx, sizeof(nx));
  mix_bytes(&ny, sizeof(ny));
  mix_bytes(deck.materials().data(),
            deck.materials().size() * sizeof(mesh::Material));
  const mesh::Point detonator = deck.detonator();
  mix_bytes(&detonator.x, sizeof(detonator.x));
  mix_bytes(&detonator.y, sizeof(detonator.y));
  return hash;
}

std::uint64_t partition_checksum(
    const std::vector<partition::PeId>& assignment) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const partition::PeId pe : assignment) {
    hash ^= static_cast<std::uint32_t>(pe);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

PartitionStore::PartitionStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
  // A crash between temp-file write and rename leaves an orphan `.tmp`
  // that no load ever consults; sweep them on open so an interrupted
  // run cannot accumulate dead files in the store directory.
  const std::size_t orphans = util::remove_orphan_temp_files(directory_);
  if (orphans > 0 && obs::enabled()) {
    obs::global_registry()
        .counter("partition_store.orphans_removed")
        .add(static_cast<std::int64_t>(orphans));
  }
}

std::filesystem::path PartitionStore::entry_path(const Key& key) const {
  std::string name = hex16(key.fingerprint);
  name += '-';
  append_value(name, static_cast<std::uint64_t>(key.pes));
  name += '-';
  name += partition::partition_method_name(key.method);
  name += '-';
  append_value(name, key.seed);
  name += ".krakpart";
  return directory_ / name;
}

std::optional<partition::Partition> PartitionStore::load(const Key& key) {
  const std::filesystem::path path = entry_path(key);
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.misses;
      bump_store_counter("partition_store.misses");
      return std::nullopt;
    }
    in.seekg(0, std::ios::end);
    text.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(text.data(), static_cast<std::streamsize>(text.size()));
  }
  std::optional<partition::Partition> partition = parse_entry(text, key);
  if (!partition.has_value()) {
    // Evict: a failed check means the file is corrupt or stale, and a
    // deleted entry is simply recomputed on the next run.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.rejects;
    bump_store_counter("partition_store.rejects");
    return std::nullopt;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.hits;
    bump_store_counter("partition_store.hits");
  }
  return partition;
}

void PartitionStore::save(const Key& key, const partition::Partition& part) {
  KRAK_REQUIRE(part.parts() == key.pes,
               "PartitionStore::save key/partition PE count mismatch");
  const std::vector<partition::PeId>& assignment = part.assignment();
  std::string text;
  text.reserve(assignment.size() * 8 + 64 * static_cast<std::size_t>(key.pes));
  text += "krakpart 1\nfingerprint ";
  text += hex16(key.fingerprint);
  text += "\npes ";
  append_value(text, static_cast<std::uint64_t>(key.pes));
  text += "\nmethod ";
  text += partition::partition_method_name(key.method);
  text += "\nseed ";
  append_value(text, key.seed);
  text += "\ncells ";
  append_value(text, static_cast<std::uint64_t>(assignment.size()));
  text += "\nchecksum ";
  text += hex16(partition_checksum(assignment));

  const std::vector<std::int64_t> counts = part.cell_counts();
  text += "\noffsets 0";
  std::int64_t offset = 0;
  for (const std::int64_t count : counts) {
    offset += count;
    text += ' ';
    append_value(text, static_cast<std::uint64_t>(offset));
  }
  // Cells grouped by part in ascending order: one bucket-fill pass over
  // the CSR offsets instead of one assignment scan per part.
  std::vector<std::int64_t> grouped(assignment.size());
  {
    std::vector<std::int64_t> cursor(counts.size(), 0);
    std::int64_t base = 0;
    for (std::size_t p = 0; p < counts.size(); ++p) {
      cursor[p] = base;
      base += counts[p];
    }
    for (std::size_t cell = 0; cell < assignment.size(); ++cell) {
      grouped[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(assignment[cell])]++)] =
          static_cast<std::int64_t>(cell);
    }
  }
  std::int64_t next = 0;
  for (std::int32_t p = 0; p < key.pes; ++p) {
    text += "\npart ";
    append_value(text, static_cast<std::uint64_t>(p));
    for (std::int64_t k = 0; k < counts[static_cast<std::size_t>(p)]; ++k) {
      text += ' ';
      append_value(text,
                   static_cast<std::uint64_t>(grouped[static_cast<std::size_t>(
                       next++)]));
    }
  }
  text += "\nend\n";

  // Temp-file-plus-flush-plus-rename (util::atomic_write_file) keeps a
  // crash from leaving a truncated file under a valid entry name, and
  // syncs the bytes before publishing the name so the rename can never
  // expose unsynced content. The temp name is per-entry, so concurrent
  // saves of different keys never collide; concurrent saves of the same
  // key write identical bytes.
  util::atomic_write_file(entry_path(key), text);
}

PartitionStore::Counters PartitionStore::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace krak::core
