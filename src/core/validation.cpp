#include "core/validation.hpp"

#include <memory>

#include "core/partition_cache.hpp"
#include "partition/stats.hpp"
#include "simapp/simkrak.hpp"

namespace krak::core {

namespace {

/// Simulate `deck` on `pes` processors and return the measured
/// per-iteration time plus the partition used (shared by both
/// validation flavors so measured values are identical for a given
/// configuration).
struct Measurement {
  double time = 0.0;
  std::shared_ptr<const PartitionedDeck> partitioned;
};

Measurement measure(const mesh::InputDeck& deck, std::int32_t pes,
                    const network::MachineConfig& machine,
                    const simapp::ComputationCostEngine& engine,
                    const ValidationConfig& config) {
  util::CancellationToken::check(config.cancel, "validation measurement");
  // The partition and its statistics come from the campaign-level cache
  // (docs/PERFORMANCE.md): runs sharing (deck, pes, seed) reuse one
  // deterministic computation instead of repeating the dominant cost.
  const std::shared_ptr<const PartitionedDeck> partitioned =
      PartitionCache::global().get(deck, pes,
                                   partition::PartitionMethod::kMultilevel,
                                   config.partition_seed,
                                   config.partition_threads, config.cancel);
  simapp::SimKrakOptions options;
  options.iterations = config.iterations;
  options.noise_seed = config.noise_seed;
  options.faults = config.faults;
  options.sim_threads = config.sim_threads;
  options.cancel = config.cancel;
  const simapp::SimKrak app(deck, partitioned->partition, machine, engine,
                            partitioned->stats, options);
  simapp::SimKrakResult result = app.run();
  // A measurement the watchdog had to cut short is not a measurement;
  // surface the structured cause so campaigns can record it per
  // scenario instead of aborting the sweep.
  if (result.failed()) throw sim::SimFailureError(result.failures.front());
  return Measurement{result.time_per_iteration, partitioned};
}

}  // namespace

ValidationPoint validate_mesh_specific(
    const mesh::InputDeck& deck, std::int32_t pes, const KrakModel& model,
    const simapp::ComputationCostEngine& engine,
    const ValidationConfig& config) {
  const Measurement m = measure(deck, pes, model.machine(), engine, config);
  ValidationPoint point;
  point.problem = deck.name();
  point.pes = pes;
  point.measured = m.time;
  point.predicted = model.predict_mesh_specific(*m.partitioned->stats).total();
  return point;
}

ValidationPoint validate_general(const mesh::InputDeck& deck, std::int32_t pes,
                                 const KrakModel& model, GeneralModelMode mode,
                                 const simapp::ComputationCostEngine& engine,
                                 const ValidationConfig& config) {
  const Measurement m = measure(deck, pes, model.machine(), engine, config);
  ValidationPoint point;
  point.problem = deck.name();
  point.pes = pes;
  point.measured = m.time;
  point.predicted =
      model.predict_general(deck.grid().num_cells(), pes, mode).total();
  return point;
}

}  // namespace krak::core
