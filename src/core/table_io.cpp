#include "core/table_io.hpp"

#include <fstream>
#include <iomanip>

#include "util/error.hpp"

namespace krak::core {

namespace {

constexpr std::string_view kMagic = "krakcosts";
constexpr int kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
  throw util::KrakError("malformed cost table: " + what);
}

}  // namespace

void write_cost_table(std::ostream& out, const CostTable& table) {
  out << kMagic << " " << kVersion << "\n";
  out << std::setprecision(17);
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (mesh::Material material : mesh::all_materials()) {
      const auto cells = table.sample_cells(phase, material);
      const auto costs = table.sample_costs(phase, material);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        out << "sample " << phase << " " << mesh::material_index(material)
            << " " << cells[i] << " " << costs[i] << "\n";
      }
    }
  }
  out << "end\n";
  if (!out) throw util::KrakError("write_cost_table: stream failure");
}

void save_cost_table(const std::string& path, const CostTable& table) {
  std::ofstream out(path);
  if (!out) {
    throw util::KrakError("save_cost_table: cannot open " + path + ": " +
                          util::errno_message());
  }
  write_cost_table(out, table);
}

CostTable read_cost_table(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != kMagic) malformed("bad magic '" + magic + "'");
  if (version != kVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  CostTable table;
  std::string key;
  bool saw_end = false;
  while (in >> key) {
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key != "sample") malformed("unknown key '" + key + "'");
    std::int32_t phase = 0;
    std::size_t material_index = 0;
    double cells = 0.0;
    double cost = 0.0;
    if (!(in >> phase >> material_index >> cells >> cost)) {
      malformed("truncated sample line");
    }
    if (phase < 1 || phase > simapp::kPhaseCount) {
      malformed("phase out of range: " + std::to_string(phase));
    }
    if (material_index >= mesh::kMaterialCount) {
      malformed("material index out of range: " +
                std::to_string(material_index));
    }
    if (cells <= 0.0) malformed("non-positive sample size");
    if (cost < 0.0) malformed("negative per-cell cost");
    table.add_sample(phase, mesh::material_from_index(material_index), cells,
                     cost);
  }
  if (!saw_end) malformed("missing 'end'");
  return table;
}

CostTable load_cost_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::KrakError("load_cost_table: cannot open " + path + ": " +
                          util::errno_message());
  }
  // Name the file in parse errors so a truncated table on disk is a
  // one-line diagnosis, not a hunt.
  try {
    return read_cost_table(in);
  } catch (const util::KrakError& error) {
    throw util::KrakError("load_cost_table: " + path + ": " + error.what());
  }
}

}  // namespace krak::core
