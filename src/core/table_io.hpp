#pragma once

#include <iosfwd>
#include <string>

#include "core/cost_table.hpp"

namespace krak::core {

/// Plain-text persistence for calibrated cost tables, so an expensive
/// calibration campaign can be reused across model runs:
///
///   krakcosts 1
///   sample <phase> <material-index> <cells> <per-cell-seconds>
///   ...
///   end
///
/// Doubles are written with enough digits to round-trip exactly.

void write_cost_table(std::ostream& out, const CostTable& table);
void save_cost_table(const std::string& path, const CostTable& table);

/// Throws KrakError on malformed input.
[[nodiscard]] CostTable read_cost_table(std::istream& in);
[[nodiscard]] CostTable load_cost_table(const std::string& path);

}  // namespace krak::core
