#include "core/optimizer.hpp"

#include "util/error.hpp"

namespace krak::core {

namespace {

std::int32_t resolve_max_pes(const KrakModel& model, std::int64_t total_cells,
                             std::int32_t max_pes) {
  std::int32_t limit =
      (max_pes > 0) ? max_pes : model.machine().total_pes();
  // No more processors than cells.
  if (total_cells < limit) limit = static_cast<std::int32_t>(total_cells);
  util::check(limit >= 1, "no valid processor counts to search");
  return limit;
}

Configuration evaluate(const KrakModel& model, std::int64_t total_cells,
                       std::int32_t pes, GeneralModelMode mode,
                       double serial_time) {
  Configuration config;
  config.pes = pes;
  config.iteration_time =
      model.predict_general(total_cells, pes, mode).total();
  config.speedup = serial_time / config.iteration_time;
  config.efficiency = config.speedup / static_cast<double>(pes);
  return config;
}

}  // namespace

Configuration find_fastest_configuration(const KrakModel& model,
                                         std::int64_t total_cells,
                                         GeneralModelMode mode,
                                         std::int32_t max_pes) {
  const std::int32_t limit = resolve_max_pes(model, total_cells, max_pes);
  const double serial =
      model.predict_general(total_cells, 1, mode).total();
  Configuration best = evaluate(model, total_cells, 1, mode, serial);
  for (std::int32_t pes = 2; pes <= limit; ++pes) {
    const Configuration candidate =
        evaluate(model, total_cells, pes, mode, serial);
    if (candidate.iteration_time < best.iteration_time) best = candidate;
  }
  return best;
}

Configuration find_efficiency_limit(const KrakModel& model,
                                    std::int64_t total_cells,
                                    double efficiency_target,
                                    GeneralModelMode mode,
                                    std::int32_t max_pes) {
  util::check(efficiency_target > 0.0 && efficiency_target <= 1.0,
              "efficiency target must be in (0, 1]");
  const std::int32_t limit = resolve_max_pes(model, total_cells, max_pes);
  const double serial =
      model.predict_general(total_cells, 1, mode).total();
  Configuration best = evaluate(model, total_cells, 1, mode, serial);
  // Efficiency is monotone non-increasing in practice but not by
  // construction (tree depths step at powers of two), so scan all.
  for (std::int32_t pes = 2; pes <= limit; ++pes) {
    const Configuration candidate =
        evaluate(model, total_cells, pes, mode, serial);
    if (candidate.efficiency >= efficiency_target && candidate.pes > best.pes) {
      best = candidate;
    }
  }
  return best;
}

double predict_time_to_solution(const KrakModel& model,
                                std::int64_t total_cells, std::int32_t pes,
                                std::int64_t iterations,
                                GeneralModelMode mode) {
  util::check(iterations >= 0, "iterations must be non-negative");
  return static_cast<double>(iterations) *
         model.predict_general(total_cells, pes, mode).total();
}

}  // namespace krak::core
