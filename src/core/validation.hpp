#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "fault/plan.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "simapp/costmodel.hpp"
#include "util/cancellation.hpp"

namespace krak::core {

/// One row of a validation table: a measured (SimKrak) iteration time
/// against a model prediction, with the paper's signed error convention
/// (measured - predicted) / measured.
struct ValidationPoint {
  std::string problem;
  std::int32_t pes = 0;
  double measured = 0.0;
  double predicted = 0.0;

  [[nodiscard]] double error() const {
    return (measured - predicted) / measured;
  }
};

/// Settings of a validation run.
struct ValidationConfig {
  std::uint64_t partition_seed = 1;
  std::uint64_t noise_seed = 42;
  std::int32_t iterations = 3;
  /// Worker threads for the multilevel partitioner's speculative
  /// parallel paths on a partition-cache miss. Never changes any
  /// measured or predicted value: the partition is bit-identical at
  /// every thread count.
  std::int32_t partition_threads = 1;
  /// Worker threads for the simulator's conservative parallel engine
  /// (sim::SimConfig::threads); <= 1 keeps the single-thread oracle.
  /// Like partition_threads this never changes a measured value: the
  /// parallel engine is bit-identical to the oracle.
  std::int32_t sim_threads = 1;
  /// Optional fault-injection plan applied to the SimKrak measurement.
  /// If the injected faults make the measurement fail (watchdog fires),
  /// the validate_* functions throw sim::SimFailureError carrying the
  /// first structured failure.
  fault::FaultPlan faults;
  /// Cooperative cancellation token (not owned; must outlive the run).
  /// Checked before partitioning, inside the partition cache, and at
  /// the simulator's event-loop checkpoints; an expired token surfaces
  /// as util::CancelledError or a kDeadline sim::SimFailureError
  /// instead of a hang. Null disables every checkpoint.
  const util::CancellationToken* cancel = nullptr;
};

/// Measure `deck` on `pes` processors with SimKrak (multilevel
/// partition) and predict it with the mesh-specific model (Table 5).
[[nodiscard]] ValidationPoint validate_mesh_specific(
    const mesh::InputDeck& deck, std::int32_t pes, const KrakModel& model,
    const simapp::ComputationCostEngine& engine,
    const ValidationConfig& config = {});

/// Measure with SimKrak and predict with the general model in the given
/// mode (Table 6 and Figure 5).
[[nodiscard]] ValidationPoint validate_general(
    const mesh::InputDeck& deck, std::int32_t pes, const KrakModel& model,
    GeneralModelMode mode, const simapp::ComputationCostEngine& engine,
    const ValidationConfig& config = {});

}  // namespace krak::core
