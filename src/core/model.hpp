#pragma once

#include <cstdint>

#include "core/cost_table.hpp"
#include "core/general_model.hpp"
#include "core/mesh_specific_model.hpp"
#include "core/report.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"

namespace krak::core {

/// Facade over the two model flavors: one calibrated cost table + one
/// machine description answer both mesh-specific and general queries.
///
/// Typical use:
///
///   auto table = core::calibrate_from_input(engine, deck, {16, 64, 256});
///   core::KrakModel model(table, network::make_es45_qsnet());
///   auto fast = model.predict_general(deck.grid().num_cells(), 512,
///                                     core::GeneralModelMode::kHomogeneous);
///   std::cout << fast.to_string();
class KrakModel {
 public:
  KrakModel(CostTable table, network::MachineConfig machine);

  /// General-model prediction (Section 3.2): no partition required,
  /// suitable for rapid scalability sweeps.
  [[nodiscard]] PredictionReport predict_general(std::int64_t total_cells,
                                                 std::int32_t pes,
                                                 GeneralModelMode mode) const;

  /// Mesh-specific prediction (Section 3.1) over a concrete partition.
  [[nodiscard]] PredictionReport predict_mesh_specific(
      const mesh::InputDeck& deck, const partition::Partition& part) const;

  /// Mesh-specific prediction when the statistics are already computed.
  [[nodiscard]] PredictionReport predict_mesh_specific(
      const partition::PartitionStats& stats) const;

  [[nodiscard]] const CostTable& cost_table() const;
  [[nodiscard]] const network::MachineConfig& machine() const;
  [[nodiscard]] const GeneralModel& general() const { return general_; }
  [[nodiscard]] const MeshSpecificModel& mesh_specific() const {
    return mesh_specific_;
  }

 private:
  GeneralModel general_;
  MeshSpecificModel mesh_specific_;
};

}  // namespace krak::core
