#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_table.hpp"
#include "mesh/deck.hpp"
#include "simapp/costmodel.hpp"

namespace krak::core {

/// Settings shared by the two calibration procedures of Section 3.1.
struct CalibrationConfig {
  /// Local subgrid sizes (cells per PE) at which to take samples. The
  /// default geometric ladder straddles the knee (~100 cells) with the
  /// same coarse spacing a real measurement campaign would use.
  std::vector<double> sample_sizes = {1,    4,     16,    64,     256,
                                      1024, 4096,  16384, 65536,  262144};
  /// Repeated measurements averaged per sample point.
  std::int32_t repetitions = 3;
  std::uint64_t seed = 2006;
};

/// Calibration Method 1 ("contrived spatial grid", Section 3.1):
///
/// A detonation requires high-explosive gas, so the contrived runs use
/// two processes — HE gas isolated on one, the material under test on
/// the other. Sweeping the subgrid size and timing each phase on the
/// second process yields per-cell costs by direct division, which are
/// entered as breakpoints of the piecewise-linear cost table.
[[nodiscard]] CostTable calibrate_contrived(
    const simapp::ComputationCostEngine& engine,
    const CalibrationConfig& config = {});

/// Calibration Method 2 ("actual input domain", Section 3.1):
///
/// For each processor of a real partition and each phase, one linear
/// equation relates the (noisy) measured phase time to the unknown
/// per-cell cost of each material:
///     sum_m n_{m,j} * x_m = T_{measured,j}
/// The non-negative least-squares solution over all processors gives
/// the per-cell costs at that run's cells-per-PE scale; repeating at
/// several processor counts builds the piecewise-linear table. This is
/// the method the paper uses for its validation results.
///
/// `pe_counts` are the processor counts of the calibration runs.
[[nodiscard]] CostTable calibrate_from_input(
    const simapp::ComputationCostEngine& engine, const mesh::InputDeck& deck,
    const std::vector<std::int32_t>& pe_counts,
    const CalibrationConfig& config = {});

}  // namespace krak::core
