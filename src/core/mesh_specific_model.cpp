#include "core/mesh_specific_model.hpp"

#include "core/comm_model.hpp"
#include "core/comp_model.hpp"
#include "network/collectives.hpp"
#include "util/error.hpp"

namespace krak::core {

MeshSpecificModel::MeshSpecificModel(CostTable table,
                                     network::MachineConfig machine)
    : table_(std::move(table)), machine_(std::move(machine)) {}

PredictionReport MeshSpecificModel::predict(
    const partition::PartitionStats& stats) const {
  util::check(stats.parts() <= machine_.total_pes(),
              "machine has too few processors");
  PredictionReport report;

  // Computation: Equations (1)-(3) over the real cell/material counts.
  report.phase_computation = per_phase_computation_times(table_, stats);
  for (auto& t : report.phase_computation) {
    t /= machine_.compute_speedup;
    report.computation += t;
  }

  // Point-to-point: Equations (5)-(7) over the real boundary statistics,
  // taking the slowest processor per component.
  const PointToPointBreakdown p2p =
      max_point_to_point(machine_.network, stats);
  report.boundary_exchange = p2p.boundary_exchange;
  report.ghost_updates = p2p.ghost_updates;

  // Collectives: Equations (8)-(10).
  const network::CollectiveModel collectives(machine_.network);
  report.broadcast = collectives.iteration_broadcast(stats.parts());
  report.allreduce = collectives.iteration_allreduce(stats.parts());
  report.gather = collectives.iteration_gather(stats.parts());

  return report;
}

}  // namespace krak::core
