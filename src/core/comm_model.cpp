#include "core/comm_model.hpp"

#include <algorithm>
#include <vector>

#include "simapp/phases.hpp"
#include "util/error.hpp"

namespace krak::core {

using simapp::kBoundaryAugmentedMessages;
using simapp::kBoundaryBytesPerFace;
using simapp::kBoundaryMessagesPerStep;

double boundary_exchange_time(const network::MessageCostModel& network,
                              std::span<const double> faces,
                              std::span<const double> multi_material_nodes) {
  util::check(faces.size() == multi_material_nodes.size(),
              "faces and multi-material node spans must match");
  double total_faces = 0.0;
  double time = 0.0;
  for (std::size_t i = 0; i < faces.size(); ++i) {
    const double f = faces[i];
    const double nodes = multi_material_nodes[i];
    util::check(f >= 0.0, "face counts must be non-negative");
    util::check(nodes >= 0.0, "ghost node counts must be non-negative");
    if (f == 0.0) continue;
    total_faces += f;
    const double base_bytes = kBoundaryBytesPerFace * f;
    const double augmented_bytes =
        base_bytes + kBoundaryBytesPerFace * nodes;
    time += kBoundaryAugmentedMessages * network.message_time(augmented_bytes);
    time += (kBoundaryMessagesPerStep - kBoundaryAugmentedMessages) *
            network.message_time(base_bytes);
  }
  if (total_faces > 0.0) {
    time += kBoundaryMessagesPerStep *
            network.message_time(kBoundaryBytesPerFace * total_faces);
  }
  return time;
}

double boundary_exchange_time(const network::MessageCostModel& network,
                              std::span<const double> faces) {
  const std::vector<double> zeros(faces.size(), 0.0);
  return boundary_exchange_time(network, faces, zeros);
}

double ghost_update_time(const network::MessageCostModel& network,
                         double bytes_per_node, double ghost_nodes_local,
                         double ghost_nodes_remote) {
  util::check(bytes_per_node >= 0.0 && ghost_nodes_local >= 0.0 &&
                  ghost_nodes_remote >= 0.0,
              "ghost update arguments must be non-negative");
  return network.message_time(bytes_per_node * ghost_nodes_local) +
         network.message_time(bytes_per_node * ghost_nodes_remote);
}

PointToPointBreakdown subdomain_point_to_point(
    const network::MessageCostModel& network,
    const partition::SubdomainInfo& sub, bool combine_aluminum,
    bool include_ghost_augmentation) {
  PointToPointBreakdown breakdown;
  for (const partition::NeighborBoundary& boundary : sub.neighbors) {
    std::vector<double> faces;
    std::vector<double> multi_nodes;
    if (combine_aluminum) {
      faces.assign(boundary.faces_per_group.begin(),
                   boundary.faces_per_group.end());
      multi_nodes.assign(boundary.multi_material_nodes_per_group.begin(),
                         boundary.multi_material_nodes_per_group.end());
    } else {
      // The un-combined variant treats the two aluminum layers as
      // distinct materials; their shared-face and node counts are split
      // evenly (the statistics only track the merged group).
      const double aluminum = static_cast<double>(boundary.faces_per_group[1]);
      const double al_nodes =
          static_cast<double>(boundary.multi_material_nodes_per_group[1]);
      faces = {static_cast<double>(boundary.faces_per_group[0]),
               aluminum / 2.0, aluminum / 2.0,
               static_cast<double>(boundary.faces_per_group[2])};
      multi_nodes = {
          static_cast<double>(boundary.multi_material_nodes_per_group[0]),
          al_nodes / 2.0, al_nodes / 2.0,
          static_cast<double>(boundary.multi_material_nodes_per_group[2])};
    }
    if (!include_ghost_augmentation) {
      std::fill(multi_nodes.begin(), multi_nodes.end(), 0.0);
    }
    breakdown.boundary_exchange +=
        boundary_exchange_time(network, faces, multi_nodes);

    // Ghost-node updates happen in phases 4 (8 bytes) and 5 and 7
    // (16 bytes each), Table 1.
    const auto local = static_cast<double>(boundary.ghost_nodes_local);
    const auto remote = static_cast<double>(boundary.ghost_nodes_remote);
    breakdown.ghost_updates += ghost_update_time(network, 8.0, local, remote);
    breakdown.ghost_updates +=
        2.0 * ghost_update_time(network, 16.0, local, remote);
  }
  return breakdown;
}

PointToPointBreakdown max_point_to_point(
    const network::MessageCostModel& network,
    const partition::PartitionStats& stats, bool combine_aluminum,
    bool include_ghost_augmentation) {
  PointToPointBreakdown max_breakdown;
  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    const PointToPointBreakdown b = subdomain_point_to_point(
        network, sub, combine_aluminum, include_ghost_augmentation);
    max_breakdown.boundary_exchange =
        std::max(max_breakdown.boundary_exchange, b.boundary_exchange);
    max_breakdown.ghost_updates =
        std::max(max_breakdown.ghost_updates, b.ghost_updates);
  }
  return max_breakdown;
}

}  // namespace krak::core
