#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/validation.hpp"

namespace krak::core {

/// Versioned write-ahead journal of a validation campaign
/// (docs/RESILIENCE.md, "Resumable campaigns").
///
/// One checksummed record per scenario state change, appended (and
/// synced) before the campaign acts on it, in the `krakjournal 1` text
/// format — one record per line:
///
///     krakjournal 1
///     running <fingerprint> <attempt> <checksum>
///     done <fingerprint> <attempt> <problem> <pes> <measured>
///         <predicted> <checksum>
///     failed <fingerprint> <attempt> <transient|deterministic>
///         <error> <checksum>
///     quarantined <fingerprint> <attempt> <error> <checksum>
///
/// `<fingerprint>` is the 16-hex-digit scenario fingerprint
/// (core::scenario_fingerprint); `<measured>` / `<predicted>` are the
/// IEEE-754 bit patterns of the doubles in 16 hex digits, so a replayed
/// ValidationPoint is bit-identical to the one originally measured;
/// `<error>` and `<problem>` are percent-escaped single tokens;
/// `<checksum>` is FNV-1a over everything before it on the line.
///
/// Loading replays every valid record into per-scenario histories and
/// truncates the file at the first invalid line (torn-tail recovery): a
/// crash mid-append — SIGKILL, power loss, full disk — costs at most
/// the record being written, never the journal. Appends go through one
/// O_APPEND write plus fsync per record, so the write-ahead contract
/// survives the same crashes it protects against.
///
/// Thread-safe: campaign workers append concurrently from the pool.
/// Counters are mirrored into the observability registry as
/// `journal.appends`, `journal.recovered_records`, and
/// `journal.recovered_torn_tail` (docs/OBSERVABILITY.md).
class CampaignJournal {
 public:
  /// Everything the journal knows about one scenario fingerprint.
  struct History {
    std::uint32_t attempts = 0;  ///< highest attempt number recorded
    std::uint32_t deterministic_failures = 0;
    std::uint32_t transient_failures = 0;
    /// A `running` record with no outcome yet — an attempt that was
    /// in flight when a previous process died. Not counted as a
    /// failure: the resumed campaign simply tries again.
    bool interrupted = false;
    bool done = false;
    bool quarantined = false;
    ValidationPoint point;   ///< valid when `done`
    std::string last_error;  ///< last failed/quarantined error text
    bool last_transient = false;  ///< class of the last failed record

    /// failures that count against a retry budget
    [[nodiscard]] std::uint32_t failures() const {
      return deterministic_failures + transient_failures;
    }
  };

  /// What loading an existing journal found.
  struct Recovery {
    std::size_t records = 0;    ///< valid records replayed
    std::size_t scenarios = 0;  ///< distinct fingerprints seen
    std::size_t completed = 0;  ///< scenarios in `done` state
    std::size_t quarantined = 0;
    bool torn_tail = false;          ///< file ended in an invalid record
    std::size_t dropped_bytes = 0;  ///< truncated by torn-tail recovery
  };

  /// Open (creating if absent) and recover the journal at `path`.
  /// Throws util::KrakError when the file exists but is not a
  /// `krakjournal 1` file — a wrong path must not be truncated into
  /// one — or when the file cannot be opened for appending.
  explicit CampaignJournal(std::filesystem::path path);
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  [[nodiscard]] const Recovery& recovery() const { return recovery_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Write-ahead marks, each appended and synced before returning.
  void record_running(std::uint64_t fingerprint, std::uint32_t attempt);
  void record_done(std::uint64_t fingerprint, std::uint32_t attempt,
                   const ValidationPoint& point);
  void record_failed(std::uint64_t fingerprint, std::uint32_t attempt,
                     bool transient, std::string_view error);
  void record_quarantined(std::uint64_t fingerprint, std::uint32_t attempt,
                          std::string_view error);

  /// The recovered-plus-appended history of `fingerprint`
  /// (default-constructed when the journal has never seen it).
  [[nodiscard]] History history(std::uint64_t fingerprint) const;

 private:
  struct Record;

  void write_raw(std::string_view data);
  void append(const Record& record);
  void apply(const Record& record);

  std::filesystem::path path_;
  Recovery recovery_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, History> histories_;
  int fd_ = -1;  ///< POSIX append descriptor (-1 on the fallback path)
};

/// Percent-escape `text` into a single whitespace-free journal token
/// ("" encodes as "%"); exposed for krak_analyze --journal and tests.
[[nodiscard]] std::string journal_escape(std::string_view text);

/// Inverse of journal_escape; nullopt on malformed input.
[[nodiscard]] std::optional<std::string> journal_unescape(
    std::string_view token);

/// FNV-1a-64 over `text`, the per-record integrity checksum embedded in
/// `krakjournal` files and checked by `krak_analyze --journal`.
[[nodiscard]] std::uint64_t journal_checksum(std::string_view text);

}  // namespace krak::core
