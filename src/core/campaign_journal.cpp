#include "core/campaign_journal.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <fstream>
#include <optional>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace krak::core {

namespace {

constexpr std::string_view kMagic = "krakjournal 1";

void bump_journal_counter(const char* name, std::int64_t count = 1) {
  if (!obs::enabled() || count == 0) return;
  obs::global_registry().counter(name).add(count);
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

template <typename T>
bool parse_value(std::string_view token, T& value, int base = 10) {
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), value, base);
  return result.ec == std::errc{} && result.ptr == token.data() + token.size();
}

/// Split `line` into whitespace-free tokens (single spaces separate
/// journal fields; empty fields cannot occur — journal_escape never
/// produces an empty token).
std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

}  // namespace

std::uint64_t journal_checksum(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string journal_escape(std::string_view text) {
  if (text.empty()) return "%";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '%' || c == ' ' || byte < 0x20 || byte == 0x7f) {
      out += '%';
      out += kDigits[byte >> 4];
      out += kDigits[byte & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::optional<std::string> journal_unescape(std::string_view token) {
  if (token == "%") return std::string();
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) return std::nullopt;
    std::uint32_t byte = 0;
    if (!parse_value(token.substr(i + 1, 2), byte, 16)) return std::nullopt;
    out += static_cast<char>(byte);
    i += 2;
  }
  return out;
}

struct CampaignJournal::Record {
  enum class Kind { kRunning, kDone, kFailed, kQuarantined };

  Kind kind = Kind::kRunning;
  std::uint64_t fingerprint = 0;
  std::uint32_t attempt = 0;
  bool transient = false;  ///< failed records: the failure class
  std::string error;       ///< failed / quarantined records
  ValidationPoint point;   ///< done records

  /// The line body (checksum excluded) exactly as serialized.
  [[nodiscard]] std::string body() const {
    std::string out;
    switch (kind) {
      case Kind::kRunning:
        out = "running";
        break;
      case Kind::kDone:
        out = "done";
        break;
      case Kind::kFailed:
        out = "failed";
        break;
      case Kind::kQuarantined:
        out = "quarantined";
        break;
    }
    out += ' ';
    out += hex16(fingerprint);
    out += ' ';
    out += std::to_string(attempt);
    switch (kind) {
      case Kind::kRunning:
        break;
      case Kind::kDone:
        out += ' ';
        out += journal_escape(point.problem);
        out += ' ';
        out += std::to_string(point.pes);
        out += ' ';
        out += hex16(std::bit_cast<std::uint64_t>(point.measured));
        out += ' ';
        out += hex16(std::bit_cast<std::uint64_t>(point.predicted));
        break;
      case Kind::kFailed:
        out += transient ? " transient " : " deterministic ";
        out += journal_escape(error);
        break;
      case Kind::kQuarantined:
        out += ' ';
        out += journal_escape(error);
        break;
    }
    return out;
  }

  /// Parse one full line (checksum included); nullopt on any violation.
  static std::optional<Record> parse(std::string_view line) {
    const std::vector<std::string_view> tokens = split_tokens(line);
    if (tokens.size() < 4) return std::nullopt;
    std::uint64_t checksum = 0;
    if (!parse_value(tokens.back(), checksum, 16) ||
        tokens.back().size() != 16) {
      return std::nullopt;
    }
    const std::size_t body_end = line.rfind(' ');
    if (body_end == std::string_view::npos) return std::nullopt;
    if (journal_checksum(line.substr(0, body_end)) != checksum) {
      return std::nullopt;
    }

    Record record;
    std::size_t expected = 0;
    if (tokens[0] == "running") {
      record.kind = Kind::kRunning;
      expected = 4;
    } else if (tokens[0] == "done") {
      record.kind = Kind::kDone;
      expected = 8;
    } else if (tokens[0] == "failed") {
      record.kind = Kind::kFailed;
      expected = 6;
    } else if (tokens[0] == "quarantined") {
      record.kind = Kind::kQuarantined;
      expected = 5;
    } else {
      return std::nullopt;
    }
    if (tokens.size() != expected) return std::nullopt;
    if (!parse_value(tokens[1], record.fingerprint, 16) ||
        tokens[1].size() != 16) {
      return std::nullopt;
    }
    if (!parse_value(tokens[2], record.attempt) || record.attempt == 0) {
      return std::nullopt;
    }
    switch (record.kind) {
      case Kind::kRunning:
        break;
      case Kind::kDone: {
        const std::optional<std::string> problem = journal_unescape(tokens[3]);
        if (!problem.has_value()) return std::nullopt;
        record.point.problem = *problem;
        if (!parse_value(tokens[4], record.point.pes) ||
            record.point.pes <= 0) {
          return std::nullopt;
        }
        std::uint64_t bits = 0;
        if (!parse_value(tokens[5], bits, 16)) return std::nullopt;
        record.point.measured = std::bit_cast<double>(bits);
        if (!parse_value(tokens[6], bits, 16)) return std::nullopt;
        record.point.predicted = std::bit_cast<double>(bits);
        break;
      }
      case Kind::kFailed: {
        if (tokens[3] == "transient") {
          record.transient = true;
        } else if (tokens[3] == "deterministic") {
          record.transient = false;
        } else {
          return std::nullopt;
        }
        const std::optional<std::string> error = journal_unescape(tokens[4]);
        if (!error.has_value()) return std::nullopt;
        record.error = *error;
        break;
      }
      case Kind::kQuarantined: {
        const std::optional<std::string> error = journal_unescape(tokens[3]);
        if (!error.has_value()) return std::nullopt;
        record.error = *error;
        break;
      }
    }
    return record;
  }
};

CampaignJournal::CampaignJournal(std::filesystem::path path)
    : path_(std::move(path)) {
  const std::filesystem::path parent = path_.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);

  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      text.resize(static_cast<std::size_t>(in.tellg()));
      in.seekg(0);
      in.read(text.data(), static_cast<std::streamsize>(text.size()));
    }
  }

  const bool fresh = text.empty();
  if (!fresh) {
    // An existing file must lead with the magic line: truncating an
    // arbitrary file the user mistyped into a journal would destroy it.
    const std::size_t eol = text.find('\n');
    if (eol == std::string::npos || text.substr(0, eol) != kMagic) {
      throw util::KrakError("not a krakjournal 1 file: " + path_.string());
    }
    // Replay records until the first invalid line, then truncate there:
    // a torn append (crash mid-write) costs exactly the torn record.
    std::size_t pos = eol + 1;
    while (pos < text.size()) {
      const std::size_t line_end = text.find('\n', pos);
      if (line_end == std::string::npos) break;  // partial line: torn
      const std::optional<Record> record =
          Record::parse(std::string_view(text).substr(pos, line_end - pos));
      if (!record.has_value()) break;
      apply(*record);
      ++recovery_.records;
      pos = line_end + 1;
    }
    if (pos < text.size()) {
      recovery_.torn_tail = true;
      recovery_.dropped_bytes = text.size() - pos;
      std::error_code ec;
      std::filesystem::resize_file(path_, pos, ec);
      if (ec) {
        throw util::KrakError("cannot truncate torn journal tail of " +
                              path_.string() + ": " + ec.message());
      }
    }
    recovery_.scenarios = histories_.size();
    for (const auto& [fingerprint, history] : histories_) {
      (void)fingerprint;
      if (history.done) ++recovery_.completed;
      if (history.quarantined) ++recovery_.quarantined;
    }
  }

  bump_journal_counter("journal.recovered_records",
                       static_cast<std::int64_t>(recovery_.records));
  if (recovery_.torn_tail) bump_journal_counter("journal.recovered_torn_tail");

#if !defined(_WIN32)
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw util::KrakError("cannot open journal " + path_.string() +
                          " for appending: " + util::errno_message());
  }
#endif
  if (fresh) {
    std::string header(kMagic);
    header += '\n';
    write_raw(header);
  }
}

CampaignJournal::~CampaignJournal() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
}

void CampaignJournal::write_raw(std::string_view data) {
#if defined(_WIN32)
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) {
    throw util::KrakError("cannot append to journal " + path_.string());
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    throw util::KrakError("short journal append to " + path_.string());
  }
#else
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::KrakError("short journal append to " + path_.string() +
                            ": " + util::errno_message());
    }
    written += static_cast<std::size_t>(n);
  }
  // The "write-ahead" half of the contract: the record must be durable
  // before the campaign acts on the state it describes, or a crash
  // could replay work the journal claims is done.
  if (::fsync(fd_) != 0) {
    throw util::KrakError("cannot sync journal " + path_.string() + ": " +
                          util::errno_message());
  }
#endif
}

void CampaignJournal::append(const Record& record) {
  std::string line = record.body();
  line += ' ';
  line += hex16(journal_checksum(line.substr(0, line.size() - 1)));
  line += '\n';
  const std::lock_guard<std::mutex> lock(mutex_);
  write_raw(line);
  apply(record);
  bump_journal_counter("journal.appends");
}

void CampaignJournal::apply(const Record& record) {
  History& history = histories_[record.fingerprint];
  history.attempts = std::max(history.attempts, record.attempt);
  switch (record.kind) {
    case Record::Kind::kRunning:
      history.interrupted = true;  // cleared by the attempt's outcome
      break;
    case Record::Kind::kDone:
      history.interrupted = false;
      history.done = true;
      history.point = record.point;
      break;
    case Record::Kind::kFailed:
      history.interrupted = false;
      if (record.transient) {
        ++history.transient_failures;
      } else {
        ++history.deterministic_failures;
      }
      history.last_error = record.error;
      history.last_transient = record.transient;
      break;
    case Record::Kind::kQuarantined:
      history.interrupted = false;
      history.quarantined = true;
      if (!record.error.empty()) history.last_error = record.error;
      break;
  }
}

void CampaignJournal::record_running(std::uint64_t fingerprint,
                                     std::uint32_t attempt) {
  Record record;
  record.kind = Record::Kind::kRunning;
  record.fingerprint = fingerprint;
  record.attempt = attempt;
  append(record);
}

void CampaignJournal::record_done(std::uint64_t fingerprint,
                                  std::uint32_t attempt,
                                  const ValidationPoint& point) {
  Record record;
  record.kind = Record::Kind::kDone;
  record.fingerprint = fingerprint;
  record.attempt = attempt;
  record.point = point;
  append(record);
}

void CampaignJournal::record_failed(std::uint64_t fingerprint,
                                    std::uint32_t attempt, bool transient,
                                    std::string_view error) {
  Record record;
  record.kind = Record::Kind::kFailed;
  record.fingerprint = fingerprint;
  record.attempt = attempt;
  record.transient = transient;
  record.error = std::string(error);
  append(record);
}

void CampaignJournal::record_quarantined(std::uint64_t fingerprint,
                                         std::uint32_t attempt,
                                         std::string_view error) {
  Record record;
  record.kind = Record::Kind::kQuarantined;
  record.fingerprint = fingerprint;
  record.attempt = attempt;
  record.error = std::string(error);
  append(record);
}

CampaignJournal::History CampaignJournal::history(
    std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histories_.find(fingerprint);
  if (it == histories_.end()) return History{};
  return it->second;
}

}  // namespace krak::core
