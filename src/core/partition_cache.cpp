#include "core/partition_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace krak::core {

namespace {

/// FNV-1a over the deck's full content, so the cache can never alias
/// two decks that merely share a name.
std::uint64_t fingerprint(const mesh::InputDeck& deck) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix_bytes = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ull;
    }
  };
  mix_bytes(deck.name().data(), deck.name().size());
  const std::int32_t nx = deck.grid().nx();
  const std::int32_t ny = deck.grid().ny();
  mix_bytes(&nx, sizeof(nx));
  mix_bytes(&ny, sizeof(ny));
  mix_bytes(deck.materials().data(),
            deck.materials().size() * sizeof(mesh::Material));
  const mesh::Point detonator = deck.detonator();
  mix_bytes(&detonator.x, sizeof(detonator.x));
  mix_bytes(&detonator.y, sizeof(detonator.y));
  return hash;
}

}  // namespace

std::shared_ptr<const PartitionedDeck> PartitionCache::get(
    const mesh::InputDeck& deck, std::int32_t pes,
    partition::PartitionMethod method, std::uint64_t seed) {
  const Key key{fingerprint(deck), pes, static_cast<std::int32_t>(method),
                seed};
  obs::Registry& registry = obs::global_registry();

  std::promise<std::shared_ptr<const PartitionedDeck>> promise;
  Future future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++counters_.hits;
      future = it->second;
    } else {
      ++counters_.misses;
      owner = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
    }
  }

  if (owner) {
    registry.counter("campaign.partition_cache.misses").add();
    try {
      partition::Partition part = partition::partition_deck(deck, pes, method,
                                                            seed);
      auto stats =
          std::make_shared<const partition::PartitionStats>(deck, part);
      promise.set_value(std::make_shared<const PartitionedDeck>(
          PartitionedDeck{std::move(part), std::move(stats)}));
    } catch (...) {
      // Propagate to every waiter, then evict so the configuration is
      // retried rather than permanently poisoned.
      promise.set_exception(std::current_exception());
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
      }
      throw;
    }
  } else {
    registry.counter("campaign.partition_cache.hits").add();
  }
  return future.get();
}

void PartitionCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

PartitionCache::Counters PartitionCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

PartitionCache& PartitionCache::global() {
  static PartitionCache cache;
  return cache;
}

}  // namespace krak::core
