#include "core/partition_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace krak::core {

std::shared_ptr<const PartitionedDeck> PartitionCache::get(
    const mesh::InputDeck& deck, std::int32_t pes,
    partition::PartitionMethod method, std::uint64_t seed,
    std::int32_t threads, const util::CancellationToken* cancel) {
  const std::uint64_t fingerprint = deck_fingerprint(deck);
  const Key key{fingerprint, pes, static_cast<std::int32_t>(method), seed};
  obs::Registry& registry = obs::global_registry();

  std::promise<std::shared_ptr<const PartitionedDeck>> promise;
  Future future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++counters_.hits;
      future = it->second;
    } else {
      ++counters_.misses;
      owner = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
    }
  }

  if (owner) {
    registry.counter("campaign.partition_cache.misses").add();
    try {
      // Last checkpoint before the dominant cost: partitioning a large
      // deck runs for seconds, so an already blown budget must not
      // start it. The catch below propagates the CancelledError to
      // every waiter and evicts the entry, so a retry recomputes.
      util::CancellationToken::check(cancel, "partition cache miss");
      const std::shared_ptr<PartitionStore> disk = store();
      const PartitionStore::Key store_key{fingerprint, pes, method, seed};
      std::optional<partition::Partition> loaded;
      if (disk != nullptr) loaded = disk->load(store_key);
      partition::Partition part =
          loaded.has_value()
              ? std::move(*loaded)
              : partition::partition_deck(deck, pes, method, seed, threads);
      if (disk != nullptr && !loaded.has_value()) {
        disk->save(store_key, part);
      }
      auto stats =
          std::make_shared<const partition::PartitionStats>(deck, part);
      promise.set_value(std::make_shared<const PartitionedDeck>(
          PartitionedDeck{std::move(part), std::move(stats)}));
    } catch (...) {
      // Propagate to every waiter, then evict so the configuration is
      // retried rather than permanently poisoned.
      promise.set_exception(std::current_exception());
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
      }
      throw;
    }
  } else {
    registry.counter("campaign.partition_cache.hits").add();
  }
  return future.get();
}

void PartitionCache::set_store(std::shared_ptr<PartitionStore> store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = std::move(store);
}

std::shared_ptr<PartitionStore> PartitionCache::store() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

void PartitionCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

PartitionCache::Counters PartitionCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

PartitionCache& PartitionCache::global() {
  static PartitionCache cache;
  return cache;
}

}  // namespace krak::core
