#include "core/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace krak::core {

std::string PredictionReport::to_string() const {
  std::ostringstream os;
  os << "Predicted iteration time: " << util::format_ms(total(), 3) << "\n";
  os << "  computation:   " << util::format_ms(computation, 3) << "\n";
  os << "  communication: " << util::format_ms(communication(), 3) << "\n";
  os << "    boundary exchange: " << util::format_ms(boundary_exchange, 3)
     << "\n";
  os << "    ghost updates:     " << util::format_ms(ghost_updates, 3) << "\n";
  os << "    broadcasts:        " << util::format_ms(broadcast, 3) << "\n";
  os << "    allreduces:        " << util::format_ms(allreduce, 3) << "\n";
  os << "    gathers:           " << util::format_ms(gather, 3) << "\n";
  return os.str();
}

}  // namespace krak::core
