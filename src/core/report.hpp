#pragma once

#include <array>
#include <string>

#include "simapp/costmodel.hpp"

namespace krak::core {

/// A full runtime prediction for one iteration, broken down the way the
/// paper builds it (Section 5: "the overall runtime is the summation of
/// the computation and communication components").
struct PredictionReport {
  /// Equation (3) total.
  double computation = 0.0;
  /// Equation (2) per phase.
  std::array<double, simapp::kPhaseCount> phase_computation{};

  // Communication components.
  double boundary_exchange = 0.0;  ///< Equation (5)
  double ghost_updates = 0.0;      ///< Equations (6)-(7)
  double broadcast = 0.0;          ///< Equation (8)
  double allreduce = 0.0;          ///< Equation (9)
  double gather = 0.0;             ///< Equation (10)

  [[nodiscard]] double communication() const {
    return boundary_exchange + ghost_updates + broadcast + allreduce + gather;
  }

  /// Computation does not overlap communication (Section 5 assumption).
  [[nodiscard]] double total() const { return computation + communication(); }

  /// Multi-line human-readable breakdown.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace krak::core
