#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"

namespace krak::core {

/// FNV-1a over a deck's full content (name, grid, material layout,
/// detonator), so stored partitions and cache entries can never alias
/// two decks that merely share a name.
[[nodiscard]] std::uint64_t deck_fingerprint(const mesh::InputDeck& deck);

/// FNV-1a over a partition assignment; the integrity checksum embedded
/// in `krakpart` files and checked by `krak_analyze --partition-store`.
[[nodiscard]] std::uint64_t partition_checksum(
    const std::vector<partition::PeId>& assignment);

/// Versioned on-disk store of partition assignments.
///
/// Campaigns repartition the same decks at the same PE counts on every
/// invocation; the store persists each result so a rerun skips the
/// partitioner entirely (docs/PERFORMANCE.md, "Partitioner"). One file
/// per configuration, named
/// `<fingerprint>-<pes>-<method>-<seed>.krakpart`, in the `krakpart 1`
/// text format:
///
///     krakpart 1
///     fingerprint <16 hex digits>
///     pes <P>
///     method <method name>
///     seed <decimal>
///     cells <N>
///     checksum <16 hex digits of partition_checksum>
///     offsets <P+1 monotone values; offsets[0]=0, offsets[P]=N>
///     part <p> <cells of part p, ascending>     (P lines)
///     end
///
/// Every load revalidates the file — magic and version, header/key
/// agreement, offset monotonicity, part bounds, exactly-once cell
/// coverage, and the checksum — and a file failing any check is deleted
/// and reported as a reject, so a corrupt or stale store heals itself
/// instead of poisoning runs. Counters are mirrored into the
/// observability registry as `partition_store.{hits,misses,rejects}`.
///
/// Thread-safe; writes go through a temp file plus rename so a crashed
/// run never leaves a half-written entry under a valid name.
class PartitionStore {
 public:
  /// Uses (and creates if needed) `directory` for the entry files.
  explicit PartitionStore(std::filesystem::path directory);

  struct Key {
    std::uint64_t fingerprint = 0;
    std::int32_t pes = 0;
    partition::PartitionMethod method = partition::PartitionMethod::kMultilevel;
    std::uint64_t seed = 1;
  };

  /// Load the stored partition of `key`; nullopt when absent or when
  /// the file fails validation (the file is then evicted).
  [[nodiscard]] std::optional<partition::Partition> load(const Key& key);

  /// Persist an assignment under `key`, replacing any existing entry.
  void save(const Key& key, const partition::Partition& partition);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejects = 0;
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

  /// File an entry of `key` lives at (exposed for tests and tooling).
  [[nodiscard]] std::filesystem::path entry_path(const Key& key) const;

 private:
  std::filesystem::path directory_;
  mutable std::mutex mutex_;
  Counters counters_;
};

}  // namespace krak::core
