#pragma once

#include <array>
#include <cstdint>

#include "core/cost_table.hpp"
#include "core/report.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"

namespace krak::core {

/// Material-composition assumption of the general model (Section 3.2,
/// Table 2).
enum class GeneralModelMode {
  /// Every subgrid contains the global material ratios. Accurate at
  /// small processor counts; over-predicts at large counts because it
  /// charges per-material boundary-exchange messages whose latency the
  /// real, homogeneous subgrids never pay (Section 5.2).
  kHeterogeneous,
  /// Every subgrid is single-material; each phase is charged for the
  /// most computationally taxing material. The accurate regime at large
  /// processor counts (within 3% at 512 PEs in the paper).
  kHomogeneous,
};

[[nodiscard]] std::string_view general_model_mode_name(GeneralModelMode mode);

/// The "general" Krak performance model of Section 3.2 / 4.
///
/// Instead of a real partition it assumes: equal square subgrids of
/// Cells/PEs cells, sqrt(Cells/PEs) faces per processor boundary, ghost
/// nodes = faces + 1 with half local and half remote, boundary faces
/// divided equally among the materials in use (heterogeneous) or a
/// single material per boundary (homogeneous).
class GeneralModel {
 public:
  /// `ratios` is the global material composition (Table 2's
  /// heterogeneous row); defaults to the paper's input deck ratios.
  GeneralModel(CostTable table, network::MachineConfig machine,
               std::array<double, mesh::kMaterialCount> ratios =
                   mesh::kPaperMaterialRatios);

  /// Predict one iteration of a `total_cells` problem on `pes`
  /// processors.
  [[nodiscard]] PredictionReport predict(std::int64_t total_cells,
                                         std::int32_t pes,
                                         GeneralModelMode mode) const;

  /// Subgrid boundary faces per neighbor under the square-subgrid
  /// assumption: sqrt(cells / pes).
  [[nodiscard]] static double boundary_faces(std::int64_t total_cells,
                                             std::int32_t pes);

  /// Number of neighbors each idealized square subgrid has.
  [[nodiscard]] std::int32_t neighbors_per_pe() const {
    return neighbors_per_pe_;
  }
  void set_neighbors_per_pe(std::int32_t neighbors);

  [[nodiscard]] const CostTable& cost_table() const { return table_; }
  [[nodiscard]] const network::MachineConfig& machine() const {
    return machine_;
  }

 private:
  [[nodiscard]] double phase_time_heterogeneous(std::int32_t phase,
                                                double cells_per_pe) const;
  [[nodiscard]] double phase_time_homogeneous(std::int32_t phase,
                                              double cells_per_pe) const;

  CostTable table_;
  network::MachineConfig machine_;
  std::array<double, mesh::kMaterialCount> ratios_;
  std::int32_t neighbors_per_pe_ = 4;
};

}  // namespace krak::core
