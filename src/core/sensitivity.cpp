#include "core/sensitivity.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace krak::core {

std::string SensitivityReport::dominant_parameter() const {
  const double l = std::abs(latency_sensitivity);
  const double b = std::abs(bandwidth_sensitivity);
  const double c = std::abs(compute_sensitivity);
  if (c >= l && c >= b) return "compute";
  if (l >= b) return "latency";
  return "bandwidth";
}

std::string SensitivityReport::to_string() const {
  std::ostringstream os;
  os << "Sensitivity at " << total_cells << " cells on " << pes
     << " PEs (baseline " << util::format_ms(base_time, 3) << ", +"
     << util::format_percent(delta, 0) << " perturbations):\n";
  os << "  network latency:  " << util::format_percent(latency_sensitivity)
     << "\n";
  os << "  per-byte cost:    " << util::format_percent(bandwidth_sensitivity)
     << "\n";
  os << "  compute slowdown: " << util::format_percent(compute_sensitivity)
     << "\n";
  os << "  dominant parameter: " << dominant_parameter() << "\n";
  return os.str();
}

SensitivityReport analyze_sensitivity(const KrakModel& model,
                                      std::int64_t total_cells,
                                      std::int32_t pes, GeneralModelMode mode,
                                      double delta) {
  util::check(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");

  SensitivityReport report;
  report.total_cells = total_cells;
  report.pes = pes;
  report.delta = delta;
  report.base_time = model.predict_general(total_cells, pes, mode).total();

  const auto evaluate_with = [&](const network::MachineConfig& machine) {
    const KrakModel perturbed(model.cost_table(), machine);
    return perturbed.predict_general(total_cells, pes, mode).total();
  };

  network::MachineConfig latency_machine = model.machine();
  latency_machine.network = latency_machine.network.scaled(1.0 + delta, 1.0);
  report.latency_sensitivity =
      evaluate_with(latency_machine) / report.base_time - 1.0;

  network::MachineConfig bandwidth_machine = model.machine();
  bandwidth_machine.network =
      bandwidth_machine.network.scaled(1.0, 1.0 + delta);
  report.bandwidth_sensitivity =
      evaluate_with(bandwidth_machine) / report.base_time - 1.0;

  network::MachineConfig compute_machine = model.machine();
  compute_machine.compute_speedup /= (1.0 + delta);
  report.compute_sensitivity =
      evaluate_with(compute_machine) / report.base_time - 1.0;

  return report;
}

}  // namespace krak::core
