#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/validation.hpp"

namespace krak::core {

/// One configuration of a validation campaign.
struct CampaignRun {
  mesh::DeckSize deck = mesh::DeckSize::kMedium;
  std::int32_t pes = 0;
  /// Which model flavor to validate against the measurement.
  enum class Flavor { kMeshSpecific, kGeneralHomogeneous, kGeneralHeterogeneous };
  Flavor flavor = Flavor::kGeneralHomogeneous;
};

/// Aggregate outcome of a campaign.
struct CampaignSummary {
  std::vector<ValidationPoint> points;  ///< one per run, in input order
  double worst_abs_error = 0.0;
  double mean_abs_error = 0.0;

  /// Observability (docs/OBSERVABILITY.md): wall time of the whole
  /// campaign, wall time of each run (input order, measured inside the
  /// pool), the worker count used, and how well the pool was kept busy:
  /// sum(run_wall_seconds) / (wall_seconds * threads_used), in (0, 1].
  double wall_seconds = 0.0;
  std::vector<double> run_wall_seconds;
  std::size_t threads_used = 0;
  double thread_utilization = 0.0;

  /// Render as the paper's validation-table layout.
  [[nodiscard]] std::string to_string() const;
};

/// Execute every run — partition, simulate, predict — in parallel over
/// a thread pool (each run is independent) and summarize. This is the
/// engine behind the Table 5/6 reproduction benches, exposed as API so
/// downstream users can validate their own recalibrations the same way.
[[nodiscard]] CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config = {},
    std::size_t threads = 0 /* 0 = hardware concurrency */);

/// The paper's Table 5 configuration set (small/medium x 16/64/128,
/// mesh-specific).
[[nodiscard]] std::vector<CampaignRun> table5_runs();

/// The paper's Table 6 configuration set (medium/large x 128/256/512,
/// general homogeneous).
[[nodiscard]] std::vector<CampaignRun> table6_runs();

}  // namespace krak::core
