#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign_journal.hpp"
#include "core/validation.hpp"
#include "sim/simulator.hpp"

namespace krak::core {

/// One configuration of a validation campaign.
struct CampaignRun {
  /// Which model flavor to validate against the measurement.
  enum class Flavor { kMeshSpecific, kGeneralHomogeneous, kGeneralHeterogeneous };

  CampaignRun() = default;
  CampaignRun(mesh::DeckSize deck_size, std::int32_t pe_count, Flavor f)
      : deck(deck_size), pes(pe_count), flavor(f) {}

  mesh::DeckSize deck = mesh::DeckSize::kMedium;
  std::int32_t pes = 0;
  Flavor flavor = Flavor::kGeneralHomogeneous;
  /// Per-run fault plan; when non-empty it replaces the campaign-wide
  /// ValidationConfig::faults for this scenario only.
  fault::FaultPlan faults;
};

/// Stable scenario label ("medium/128pe/mesh-specific") used in reports
/// and failure records.
[[nodiscard]] std::string campaign_run_name(const CampaignRun& run);

/// FNV-1a fingerprint identifying one scenario of one campaign across
/// process restarts: the campaign label, the run configuration (deck
/// size, PE count, flavor), every value-affecting ValidationConfig
/// field (seeds, iterations), and the effective fault plan. Thread
/// counts are excluded — they never change a measured value. This is
/// the key under which the campaign journal records scenario state.
[[nodiscard]] std::uint64_t scenario_fingerprint(std::string_view label,
                                                 const CampaignRun& run,
                                                 const ValidationConfig& config);

/// Resilience policy of a campaign (docs/RESILIENCE.md, "Resumable
/// campaigns"). The default policy is inert: one attempt, no journal,
/// no deadlines — a campaign run with it is bit-identical to one run
/// before the resilience layer existed.
struct CampaignPolicy {
  /// Attempts per scenario before its last failure is recorded;
  /// values < 1 behave as 1. Failed attempts recovered from the
  /// journal count against this budget; interrupted ones (a `running`
  /// record with no outcome — the process died mid-attempt) do not.
  std::uint32_t max_attempts = 1;
  /// Deterministic failures before a scenario is quarantined: recorded
  /// as poison in the journal and never re-run by resumed campaigns.
  std::uint32_t quarantine_after = 2;
  /// First retry delay; 0 retries immediately. Subsequent delays grow
  /// by `backoff_multiplier` up to `backoff_max_seconds`, each scaled
  /// by a jitter factor in [0.5, 1) drawn from a util::Rng stream
  /// seeded with `backoff_seed ^ fingerprint` — deterministic per
  /// scenario, decorrelated across scenarios.
  double backoff_initial_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 5.0;
  std::uint64_t backoff_seed = 0x6b72616bu;
  /// Wall budget of one attempt; <= 0 is unlimited. Expiry surfaces as
  /// a structured kDeadline / CancelledError failure (classified
  /// transient), never a hang.
  double scenario_deadline_seconds = 0.0;
  /// Wall budget of the whole campaign; <= 0 is unlimited. Once blown,
  /// in-flight attempts fail at their next checkpoint and nothing is
  /// retried; unstarted scenarios fail fast.
  double campaign_deadline_seconds = 0.0;
  /// Write-ahead journal (not owned; null disables journaling). With a
  /// journal, scenarios it records as done are replayed bit-identically
  /// instead of re-run, quarantined ones are skipped, and every state
  /// change is written ahead of the action it describes.
  CampaignJournal* journal = nullptr;
  /// Campaign label mixed into scenario fingerprints so one journal
  /// can serve several campaigns (e.g. "table5" and "table6") without
  /// aliasing scenarios that share a configuration.
  std::string label;
};

/// One scenario of a campaign that did not produce a measurement. The
/// campaign keeps sweeping the remaining scenarios (graceful
/// degradation); the failure is recorded here instead of aborting.
struct CampaignFailure {
  std::size_t run_index = 0;  ///< index into the campaign's run list
  std::string scenario;       ///< campaign_run_name of the failed run
  std::string error;          ///< human-readable cause (exception text)
  /// Structured simulator diagnosis, present when the failure was a
  /// sim::SimFailureError (watchdog-detected hang / lost message /
  /// time-limit breach) rather than a generic error.
  bool has_sim_failure = false;
  sim::SimFailure sim_failure;
  /// Attempts charged against CampaignPolicy::max_attempts, journal
  /// history included (0 only for never-run quarantine skips).
  std::uint32_t attempts = 0;
  /// Classification of the last failure: transient causes (deadline,
  /// cancellation, allocation pressure) are retried; deterministic
  /// ones (watchdog diagnoses, invalid input) count toward quarantine.
  bool transient = false;
  /// The scenario was quarantined as poison — either this campaign
  /// crossed CampaignPolicy::quarantine_after, or the journal already
  /// had it quarantined and it was skipped without running.
  bool quarantined = false;
};

/// Aggregate outcome of a campaign.
struct CampaignSummary {
  /// One per run, in input order. Entries at indices named by
  /// `failures` are default-constructed placeholders, excluded from the
  /// error aggregates below.
  std::vector<ValidationPoint> points;
  std::vector<CampaignFailure> failures;  ///< sorted by run_index
  double worst_abs_error = 0.0;
  double mean_abs_error = 0.0;

  [[nodiscard]] bool degraded() const { return !failures.empty(); }

  /// Observability (docs/OBSERVABILITY.md): wall time of the whole
  /// campaign, wall time of each run (input order, measured inside the
  /// pool), the worker count used, and how well the pool was kept busy:
  /// sum(run_wall_seconds) / (wall_seconds * threads_used), in (0, 1].
  double wall_seconds = 0.0;
  std::vector<double> run_wall_seconds;
  std::size_t threads_used = 0;
  double thread_utilization = 0.0;

  /// What the resilience policy did (docs/RESILIENCE.md); all zero
  /// under the default inert CampaignPolicy.
  struct ResilienceStats {
    std::uint64_t attempts = 0;   ///< attempts executed by this process
    std::uint64_t retries = 0;    ///< attempts beyond a scenario's first
    std::uint64_t replayed = 0;   ///< scenarios restored from the journal
    std::uint64_t quarantined = 0;  ///< scenarios poisoned (skips included)
    std::uint64_t deadline_failures = 0;  ///< deadline/cancel expiries seen
    double backoff_seconds = 0.0;         ///< total retry sleep
  };
  ResilienceStats resilience;

  /// Render as the paper's validation-table layout.
  [[nodiscard]] std::string to_string() const;
};

/// Execute every run — partition, simulate, predict — in parallel over
/// a thread pool (each run is independent) and summarize. This is the
/// engine behind the Table 5/6 reproduction benches, exposed as API so
/// downstream users can validate their own recalibrations the same way.
/// `policy` adds the resilience layer — journaled resume, bounded
/// retry with backoff, poison-scenario quarantine, and wall deadlines;
/// its default is inert, leaving results bit-identical to the
/// policy-free engine.
[[nodiscard]] CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config = {},
    std::size_t threads = 0 /* 0 = hardware concurrency */,
    const CampaignPolicy& policy = {});

/// The paper's Table 5 configuration set (small/medium x 16/64/128,
/// mesh-specific).
[[nodiscard]] std::vector<CampaignRun> table5_runs();

/// The paper's Table 6 configuration set (medium/large x 128/256/512,
/// general homogeneous).
[[nodiscard]] std::vector<CampaignRun> table6_runs();

}  // namespace krak::core
