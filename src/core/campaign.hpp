#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/validation.hpp"
#include "sim/simulator.hpp"

namespace krak::core {

/// One configuration of a validation campaign.
struct CampaignRun {
  /// Which model flavor to validate against the measurement.
  enum class Flavor { kMeshSpecific, kGeneralHomogeneous, kGeneralHeterogeneous };

  CampaignRun() = default;
  CampaignRun(mesh::DeckSize deck_size, std::int32_t pe_count, Flavor f)
      : deck(deck_size), pes(pe_count), flavor(f) {}

  mesh::DeckSize deck = mesh::DeckSize::kMedium;
  std::int32_t pes = 0;
  Flavor flavor = Flavor::kGeneralHomogeneous;
  /// Per-run fault plan; when non-empty it replaces the campaign-wide
  /// ValidationConfig::faults for this scenario only.
  fault::FaultPlan faults;
};

/// Stable scenario label ("medium/128pe/mesh-specific") used in reports
/// and failure records.
[[nodiscard]] std::string campaign_run_name(const CampaignRun& run);

/// One scenario of a campaign that did not produce a measurement. The
/// campaign keeps sweeping the remaining scenarios (graceful
/// degradation); the failure is recorded here instead of aborting.
struct CampaignFailure {
  std::size_t run_index = 0;  ///< index into the campaign's run list
  std::string scenario;       ///< campaign_run_name of the failed run
  std::string error;          ///< human-readable cause (exception text)
  /// Structured simulator diagnosis, present when the failure was a
  /// sim::SimFailureError (watchdog-detected hang / lost message /
  /// time-limit breach) rather than a generic error.
  bool has_sim_failure = false;
  sim::SimFailure sim_failure;
};

/// Aggregate outcome of a campaign.
struct CampaignSummary {
  /// One per run, in input order. Entries at indices named by
  /// `failures` are default-constructed placeholders, excluded from the
  /// error aggregates below.
  std::vector<ValidationPoint> points;
  std::vector<CampaignFailure> failures;  ///< sorted by run_index
  double worst_abs_error = 0.0;
  double mean_abs_error = 0.0;

  [[nodiscard]] bool degraded() const { return !failures.empty(); }

  /// Observability (docs/OBSERVABILITY.md): wall time of the whole
  /// campaign, wall time of each run (input order, measured inside the
  /// pool), the worker count used, and how well the pool was kept busy:
  /// sum(run_wall_seconds) / (wall_seconds * threads_used), in (0, 1].
  double wall_seconds = 0.0;
  std::vector<double> run_wall_seconds;
  std::size_t threads_used = 0;
  double thread_utilization = 0.0;

  /// Render as the paper's validation-table layout.
  [[nodiscard]] std::string to_string() const;
};

/// Execute every run — partition, simulate, predict — in parallel over
/// a thread pool (each run is independent) and summarize. This is the
/// engine behind the Table 5/6 reproduction benches, exposed as API so
/// downstream users can validate their own recalibrations the same way.
[[nodiscard]] CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config = {},
    std::size_t threads = 0 /* 0 = hardware concurrency */);

/// The paper's Table 5 configuration set (small/medium x 16/64/128,
/// mesh-specific).
[[nodiscard]] std::vector<CampaignRun> table5_runs();

/// The paper's Table 6 configuration set (medium/large x 128/256/512,
/// general homogeneous).
[[nodiscard]] std::vector<CampaignRun> table6_runs();

}  // namespace krak::core
