#include "core/comp_model.hpp"

#include <algorithm>

namespace krak::core {

double phase_computation_time(const CostTable& table, std::int32_t phase,
                              const partition::PartitionStats& stats) {
  double max_time = 0.0;
  for (const partition::SubdomainInfo& sub : stats.subdomains()) {
    const double t = table.subgrid_time(
        phase, std::span<const std::int64_t, mesh::kMaterialCount>(
                   sub.cells_per_material));
    max_time = std::max(max_time, t);
  }
  return max_time;
}

std::array<double, simapp::kPhaseCount> per_phase_computation_times(
    const CostTable& table, const partition::PartitionStats& stats) {
  std::array<double, simapp::kPhaseCount> times{};
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    times[static_cast<std::size_t>(phase - 1)] =
        phase_computation_time(table, phase, stats);
  }
  return times;
}

double iteration_computation_time(const CostTable& table,
                                  const partition::PartitionStats& stats) {
  const auto times = per_phase_computation_times(table, stats);
  double total = 0.0;
  for (double t : times) total += t;
  return total;
}

}  // namespace krak::core
