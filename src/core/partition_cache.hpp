#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/partition_store.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"
#include "util/cancellation.hpp"

namespace krak::core {

/// A partition plus the per-PE statistics derived from it, computed
/// once per (deck, pes, method, seed) configuration and shared by every
/// campaign run that needs it.
struct PartitionedDeck {
  partition::Partition partition;
  std::shared_ptr<const partition::PartitionStats> stats;
};

/// Campaign-level memoization of the multilevel partitioner.
///
/// Partitioning dominates a validation campaign's wall time (see
/// docs/PERFORMANCE.md), and the Table 5 / Table 6 / replay sweeps
/// repeat configurations — the same deck partitioned over the same PE
/// count with the same seed. The cache keys on a content fingerprint of
/// the deck (name, grid, material layout, detonator) plus (pes, method,
/// seed), so two decks that merely share a name cannot alias.
///
/// Thread-safe: campaign runs execute on a thread pool, and concurrent
/// requests for the same key block on one shared computation instead of
/// duplicating it. Hit/miss totals are mirrored into the observability
/// registry as `campaign.partition_cache.hits` / `.misses`.
class PartitionCache {
 public:
  /// Return the cached (partition, stats) of the configuration,
  /// computing and inserting it on first use. Never returns null.
  /// `threads` only affects how fast a miss is computed — the result is
  /// bit-identical at every value (see partition_multilevel) and is
  /// deliberately not part of the cache key. An expired `cancel` token
  /// makes a miss throw util::CancelledError before partitioning (the
  /// entry is then evicted so a later request retries); hits are always
  /// served — a finished partition costs nothing to hand out.
  [[nodiscard]] std::shared_ptr<const PartitionedDeck> get(
      const mesh::InputDeck& deck, std::int32_t pes,
      partition::PartitionMethod method, std::uint64_t seed,
      std::int32_t threads = 1,
      const util::CancellationToken* cancel = nullptr);

  /// Attach a persistent on-disk store (nullptr detaches). Misses then
  /// consult the store before partitioning, and freshly computed
  /// partitions are written back, so a rerun against the same store
  /// directory skips every partition computation.
  void set_store(std::shared_ptr<PartitionStore> store);
  [[nodiscard]] std::shared_ptr<PartitionStore> store() const;

  /// Drop every entry (test isolation; counters are kept).
  void clear();

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// The process-wide instance used by campaigns and benches.
  static PartitionCache& global();

 private:
  using Key = std::tuple<std::uint64_t /* deck fingerprint */,
                         std::int32_t /* pes */, std::int32_t /* method */,
                         std::uint64_t /* seed */>;
  using Future = std::shared_future<std::shared_ptr<const PartitionedDeck>>;

  mutable std::mutex mutex_;
  std::map<Key, Future> entries_;
  Counters counters_;
  std::shared_ptr<PartitionStore> store_;
};

}  // namespace krak::core
