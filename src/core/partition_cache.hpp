#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"

namespace krak::core {

/// A partition plus the per-PE statistics derived from it, computed
/// once per (deck, pes, method, seed) configuration and shared by every
/// campaign run that needs it.
struct PartitionedDeck {
  partition::Partition partition;
  std::shared_ptr<const partition::PartitionStats> stats;
};

/// Campaign-level memoization of the multilevel partitioner.
///
/// Partitioning dominates a validation campaign's wall time (see
/// docs/PERFORMANCE.md), and the Table 5 / Table 6 / replay sweeps
/// repeat configurations — the same deck partitioned over the same PE
/// count with the same seed. The cache keys on a content fingerprint of
/// the deck (name, grid, material layout, detonator) plus (pes, method,
/// seed), so two decks that merely share a name cannot alias.
///
/// Thread-safe: campaign runs execute on a thread pool, and concurrent
/// requests for the same key block on one shared computation instead of
/// duplicating it. Hit/miss totals are mirrored into the observability
/// registry as `campaign.partition_cache.hits` / `.misses`.
class PartitionCache {
 public:
  /// Return the cached (partition, stats) of the configuration,
  /// computing and inserting it on first use. Never returns null.
  [[nodiscard]] std::shared_ptr<const PartitionedDeck> get(
      const mesh::InputDeck& deck, std::int32_t pes,
      partition::PartitionMethod method, std::uint64_t seed);

  /// Drop every entry (test isolation; counters are kept).
  void clear();

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// The process-wide instance used by campaigns and benches.
  static PartitionCache& global();

 private:
  using Key = std::tuple<std::uint64_t /* deck fingerprint */,
                         std::int32_t /* pes */, std::int32_t /* method */,
                         std::uint64_t /* seed */>;
  using Future = std::shared_future<std::shared_ptr<const PartitionedDeck>>;

  mutable std::mutex mutex_;
  std::map<Key, Future> entries_;
  Counters counters_;
};

}  // namespace krak::core
