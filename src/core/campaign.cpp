#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <new>
#include <set>
#include <sstream>
#include <thread>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace krak::core {

std::string campaign_run_name(const CampaignRun& run) {
  std::string flavor;
  switch (run.flavor) {
    case CampaignRun::Flavor::kMeshSpecific:
      flavor = "mesh-specific";
      break;
    case CampaignRun::Flavor::kGeneralHomogeneous:
      flavor = "general-homogeneous";
      break;
    case CampaignRun::Flavor::kGeneralHeterogeneous:
      flavor = "general-heterogeneous";
      break;
  }
  return std::string(mesh::deck_size_name(run.deck)) + "/" +
         std::to_string(run.pes) + "pe/" + flavor;
}

std::uint64_t scenario_fingerprint(std::string_view label,
                                   const CampaignRun& run,
                                   const ValidationConfig& config) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix_bytes = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ull;
    }
  };
  const auto mix_string = [&mix_bytes](std::string_view text) {
    // Length-prefixed so "ab"+"c" can never alias "a"+"bc".
    const std::uint64_t size = text.size();
    mix_bytes(&size, sizeof(size));
    mix_bytes(text.data(), text.size());
  };
  mix_string(label);
  mix_string(mesh::deck_size_name(run.deck));
  mix_bytes(&run.pes, sizeof(run.pes));
  const std::int32_t flavor = static_cast<std::int32_t>(run.flavor);
  mix_bytes(&flavor, sizeof(flavor));
  mix_bytes(&config.partition_seed, sizeof(config.partition_seed));
  mix_bytes(&config.noise_seed, sizeof(config.noise_seed));
  mix_bytes(&config.iterations, sizeof(config.iterations));
  // The effective fault plan: the per-run override when present,
  // hashed through its canonical text serialization.
  const fault::FaultPlan& faults =
      run.faults.empty() ? config.faults : run.faults;
  std::ostringstream plan_text;
  fault::write_fault_plan(plan_text, faults);
  mix_string(plan_text.str());
  return hash;
}

namespace {

/// Classify a scenario failure for the retry policy. Transient causes
/// — blown wall budgets, explicit cancellation, allocation pressure —
/// depend on machine state and deserve another attempt; deterministic
/// ones — watchdog diagnoses (same seed, same hang), precondition and
/// invariant violations — will recur bit-identically and count toward
/// quarantine. Unknown exception types get the benefit of the doubt.
bool is_transient_failure(const std::exception& error) {
  if (dynamic_cast<const util::CancelledError*>(&error) != nullptr) {
    return true;
  }
  if (const auto* sim_error =
          dynamic_cast<const sim::SimFailureError*>(&error)) {
    return sim_error->failure().kind == sim::SimFailure::Kind::kDeadline;
  }
  if (dynamic_cast<const util::KrakError*>(&error) != nullptr) return false;
  return true;  // bad_alloc, system_error, anything else unclassified
}

bool is_deadline_failure(const std::exception& error) {
  if (dynamic_cast<const util::CancelledError*>(&error) != nullptr) {
    return true;
  }
  const auto* sim_error = dynamic_cast<const sim::SimFailureError*>(&error);
  return sim_error != nullptr &&
         sim_error->failure().kind == sim::SimFailure::Kind::kDeadline;
}

}  // namespace

std::string CampaignSummary::to_string() const {
  std::set<std::size_t> failed;
  for (const CampaignFailure& failure : failures) {
    failed.insert(failure.run_index);
  }
  util::TextTable table(
      {"Problem", "PE Count", "Meas. (ms)", "Pred. (ms)", "Error"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ValidationPoint& point = points[i];
    if (failed.count(i) != 0) continue;
    table.add_row({point.problem, std::to_string(point.pes),
                   util::format_double(point.measured * 1e3, 1),
                   util::format_double(point.predicted * 1e3, 1),
                   util::format_percent(point.error())});
  }
  std::ostringstream os;
  os << table.to_string();
  os << "worst |error| " << util::format_percent(worst_abs_error)
     << ", mean |error| " << util::format_percent(mean_abs_error) << "\n";
  for (const CampaignFailure& failure : failures) {
    os << "FAILED " << failure.scenario << ": " << failure.error << "\n";
  }
  return os.str();
}

CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config,
    std::size_t threads, const CampaignPolicy& policy) {
  util::check(!runs.empty(), "campaign needs at least one run");
  CampaignSummary summary;
  summary.points.resize(runs.size());
  summary.run_wall_seconds.assign(runs.size(), 0.0);

  obs::Timer& run_timer = obs::global_registry().timer("campaign.run");
  obs::Timer& campaign_timer = obs::global_registry().timer("campaign.total");
  obs::Counter& failure_counter =
      obs::global_registry().counter("campaign.failures");
  obs::Counter& retry_counter =
      obs::global_registry().counter("campaign.retries");
  obs::Counter& quarantine_counter =
      obs::global_registry().counter("campaign.quarantined");
  obs::Counter& resumed_counter =
      obs::global_registry().counter("campaign.resumed");
  obs::Counter& deadline_counter =
      obs::global_registry().counter("campaign.deadline_failures");

  // Campaign-wide cancellation: the policy's campaign deadline, chained
  // to any caller-provided token so either source can trip it. Without
  // either, no token is installed anywhere and every run takes the
  // checkpoint-free (bit-identical, pre-resilience) code paths.
  util::CancellationToken campaign_token;
  campaign_token.set_parent(config.cancel);
  if (policy.campaign_deadline_seconds > 0.0) {
    campaign_token.arm_deadline(policy.campaign_deadline_seconds);
  }
  const bool campaign_guarded =
      policy.campaign_deadline_seconds > 0.0 || config.cancel != nullptr;
  const bool scenario_guarded =
      campaign_guarded || policy.scenario_deadline_seconds > 0.0;

  const std::uint32_t max_attempts = std::max<std::uint32_t>(
      1, policy.max_attempts);
  const std::uint32_t quarantine_after = std::max<std::uint32_t>(
      1, policy.quarantine_after);

  std::mutex summary_mutex;  // guards failures + resilience counters
  const auto run_one = [&](std::size_t i) {
    const util::Stopwatch run_watch;
    const CampaignRun& run = runs[i];
    // One scenario failing must not take down the sweep: record the
    // cause (structured when the simulator diagnosed it) and move on.
    // The catches live inside the worker lambda because the pool
    // propagates uncaught worker exceptions to the caller; only a
    // journal append failing escapes — a campaign that cannot keep its
    // write-ahead promises must stop, not silently lose durability.
    const std::uint64_t fingerprint =
        policy.journal != nullptr
            ? scenario_fingerprint(policy.label, run, config)
            : 0;
    CampaignJournal::History history;
    if (policy.journal != nullptr) {
      history = policy.journal->history(fingerprint);
    }

    CampaignFailure failure;
    failure.run_index = i;
    failure.scenario = campaign_run_name(run);
    bool failed = false;

    if (history.done) {
      // Journal replay: bit-identical to the original measurement (the
      // journal stores the doubles' IEEE bit patterns), no re-run.
      summary.points[i] = history.point;
      {
        const std::lock_guard<std::mutex> lock(summary_mutex);
        ++summary.resilience.replayed;
      }
      resumed_counter.add();
    } else if (history.quarantined) {
      // Poison recorded by an earlier process: never re-run.
      failed = true;
      failure.error = history.last_error.empty() ? "quarantined by journal"
                                                 : history.last_error;
      failure.attempts = history.attempts;
      failure.quarantined = true;
      {
        const std::lock_guard<std::mutex> lock(summary_mutex);
        ++summary.resilience.quarantined;
      }
      quarantine_counter.add();
    } else if (history.deterministic_failures >= quarantine_after) {
      // The threshold was crossed but the quarantine record never
      // landed (crash between the two appends): finish the transition.
      failed = true;
      failure.error = history.last_error;
      failure.attempts = history.attempts;
      failure.quarantined = true;
      policy.journal->record_quarantined(fingerprint, history.attempts,
                                         history.last_error);
      {
        const std::lock_guard<std::mutex> lock(summary_mutex);
        ++summary.resilience.quarantined;
      }
      quarantine_counter.add();
    } else if (history.failures() >= max_attempts) {
      // Budget already exhausted by earlier processes: report the last
      // recorded cause instead of burning more attempts.
      failed = true;
      failure.error = history.last_error;
      failure.attempts = history.attempts;
      failure.transient = history.last_transient;
    } else {
      std::uint32_t attempt = history.attempts;
      std::uint32_t failures_seen = history.failures();
      std::uint32_t deterministic_seen = history.deterministic_failures;
      // Jitter stream: deterministic per scenario (policy seed mixed
      // with the fingerprint and run index), decorrelated across
      // scenarios so a sweep of retries does not thunder in lockstep.
      util::Rng backoff_rng(policy.backoff_seed ^ fingerprint ^
                            (0x9e3779b97f4a7c15ull *
                             static_cast<std::uint64_t>(i + 1)));
      bool first_local_attempt = true;
      while (true) {
        ++attempt;
        if (policy.journal != nullptr) {
          policy.journal->record_running(fingerprint, attempt);
        }
        {
          const std::lock_guard<std::mutex> lock(summary_mutex);
          ++summary.resilience.attempts;
          if (!first_local_attempt) ++summary.resilience.retries;
        }
        if (!first_local_attempt) retry_counter.add();
        first_local_attempt = false;

        util::CancellationToken scenario_token;
        scenario_token.set_parent(campaign_guarded ? &campaign_token
                                                   : nullptr);
        if (policy.scenario_deadline_seconds > 0.0) {
          scenario_token.arm_deadline(policy.scenario_deadline_seconds);
        }
        ValidationConfig run_config = config;
        if (!run.faults.empty()) run_config.faults = run.faults;
        run_config.cancel = scenario_guarded ? &scenario_token : nullptr;

        try {
          const mesh::InputDeck deck = mesh::make_standard_deck(run.deck);
          switch (run.flavor) {
            case CampaignRun::Flavor::kMeshSpecific:
              summary.points[i] = validate_mesh_specific(deck, run.pes, model,
                                                         engine, run_config);
              break;
            case CampaignRun::Flavor::kGeneralHomogeneous:
              summary.points[i] = validate_general(
                  deck, run.pes, model, GeneralModelMode::kHomogeneous, engine,
                  run_config);
              break;
            case CampaignRun::Flavor::kGeneralHeterogeneous:
              summary.points[i] = validate_general(
                  deck, run.pes, model, GeneralModelMode::kHeterogeneous,
                  engine, run_config);
              break;
          }
          if (policy.journal != nullptr) {
            policy.journal->record_done(fingerprint, attempt,
                                        summary.points[i]);
          }
          failed = false;
          break;
        } catch (const std::exception& error) {
          const bool transient = is_transient_failure(error);
          failed = true;
          failure.error = error.what();
          failure.attempts = attempt;
          failure.transient = transient;
          failure.has_sim_failure = false;
          if (const auto* sim_error =
                  dynamic_cast<const sim::SimFailureError*>(&error)) {
            failure.has_sim_failure = true;
            failure.sim_failure = sim_error->failure();
          }
          if (is_deadline_failure(error)) {
            deadline_counter.add();
            const std::lock_guard<std::mutex> lock(summary_mutex);
            ++summary.resilience.deadline_failures;
          }
          ++failures_seen;
          if (!transient) ++deterministic_seen;
          if (policy.journal != nullptr) {
            policy.journal->record_failed(fingerprint, attempt, transient,
                                          failure.error);
          }
          if (!transient && deterministic_seen >= quarantine_after) {
            failure.quarantined = true;
            if (policy.journal != nullptr) {
              policy.journal->record_quarantined(fingerprint, attempt,
                                                 failure.error);
            }
            {
              const std::lock_guard<std::mutex> lock(summary_mutex);
              ++summary.resilience.quarantined;
            }
            quarantine_counter.add();
            break;
          }
          if (failures_seen >= max_attempts) break;
          // A blown campaign budget leaves nothing to retry into.
          if (campaign_guarded && campaign_token.expired()) break;
          // Bounded deterministic exponential backoff before the retry.
          double delay = policy.backoff_initial_seconds;
          if (delay > 0.0) {
            delay *= std::pow(policy.backoff_multiplier,
                              static_cast<double>(failures_seen - 1));
            delay = std::min(delay, policy.backoff_max_seconds);
            delay *= 0.5 + 0.5 * backoff_rng.next_double();
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
            const std::lock_guard<std::mutex> lock(summary_mutex);
            summary.resilience.backoff_seconds += delay;
          }
        }
      }
    }

    if (failed) {
      const std::lock_guard<std::mutex> lock(summary_mutex);
      summary.failures.push_back(std::move(failure));
    }
    summary.run_wall_seconds[i] = run_watch.seconds();
    run_timer.record(summary.run_wall_seconds[i]);
  };

  const util::Stopwatch campaign_watch;
  util::ThreadPool pool(threads);
  summary.threads_used = std::min(runs.size(), pool.thread_count());
  // Grain 1: each run is seconds of work, so one run is the unit of
  // dynamic load balancing and the per-chunk dispatch cost is noise.
  pool.parallel_for_chunked(
      runs.size(), 1, [&run_one](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) run_one(i);
      });
  summary.wall_seconds = campaign_watch.seconds();
  campaign_timer.record(summary.wall_seconds);
  std::sort(summary.failures.begin(), summary.failures.end(),
            [](const CampaignFailure& a, const CampaignFailure& b) {
              return a.run_index < b.run_index;
            });
  failure_counter.add(static_cast<std::int64_t>(summary.failures.size()));

  double busy = 0.0;
  for (const double run_wall : summary.run_wall_seconds) busy += run_wall;
  if (summary.wall_seconds > 0.0 && summary.threads_used > 0) {
    summary.thread_utilization =
        std::min(1.0, busy / (summary.wall_seconds *
                              static_cast<double>(summary.threads_used)));
  }

  std::set<std::size_t> failed;
  for (const CampaignFailure& failure : summary.failures) {
    failed.insert(failure.run_index);
  }
  double sum = 0.0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    if (failed.count(i) != 0) continue;  // placeholder, no measurement
    const double error = std::abs(summary.points[i].error());
    summary.worst_abs_error = std::max(summary.worst_abs_error, error);
    sum += error;
    ++measured;
  }
  if (measured > 0) sum /= static_cast<double>(measured);
  summary.mean_abs_error = sum;
  return summary;
}

std::vector<CampaignRun> table5_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium}) {
    for (std::int32_t pes : {16, 64, 128}) {
      CampaignRun run;
      run.deck = deck;
      run.pes = pes;
      run.flavor = CampaignRun::Flavor::kMeshSpecific;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

std::vector<CampaignRun> table6_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kMedium, mesh::DeckSize::kLarge}) {
    for (std::int32_t pes : {128, 256, 512}) {
      CampaignRun run;
      run.deck = deck;
      run.pes = pes;
      run.flavor = CampaignRun::Flavor::kGeneralHomogeneous;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

}  // namespace krak::core
