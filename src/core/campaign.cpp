#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace krak::core {

std::string CampaignSummary::to_string() const {
  util::TextTable table(
      {"Problem", "PE Count", "Meas. (ms)", "Pred. (ms)", "Error"});
  for (const ValidationPoint& point : points) {
    table.add_row({point.problem, std::to_string(point.pes),
                   util::format_double(point.measured * 1e3, 1),
                   util::format_double(point.predicted * 1e3, 1),
                   util::format_percent(point.error())});
  }
  std::ostringstream os;
  os << table.to_string();
  os << "worst |error| " << util::format_percent(worst_abs_error)
     << ", mean |error| " << util::format_percent(mean_abs_error) << "\n";
  return os.str();
}

CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config,
    std::size_t threads) {
  util::check(!runs.empty(), "campaign needs at least one run");
  CampaignSummary summary;
  summary.points.resize(runs.size());
  summary.run_wall_seconds.assign(runs.size(), 0.0);

  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  obs::Timer& run_timer = obs::global_registry().timer("campaign.run");
  obs::Timer& campaign_timer = obs::global_registry().timer("campaign.total");

  const auto campaign_start = Clock::now();
  util::ThreadPool pool(threads);
  summary.threads_used = std::min(runs.size(), pool.thread_count());
  pool.parallel_for(runs.size(), [&](std::size_t i) {
    const auto run_start = Clock::now();
    const CampaignRun& run = runs[i];
    const mesh::InputDeck deck = mesh::make_standard_deck(run.deck);
    switch (run.flavor) {
      case CampaignRun::Flavor::kMeshSpecific:
        summary.points[i] =
            validate_mesh_specific(deck, run.pes, model, engine, config);
        break;
      case CampaignRun::Flavor::kGeneralHomogeneous:
        summary.points[i] =
            validate_general(deck, run.pes, model,
                             GeneralModelMode::kHomogeneous, engine, config);
        break;
      case CampaignRun::Flavor::kGeneralHeterogeneous:
        summary.points[i] =
            validate_general(deck, run.pes, model,
                             GeneralModelMode::kHeterogeneous, engine, config);
        break;
    }
    summary.run_wall_seconds[i] = seconds_since(run_start);
    run_timer.record(summary.run_wall_seconds[i]);
  });
  summary.wall_seconds = seconds_since(campaign_start);
  campaign_timer.record(summary.wall_seconds);

  double busy = 0.0;
  for (const double run_wall : summary.run_wall_seconds) busy += run_wall;
  if (summary.wall_seconds > 0.0 && summary.threads_used > 0) {
    summary.thread_utilization =
        std::min(1.0, busy / (summary.wall_seconds *
                              static_cast<double>(summary.threads_used)));
  }

  double sum = 0.0;
  for (const ValidationPoint& point : summary.points) {
    const double error = std::abs(point.error());
    summary.worst_abs_error = std::max(summary.worst_abs_error, error);
    sum += error;
  }
  summary.mean_abs_error = sum / static_cast<double>(summary.points.size());
  return summary;
}

std::vector<CampaignRun> table5_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium}) {
    for (std::int32_t pes : {16, 64, 128}) {
      runs.push_back({deck, pes, CampaignRun::Flavor::kMeshSpecific});
    }
  }
  return runs;
}

std::vector<CampaignRun> table6_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kMedium, mesh::DeckSize::kLarge}) {
    for (std::int32_t pes : {128, 256, 512}) {
      runs.push_back({deck, pes, CampaignRun::Flavor::kGeneralHomogeneous});
    }
  }
  return runs;
}

}  // namespace krak::core
