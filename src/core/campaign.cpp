#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace krak::core {

std::string campaign_run_name(const CampaignRun& run) {
  std::string flavor;
  switch (run.flavor) {
    case CampaignRun::Flavor::kMeshSpecific:
      flavor = "mesh-specific";
      break;
    case CampaignRun::Flavor::kGeneralHomogeneous:
      flavor = "general-homogeneous";
      break;
    case CampaignRun::Flavor::kGeneralHeterogeneous:
      flavor = "general-heterogeneous";
      break;
  }
  return std::string(mesh::deck_size_name(run.deck)) + "/" +
         std::to_string(run.pes) + "pe/" + flavor;
}

std::string CampaignSummary::to_string() const {
  std::set<std::size_t> failed;
  for (const CampaignFailure& failure : failures) {
    failed.insert(failure.run_index);
  }
  util::TextTable table(
      {"Problem", "PE Count", "Meas. (ms)", "Pred. (ms)", "Error"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ValidationPoint& point = points[i];
    if (failed.count(i) != 0) continue;
    table.add_row({point.problem, std::to_string(point.pes),
                   util::format_double(point.measured * 1e3, 1),
                   util::format_double(point.predicted * 1e3, 1),
                   util::format_percent(point.error())});
  }
  std::ostringstream os;
  os << table.to_string();
  os << "worst |error| " << util::format_percent(worst_abs_error)
     << ", mean |error| " << util::format_percent(mean_abs_error) << "\n";
  for (const CampaignFailure& failure : failures) {
    os << "FAILED " << failure.scenario << ": " << failure.error << "\n";
  }
  return os.str();
}

CampaignSummary run_validation_campaign(
    const KrakModel& model, const simapp::ComputationCostEngine& engine,
    const std::vector<CampaignRun>& runs, const ValidationConfig& config,
    std::size_t threads) {
  util::check(!runs.empty(), "campaign needs at least one run");
  CampaignSummary summary;
  summary.points.resize(runs.size());
  summary.run_wall_seconds.assign(runs.size(), 0.0);

  obs::Timer& run_timer = obs::global_registry().timer("campaign.run");
  obs::Timer& campaign_timer = obs::global_registry().timer("campaign.total");
  obs::Counter& failure_counter =
      obs::global_registry().counter("campaign.failures");

  std::mutex failures_mutex;
  const auto run_one = [&](std::size_t i) {
    const util::Stopwatch run_watch;
    const CampaignRun& run = runs[i];
    // One scenario failing must not take down the sweep: record the
    // cause (structured when the simulator diagnosed it) and move on.
    // The catch lives inside the worker lambda because the pool
    // propagates uncaught worker exceptions to the caller.
    try {
      const mesh::InputDeck deck = mesh::make_standard_deck(run.deck);
      ValidationConfig run_config = config;
      if (!run.faults.empty()) run_config.faults = run.faults;
      switch (run.flavor) {
        case CampaignRun::Flavor::kMeshSpecific:
          summary.points[i] =
              validate_mesh_specific(deck, run.pes, model, engine, run_config);
          break;
        case CampaignRun::Flavor::kGeneralHomogeneous:
          summary.points[i] = validate_general(deck, run.pes, model,
                                               GeneralModelMode::kHomogeneous,
                                               engine, run_config);
          break;
        case CampaignRun::Flavor::kGeneralHeterogeneous:
          summary.points[i] = validate_general(deck, run.pes, model,
                                               GeneralModelMode::kHeterogeneous,
                                               engine, run_config);
          break;
      }
    } catch (const std::exception& error) {
      CampaignFailure failure;
      failure.run_index = i;
      failure.scenario = campaign_run_name(run);
      failure.error = error.what();
      if (const auto* sim_error =
              dynamic_cast<const sim::SimFailureError*>(&error)) {
        failure.has_sim_failure = true;
        failure.sim_failure = sim_error->failure();
      }
      const std::lock_guard<std::mutex> lock(failures_mutex);
      summary.failures.push_back(std::move(failure));
    }
    summary.run_wall_seconds[i] = run_watch.seconds();
    run_timer.record(summary.run_wall_seconds[i]);
  };

  const util::Stopwatch campaign_watch;
  util::ThreadPool pool(threads);
  summary.threads_used = std::min(runs.size(), pool.thread_count());
  // Grain 1: each run is seconds of work, so one run is the unit of
  // dynamic load balancing and the per-chunk dispatch cost is noise.
  pool.parallel_for_chunked(
      runs.size(), 1, [&run_one](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) run_one(i);
      });
  summary.wall_seconds = campaign_watch.seconds();
  campaign_timer.record(summary.wall_seconds);
  std::sort(summary.failures.begin(), summary.failures.end(),
            [](const CampaignFailure& a, const CampaignFailure& b) {
              return a.run_index < b.run_index;
            });
  failure_counter.add(static_cast<std::int64_t>(summary.failures.size()));

  double busy = 0.0;
  for (const double run_wall : summary.run_wall_seconds) busy += run_wall;
  if (summary.wall_seconds > 0.0 && summary.threads_used > 0) {
    summary.thread_utilization =
        std::min(1.0, busy / (summary.wall_seconds *
                              static_cast<double>(summary.threads_used)));
  }

  std::set<std::size_t> failed;
  for (const CampaignFailure& failure : summary.failures) {
    failed.insert(failure.run_index);
  }
  double sum = 0.0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    if (failed.count(i) != 0) continue;  // placeholder, no measurement
    const double error = std::abs(summary.points[i].error());
    summary.worst_abs_error = std::max(summary.worst_abs_error, error);
    sum += error;
    ++measured;
  }
  if (measured > 0) sum /= static_cast<double>(measured);
  summary.mean_abs_error = sum;
  return summary;
}

std::vector<CampaignRun> table5_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kSmall, mesh::DeckSize::kMedium}) {
    for (std::int32_t pes : {16, 64, 128}) {
      CampaignRun run;
      run.deck = deck;
      run.pes = pes;
      run.flavor = CampaignRun::Flavor::kMeshSpecific;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

std::vector<CampaignRun> table6_runs() {
  std::vector<CampaignRun> runs;
  for (mesh::DeckSize deck : {mesh::DeckSize::kMedium, mesh::DeckSize::kLarge}) {
    for (std::int32_t pes : {128, 256, 512}) {
      CampaignRun run;
      run.deck = deck;
      run.pes = pes;
      run.flavor = CampaignRun::Flavor::kGeneralHomogeneous;
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

}  // namespace krak::core
