#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simapp/simkrak.hpp"

namespace krak::core {

/// Build-environment stamp embedded in every BENCH_*.json so a
/// performance trajectory across PRs stays attributable.
struct BenchEnvironment {
  std::string git_sha = "unknown";
  std::string build_type = "unknown";
  std::string compiler = "unknown";
  std::int64_t hardware_concurrency = 1;
};

/// Fill from compiler macros, std::thread::hardware_concurrency, and —
/// for the git SHA — the KRAK_GIT_SHA environment variable (exported by
/// CI) falling back to the configure-time KRAK_GIT_SHA_DEFAULT.
[[nodiscard]] BenchEnvironment detect_bench_environment();

/// One validation campaign as a krak-bench-v1 "campaigns" entry.
[[nodiscard]] obs::Json campaign_to_json(const std::string& name,
                                         const CampaignSummary& summary);

/// One simulator replay as a krak-bench-v1 "replays" entry, carrying the
/// compute / p2p / collective decomposition and blocked-time split.
[[nodiscard]] obs::Json replay_to_json(const std::string& name,
                                       const simapp::SimKrakResult& result);

/// Attach the optional krak-bench-v1 "parallel" object to a replay
/// entry: the parallel-simulation scaling datapoint of the scenario —
/// wall clock of the single-thread oracle vs. the conservative parallel
/// engine at `threads` workers over the same (bit-identical) run.
/// `coordinator_s` is the parallel run's serial coordinator wall
/// (sim.parallel.coordinator_s); it yields coordinator_serial_fraction
/// = coordinator_s / parallel_wall_s, the replay's Amdahl serial
/// fraction. speedup_vs_oracle duplicates the legacy speedup field
/// under the name the schema documents going forward.
void attach_parallel_scaling(obs::Json& replay, std::int32_t threads,
                             double serial_wall_s, double parallel_wall_s,
                             double coordinator_s = 0.0);

/// The perf-smoke regression gate behind krak_bench --compare: check
/// every campaign of `report` against the like-named campaign of
/// `baseline`. Returns human-readable failure messages; empty means
/// every campaign name matched in BOTH directions and no wall time
/// exceeded `factor` x its baseline. A campaign present on only one
/// side is a failure, not a silent pass: a renamed or dropped campaign
/// would otherwise disable the gate without anyone noticing. Both
/// documents must already be schema-valid (validate_bench_report).
[[nodiscard]] std::vector<std::string> compare_campaign_walls(
    const obs::Json& report, const obs::Json& baseline, double factor);

/// The replay half of the perf-smoke gate: check every replay of
/// `report` that carries a "parallel" scaling object against the
/// like-named replay of `baseline`, comparing parallel_wall_s (the
/// engine wall the scenario exists to bound). Matching is bidirectional
/// over the parallel-scaling replays only — serial replays carry no
/// gated wall — with the same no-silent-pass rule as the campaign
/// gate: a parallel replay present on only one side is a failure.
[[nodiscard]] std::vector<std::string> compare_replay_walls(
    const obs::Json& report, const obs::Json& baseline, double factor);

/// Assemble the full report document (see docs/OBSERVABILITY.md for the
/// schema). The caller validates with obs::validate_bench_report before
/// publishing.
[[nodiscard]] obs::Json make_bench_report(const std::string& name, bool quick,
                                          const BenchEnvironment& environment,
                                          std::vector<obs::Json> campaigns,
                                          std::vector<obs::Json> replays,
                                          const obs::Snapshot& metrics);

}  // namespace krak::core
