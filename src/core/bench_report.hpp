#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simapp/simkrak.hpp"

namespace krak::core {

/// Build-environment stamp embedded in every BENCH_*.json so a
/// performance trajectory across PRs stays attributable.
struct BenchEnvironment {
  std::string git_sha = "unknown";
  std::string build_type = "unknown";
  std::string compiler = "unknown";
  std::int64_t hardware_concurrency = 1;
};

/// Fill from compiler macros, std::thread::hardware_concurrency, and —
/// for the git SHA — the KRAK_GIT_SHA environment variable (exported by
/// CI) falling back to the configure-time KRAK_GIT_SHA_DEFAULT.
[[nodiscard]] BenchEnvironment detect_bench_environment();

/// One validation campaign as a krak-bench-v1 "campaigns" entry.
[[nodiscard]] obs::Json campaign_to_json(const std::string& name,
                                         const CampaignSummary& summary);

/// One simulator replay as a krak-bench-v1 "replays" entry, carrying the
/// compute / p2p / collective decomposition and blocked-time split.
[[nodiscard]] obs::Json replay_to_json(const std::string& name,
                                       const simapp::SimKrakResult& result);

/// Assemble the full report document (see docs/OBSERVABILITY.md for the
/// schema). The caller validates with obs::validate_bench_report before
/// publishing.
[[nodiscard]] obs::Json make_bench_report(const std::string& name, bool quick,
                                          const BenchEnvironment& environment,
                                          std::vector<obs::Json> campaigns,
                                          std::vector<obs::Json> replays,
                                          const obs::Snapshot& metrics);

}  // namespace krak::core
