#pragma once

#include <array>
#include <cstdint>

#include "core/cost_table.hpp"
#include "partition/stats.hpp"
#include "simapp/costmodel.hpp"

namespace krak::core {

/// The computation model of Section 3, Equations (1)-(3).
///
/// Because phases are separated by global synchronization events, the
/// time of a phase is the maximum over all processors of the modeled
/// subgrid time (Equation 2); an iteration's computation time is the
/// sum over phases (Equations 1 and 3).

/// Equation (2): max over processors of the subgrid phase time.
[[nodiscard]] double phase_computation_time(
    const CostTable& table, std::int32_t phase,
    const partition::PartitionStats& stats);

/// Per-phase computation times for all 15 phases.
[[nodiscard]] std::array<double, simapp::kPhaseCount>
per_phase_computation_times(const CostTable& table,
                            const partition::PartitionStats& stats);

/// Equation (3): total computation time of one iteration.
[[nodiscard]] double iteration_computation_time(
    const CostTable& table, const partition::PartitionStats& stats);

}  // namespace krak::core
