#include "core/bench_report.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "obs/report.hpp"
#include "util/error.hpp"

#ifndef KRAK_GIT_SHA_DEFAULT
#define KRAK_GIT_SHA_DEFAULT "unknown"
#endif
#ifndef KRAK_BUILD_TYPE
#define KRAK_BUILD_TYPE "unknown"
#endif

namespace krak::core {

BenchEnvironment detect_bench_environment() {
  BenchEnvironment env;
  // One-time startup read before any pool work; no setenv anywhere in
  // the tree, so the getenv data race mt-unsafe guards against can't occur.
  const char* sha = std::getenv("KRAK_GIT_SHA");  // NOLINT(concurrency-mt-unsafe)
  env.git_sha = (sha != nullptr && *sha != '\0') ? sha : KRAK_GIT_SHA_DEFAULT;
  env.build_type = KRAK_BUILD_TYPE;
#if defined(__clang__)
  env.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  env.compiler = "gcc " __VERSION__;
#endif
  env.hardware_concurrency = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  return env;
}

obs::Json campaign_to_json(const std::string& name,
                           const CampaignSummary& summary) {
  util::check(summary.points.size() == summary.run_wall_seconds.size(),
              "campaign summary points/wall-times mismatch");
  obs::Json out = obs::Json::object();
  out["name"] = name;
  out["wall_seconds"] = summary.wall_seconds;
  out["threads"] = static_cast<std::int64_t>(summary.threads_used);
  out["thread_utilization"] = summary.thread_utilization;
  out["worst_abs_error"] = summary.worst_abs_error;
  out["mean_abs_error"] = summary.mean_abs_error;
  // Resilience accounting (docs/RESILIENCE.md): what the campaign
  // policy did — attempts, retries, journal replays, quarantines. The
  // crash-recovery CI gate reads `resilience.replayed` to prove a
  // resumed campaign actually reused journaled measurements.
  {
    obs::Json resilience = obs::Json::object();
    resilience["attempts"] =
        static_cast<std::int64_t>(summary.resilience.attempts);
    resilience["retries"] =
        static_cast<std::int64_t>(summary.resilience.retries);
    resilience["replayed"] =
        static_cast<std::int64_t>(summary.resilience.replayed);
    resilience["quarantined"] =
        static_cast<std::int64_t>(summary.resilience.quarantined);
    resilience["deadline_failures"] =
        static_cast<std::int64_t>(summary.resilience.deadline_failures);
    resilience["backoff_s"] = summary.resilience.backoff_seconds;
    out["resilience"] = std::move(resilience);
  }
  std::set<std::size_t> failed;
  for (const CampaignFailure& failure : summary.failures) {
    failed.insert(failure.run_index);
  }
  obs::Json runs = obs::Json::array();
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    if (failed.count(i) != 0) continue;  // placeholder, listed under failures
    const ValidationPoint& point = summary.points[i];
    obs::Json run = obs::Json::object();
    run["problem"] = point.problem;
    run["pes"] = point.pes;
    run["measured_s"] = point.measured;
    run["predicted_s"] = point.predicted;
    run["error"] = point.error();
    run["wall_seconds"] = summary.run_wall_seconds[i];
    runs.push_back(std::move(run));
  }
  out["runs"] = std::move(runs);
  if (!summary.failures.empty()) {
    obs::Json failures = obs::Json::array();
    for (const CampaignFailure& failure : summary.failures) {
      obs::Json entry = obs::Json::object();
      entry["run_index"] = static_cast<std::int64_t>(failure.run_index);
      entry["scenario"] = failure.scenario;
      entry["error"] = failure.error;
      entry["attempts"] = static_cast<std::int64_t>(failure.attempts);
      entry["class"] =
          std::string(failure.transient ? "transient" : "deterministic");
      entry["quarantined"] = failure.quarantined;
      if (failure.has_sim_failure) {
        obs::Json cause = obs::Json::object();
        cause["kind"] =
            std::string(sim::sim_failure_kind_name(failure.sim_failure.kind));
        cause["rank"] = failure.sim_failure.rank;
        cause["op_index"] =
            static_cast<std::int64_t>(failure.sim_failure.op_index);
        cause["detail"] = failure.sim_failure.to_string();
        entry["sim_failure"] = std::move(cause);
      }
      failures.push_back(std::move(entry));
    }
    out["failures"] = std::move(failures);
  }
  return out;
}

obs::Json replay_to_json(const std::string& name,
                         const simapp::SimKrakResult& result) {
  obs::Json out = obs::Json::object();
  out["name"] = name;
  out["ranks"] = result.ranks;
  out["makespan_s"] = result.total_time;
  out["time_per_iteration_s"] = result.time_per_iteration;
  out["events"] = static_cast<std::int64_t>(result.events_processed);
  out["max_queue_depth"] = static_cast<std::int64_t>(result.max_queue_depth);

  obs::Json phases = obs::Json::object();
  phases["compute_s"] = result.totals.compute;
  phases["p2p_s"] = result.totals.p2p_seconds();
  phases["collective_s"] = result.totals.collective_seconds();
  out["phases"] = std::move(phases);

  obs::Json blocked = obs::Json::object();
  blocked["send_wait_s"] = result.totals.send_wait;
  blocked["recv_wait_s"] = result.totals.recv_wait;
  blocked["collective_wait_s"] = result.totals.collective_wait;
  blocked["collective_cost_s"] = result.totals.collective_cost;
  out["blocked"] = std::move(blocked);

  if (result.fault_stats.injections > 0 || result.failed()) {
    obs::Json fault = obs::Json::object();
    fault["injections"] = result.fault_stats.injections;
    fault["retransmits"] = result.fault_stats.retransmits;
    fault["messages_lost"] = result.fault_stats.messages_lost;
    fault["fault_delay_s"] = result.fault_stats.fault_delay_seconds;
    fault["recovery_s"] = result.fault_stats.recovery_seconds;
    obs::Json failures = obs::Json::array();
    for (const sim::SimFailure& failure : result.failures) {
      obs::Json entry = obs::Json::object();
      entry["kind"] = std::string(sim::sim_failure_kind_name(failure.kind));
      entry["rank"] = failure.rank;
      entry["op_index"] = static_cast<std::int64_t>(failure.op_index);
      entry["detail"] = failure.to_string();
      failures.push_back(std::move(entry));
    }
    fault["failures"] = std::move(failures);
    out["fault"] = std::move(fault);
  }

  obs::Json traffic = obs::Json::object();
  traffic["p2p_messages"] = result.traffic.point_to_point_messages;
  traffic["p2p_bytes"] = result.traffic.point_to_point_bytes;
  traffic["allreduces"] = result.traffic.allreduces;
  traffic["broadcasts"] = result.traffic.broadcasts;
  traffic["gathers"] = result.traffic.gathers;
  out["traffic"] = std::move(traffic);

  obs::Json per_phase = obs::Json::array();
  for (std::size_t p = 0; p < result.phase_times.size(); ++p) {
    obs::Json entry = obs::Json::object();
    entry["phase"] = static_cast<std::int64_t>(p + 1);
    entry["mean_seconds"] = result.phase_times[p];
    per_phase.push_back(std::move(entry));
  }
  out["iteration_phases"] = std::move(per_phase);
  return out;
}

void attach_parallel_scaling(obs::Json& replay, std::int32_t threads,
                             double serial_wall_s, double parallel_wall_s,
                             double coordinator_s) {
  util::check(threads >= 1, "attach_parallel_scaling: threads must be >= 1");
  util::check(coordinator_s >= 0.0,
              "attach_parallel_scaling: coordinator_s must be >= 0");
  obs::Json parallel = obs::Json::object();
  parallel["threads"] = threads;
  parallel["serial_wall_s"] = serial_wall_s;
  parallel["parallel_wall_s"] = parallel_wall_s;
  const double speedup =
      parallel_wall_s > 0.0 ? serial_wall_s / parallel_wall_s : 0.0;
  parallel["speedup"] = speedup;
  parallel["speedup_vs_oracle"] = speedup;
  // Clamped to 1: the coordinator wall is measured inside the run, the
  // replay wall outside it, so scheduler noise on a loaded host could
  // otherwise nudge the ratio past the [0,1] range the schema pins.
  parallel["coordinator_serial_fraction"] =
      parallel_wall_s > 0.0
          ? std::min(1.0, coordinator_s / parallel_wall_s)
          : 0.0;
  replay["parallel"] = std::move(parallel);
}

std::vector<std::string> compare_campaign_walls(const obs::Json& report,
                                                const obs::Json& baseline,
                                                double factor) {
  std::vector<std::string> failures;
  std::map<std::string, double> baseline_walls;
  for (const obs::Json& campaign : baseline.find("campaigns")->as_array()) {
    baseline_walls.emplace(campaign.find("name")->as_string(),
                           campaign.find("wall_seconds")->as_double());
  }
  std::set<std::string> compared;
  for (const obs::Json& campaign : report.find("campaigns")->as_array()) {
    const std::string& name = campaign.find("name")->as_string();
    compared.insert(name);
    const auto base = baseline_walls.find(name);
    if (base == baseline_walls.end()) {
      failures.push_back("campaign '" + name +
                         "' has no like-named campaign in the baseline"
                         " report; the gate cannot vouch for it");
      continue;
    }
    const double wall = campaign.find("wall_seconds")->as_double();
    if (wall > base->second * factor) {
      std::ostringstream message;
      message << "campaign '" << name << "' regressed: " << wall
              << " s vs baseline " << base->second << " s (limit " << factor
              << "x)";
      failures.push_back(message.str());
    }
  }
  for (const auto& [name, wall] : baseline_walls) {
    (void)wall;
    if (compared.count(name) == 0) {
      failures.push_back("baseline campaign '" + name +
                         "' is missing from the generated report; a dropped"
                         " or renamed campaign disables its gate");
    }
  }
  return failures;
}

std::vector<std::string> compare_replay_walls(const obs::Json& report,
                                              const obs::Json& baseline,
                                              double factor) {
  std::vector<std::string> failures;
  std::map<std::string, double> baseline_walls;
  for (const obs::Json& replay : baseline.find("replays")->as_array()) {
    if (const obs::Json* parallel = replay.find("parallel")) {
      baseline_walls.emplace(replay.find("name")->as_string(),
                             parallel->find("parallel_wall_s")->as_double());
    }
  }
  std::set<std::string> compared;
  for (const obs::Json& replay : report.find("replays")->as_array()) {
    const obs::Json* parallel = replay.find("parallel");
    if (parallel == nullptr) continue;
    const std::string& name = replay.find("name")->as_string();
    compared.insert(name);
    const auto base = baseline_walls.find(name);
    if (base == baseline_walls.end()) {
      failures.push_back("replay '" + name +
                         "' has no like-named parallel replay in the baseline"
                         " report; the gate cannot vouch for it");
      continue;
    }
    const double wall = parallel->find("parallel_wall_s")->as_double();
    if (wall > base->second * factor) {
      std::ostringstream message;
      message << "replay '" << name << "' regressed: parallel wall " << wall
              << " s vs baseline " << base->second << " s (limit " << factor
              << "x)";
      failures.push_back(message.str());
    }
  }
  for (const auto& [name, wall] : baseline_walls) {
    (void)wall;
    if (compared.count(name) == 0) {
      failures.push_back("baseline parallel replay '" + name +
                         "' is missing from the generated report; a dropped"
                         " or renamed replay disables its gate");
    }
  }
  return failures;
}

obs::Json make_bench_report(const std::string& name, bool quick,
                            const BenchEnvironment& environment,
                            std::vector<obs::Json> campaigns,
                            std::vector<obs::Json> replays,
                            const obs::Snapshot& metrics) {
  obs::Json report = obs::Json::object();
  report["schema"] = std::string(obs::kBenchSchemaId);
  report["name"] = name;
  report["quick"] = quick;

  obs::Json env = obs::Json::object();
  env["git_sha"] = environment.git_sha;
  env["build_type"] = environment.build_type;
  env["compiler"] = environment.compiler;
  env["hardware_concurrency"] = environment.hardware_concurrency;
  report["environment"] = std::move(env);

  obs::Json campaign_array = obs::Json::array();
  for (obs::Json& campaign : campaigns) {
    campaign_array.push_back(std::move(campaign));
  }
  report["campaigns"] = std::move(campaign_array);

  obs::Json replay_array = obs::Json::array();
  for (obs::Json& replay : replays) replay_array.push_back(std::move(replay));
  report["replays"] = std::move(replay_array);

  report["metrics"] = obs::snapshot_to_json(metrics);
  return report;
}

}  // namespace krak::core
