#include "core/cost_table.hpp"

#include "util/error.hpp"

namespace krak::core {

using util::check;

CostTable::CostTable() {
  for (auto& phase_curves : curves_) {
    for (auto& curve : phase_curves) {
      // Per-cell cost samples interpolate linearly in the cell count —
      // the paper's "linear interpolation between measured values" —
      // and clamp outside the sampled range.
      curve.set_interpolation(util::Interpolation::kLinear);
      curve.set_extrapolation(util::Extrapolation::kClamp);
    }
  }
}

const util::PiecewiseLinear& CostTable::curve(std::int32_t phase,
                                              mesh::Material material) const {
  check(phase >= 1 && phase <= simapp::kPhaseCount, "phase must be in 1..15");
  return curves_[static_cast<std::size_t>(phase - 1)]
                [mesh::material_index(material)];
}

util::PiecewiseLinear& CostTable::curve(std::int32_t phase,
                                        mesh::Material material) {
  check(phase >= 1 && phase <= simapp::kPhaseCount, "phase must be in 1..15");
  return curves_[static_cast<std::size_t>(phase - 1)]
                [mesh::material_index(material)];
}

void CostTable::add_sample(std::int32_t phase, mesh::Material material,
                           double cells, double per_cell_cost) {
  check(cells > 0.0, "sample cell count must be positive");
  check(per_cell_cost >= 0.0, "per-cell cost must be non-negative");
  curve(phase, material).add_point(cells, per_cell_cost);
}

double CostTable::per_cell(std::int32_t phase, mesh::Material material,
                           double cells) const {
  check(cells > 0.0, "query cell count must be positive");
  const util::PiecewiseLinear& c = curve(phase, material);
  if (c.empty()) {
    throw util::KrakError("CostTable: no samples for phase " +
                          std::to_string(phase) + ", material " +
                          std::string(mesh::material_short_name(material)));
  }
  return c(cells);
}

double CostTable::subgrid_time(
    std::int32_t phase,
    std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material)
    const {
  std::int64_t total = 0;
  for (std::int64_t n : cells_per_material) {
    check(n >= 0, "cell counts must be non-negative");
    total += n;
  }
  if (total == 0) return 0.0;
  double time = 0.0;
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    if (cells_per_material[m] == 0) continue;
    time += static_cast<double>(cells_per_material[m]) *
            per_cell(phase, mesh::material_from_index(m),
                     static_cast<double>(total));
  }
  return time;
}

double CostTable::uniform_subgrid_time(std::int32_t phase,
                                       mesh::Material material,
                                       double cells) const {
  check(cells >= 0.0, "cell count must be non-negative");
  if (cells == 0.0) return 0.0;
  return cells * per_cell(phase, material, cells);
}

double CostTable::mixed_subgrid_time(
    std::int32_t phase,
    std::span<const double, mesh::kMaterialCount> cells_per_material) const {
  double total = 0.0;
  for (double n : cells_per_material) {
    check(n >= 0.0, "cell counts must be non-negative");
    total += n;
  }
  if (total == 0.0) return 0.0;
  double time = 0.0;
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    if (cells_per_material[m] == 0.0) continue;
    time += cells_per_material[m] *
            per_cell(phase, mesh::material_from_index(m), total);
  }
  return time;
}

bool CostTable::has_samples(std::int32_t phase, mesh::Material material) const {
  return !curve(phase, material).empty();
}

std::size_t CostTable::sample_count(std::int32_t phase,
                                    mesh::Material material) const {
  return curve(phase, material).size();
}

std::span<const double> CostTable::sample_cells(std::int32_t phase,
                                                mesh::Material material) const {
  return curve(phase, material).xs();
}

std::span<const double> CostTable::sample_costs(std::int32_t phase,
                                                mesh::Material material) const {
  return curve(phase, material).ys();
}

}  // namespace krak::core
