#pragma once

#include "core/cost_table.hpp"
#include "core/report.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/stats.hpp"

namespace krak::core {

/// The "mesh-specific" (input-specific) Krak model of Section 3.1:
/// computation from Equation (3) over the *actual* partition's cell and
/// material counts, communication from Equations (5)-(10) over the
/// actual shared-face and ghost-node statistics.
///
/// Accurate for validation at moderate and large subgrid sizes, but the
/// paper shows (Table 5) it can err by >50% near the knee of the
/// per-cell cost curve, and it is too expensive for scalability studies
/// because it requires a full partition of every configuration.
class MeshSpecificModel {
 public:
  MeshSpecificModel(CostTable table, network::MachineConfig machine);

  /// Predict one iteration over a concrete partition of a deck.
  [[nodiscard]] PredictionReport predict(
      const partition::PartitionStats& stats) const;

  [[nodiscard]] const CostTable& cost_table() const { return table_; }
  [[nodiscard]] const network::MachineConfig& machine() const {
    return machine_;
  }

 private:
  CostTable table_;
  network::MachineConfig machine_;
};

}  // namespace krak::core
