#include "core/model.hpp"

namespace krak::core {

KrakModel::KrakModel(CostTable table, network::MachineConfig machine)
    : general_(table, machine), mesh_specific_(std::move(table), std::move(machine)) {}

PredictionReport KrakModel::predict_general(std::int64_t total_cells,
                                            std::int32_t pes,
                                            GeneralModelMode mode) const {
  return general_.predict(total_cells, pes, mode);
}

PredictionReport KrakModel::predict_mesh_specific(
    const mesh::InputDeck& deck, const partition::Partition& part) const {
  return predict_mesh_specific(partition::PartitionStats(deck, part));
}

PredictionReport KrakModel::predict_mesh_specific(
    const partition::PartitionStats& stats) const {
  return mesh_specific_.predict(stats);
}

const CostTable& KrakModel::cost_table() const {
  return mesh_specific_.cost_table();
}

const network::MachineConfig& KrakModel::machine() const {
  return mesh_specific_.machine();
}

}  // namespace krak::core
