#pragma once

#include <cstdint>

#include "core/model.hpp"

namespace krak::core {

/// One point of a configuration search: a processor count with its
/// predicted iteration time and parallel efficiency (relative to the
/// one-processor prediction).
struct Configuration {
  std::int32_t pes = 0;
  double iteration_time = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

/// Scan every processor count 1..max_pes with the general model (cheap:
/// microseconds per evaluation) and return the configuration with the
/// smallest predicted iteration time. Ties go to the smaller count.
[[nodiscard]] Configuration find_fastest_configuration(
    const KrakModel& model, std::int64_t total_cells,
    GeneralModelMode mode = GeneralModelMode::kHomogeneous,
    std::int32_t max_pes = 0 /* 0 = machine size */);

/// The largest processor count whose predicted parallel efficiency
/// still meets `efficiency_target` (0, 1]. Efficiency is evaluated
/// against the single-processor prediction.
[[nodiscard]] Configuration find_efficiency_limit(
    const KrakModel& model, std::int64_t total_cells, double efficiency_target,
    GeneralModelMode mode = GeneralModelMode::kHomogeneous,
    std::int32_t max_pes = 0);

/// Predicted wall time of a run of `iterations` time-steps.
[[nodiscard]] double predict_time_to_solution(
    const KrakModel& model, std::int64_t total_cells, std::int32_t pes,
    std::int64_t iterations,
    GeneralModelMode mode = GeneralModelMode::kHomogeneous);

}  // namespace krak::core
