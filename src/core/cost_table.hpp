#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mesh/material.hpp"
#include "simapp/costmodel.hpp"
#include "util/piecewise.hpp"

namespace krak::core {

/// The model's calibrated computation-cost database: the piecewise
/// linear function T() of Equation (2), giving the per-cell cost of one
/// phase for one material at a given local subgrid size.
///
/// "T() returns the per-cell cost from a piecewise linear equation given
/// the phase and material type" (Section 3). Entries are built by the
/// calibration procedures (Section 3.1) from measured samples; queries
/// between samples interpolate linearly, exactly as the paper does —
/// including the inaccuracy near the knee that the paper reports.
class CostTable {
 public:
  CostTable();

  /// Record a measured per-cell cost sample: phase in 1..15, `cells` the
  /// local subgrid size the sample was taken at.
  void add_sample(std::int32_t phase, mesh::Material material, double cells,
                  double per_cell_cost);

  /// Per-cell cost T(phase, material) at a local subgrid size of
  /// `cells`. Throws KrakError if no sample exists for this pair.
  [[nodiscard]] double per_cell(std::int32_t phase, mesh::Material material,
                                double cells) const;

  /// Modeled phase time of a subgrid: sum over local cells of the
  /// per-cell cost (the inner sum of Equation 2), i.e.
  /// sum_m n_m * T(phase, m, n_total).
  [[nodiscard]] double subgrid_time(
      std::int32_t phase,
      std::span<const std::int64_t, mesh::kMaterialCount> cells_per_material)
      const;

  /// Modeled phase time of a single-material subgrid of n cells.
  [[nodiscard]] double uniform_subgrid_time(std::int32_t phase,
                                            mesh::Material material,
                                            double cells) const;

  /// Fractional-cell variant of subgrid_time for the general model,
  /// whose per-material counts are ratios of Cells/PEs and need not be
  /// integral.
  [[nodiscard]] double mixed_subgrid_time(
      std::int32_t phase,
      std::span<const double, mesh::kMaterialCount> cells_per_material) const;

  /// True if (phase, material) has at least one sample.
  [[nodiscard]] bool has_samples(std::int32_t phase,
                                 mesh::Material material) const;

  /// Number of samples stored for (phase, material).
  [[nodiscard]] std::size_t sample_count(std::int32_t phase,
                                         mesh::Material material) const;

  /// Raw breakpoints for serialization/inspection: the sampled cell
  /// counts and the matching per-cell costs, ascending in cells.
  [[nodiscard]] std::span<const double> sample_cells(
      std::int32_t phase, mesh::Material material) const;
  [[nodiscard]] std::span<const double> sample_costs(
      std::int32_t phase, mesh::Material material) const;

 private:
  [[nodiscard]] const util::PiecewiseLinear& curve(
      std::int32_t phase, mesh::Material material) const;
  [[nodiscard]] util::PiecewiseLinear& curve(std::int32_t phase,
                                             mesh::Material material);

  /// curves_[phase-1][material]
  std::array<std::array<util::PiecewiseLinear, mesh::kMaterialCount>,
             simapp::kPhaseCount>
      curves_;
};

}  // namespace krak::core
