// krak_analyze: static model-input linter (docs/ANALYSIS.md).
//
// Validates a deck + partition + machine + cost table bundle before any
// simulation runs and prints a severity-ranked diagnostic report:
//
//   krak_analyze --deck medium --pes 256 --method multilevel
//   krak_analyze --deck corrupted            # built-in broken fixture
//   krak_analyze --deck small --format csv
//
// File linting (event traces, fault-injection specs, persistent
// partition-store entries, and campaign journals):
//
//   krak_analyze --trace run.kraktrace
//   krak_analyze --trace corrupted           # built-in broken trace
//   krak_analyze --faults plan.krakfaults --pes 64
//   krak_analyze --faults corrupted
//   krak_analyze --partition-store store/abc-64-multilevel-1.krakpart
//   krak_analyze --partition-store corrupted # built-in broken entry
//   krak_analyze --journal campaign.krakjournal
//   krak_analyze --journal corrupted         # built-in broken journal
//   krak_analyze --synthetic deck.kraksynth
//   krak_analyze --synthetic corrupted       # built-in broken spec
//
// Exit status: 0 when no errors were found, 1 when the inputs are
// inconsistent, 2 on usage errors.

#include <exception>
#include <iostream>
#include <sstream>
#include <string>

#include "analyze/fixtures.hpp"
#include "analyze/lint_faults.hpp"
#include "analyze/lint_journal.hpp"
#include "analyze/lint_partition_store.hpp"
#include "analyze/lint_synthetic.hpp"
#include "analyze/lint_trace.hpp"
#include "analyze/linter.hpp"
#include "core/cost_table.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/costmodel.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace krak;

constexpr const char* kUsage =
    "usage: krak_analyze [--deck small|medium|large|figure2|corrupted]\n"
    "                    [--pes N] [--method strip|rcb|multilevel|material-aware]\n"
    "                    [--machine es45|upgrade] [--format text|csv]\n"
    "                    [--no-partition] [--no-costs]\n"
    "       krak_analyze --trace FILE|corrupted [--format text|csv]\n"
    "       krak_analyze --faults FILE|corrupted [--pes N] [--format text|csv]\n"
    "       krak_analyze --partition-store FILE|corrupted [--format text|csv]\n"
    "       krak_analyze --journal FILE|corrupted [--format text|csv]\n"
    "       krak_analyze --synthetic FILE|corrupted [--format text|csv]\n";

mesh::InputDeck make_deck(const std::string& name) {
  if (name == "small") return mesh::make_standard_deck(mesh::DeckSize::kSmall);
  if (name == "medium") {
    return mesh::make_standard_deck(mesh::DeckSize::kMedium);
  }
  if (name == "large") return mesh::make_standard_deck(mesh::DeckSize::kLarge);
  if (name == "figure2") return mesh::make_figure2_deck();
  throw util::InvalidArgument("unknown deck '" + name + "'");
}

partition::PartitionMethod parse_method(const std::string& name) {
  if (name == "strip") return partition::PartitionMethod::kStrip;
  if (name == "rcb") return partition::PartitionMethod::kRcb;
  if (name == "multilevel") return partition::PartitionMethod::kMultilevel;
  if (name == "material-aware") {
    return partition::PartitionMethod::kMaterialAware;
  }
  throw util::InvalidArgument("unknown partition method '" + name + "'");
}

/// Cost table sampled from the ground-truth engine at geometric subgrid
/// sizes: the noise-free analogue of a calibration campaign, fast
/// enough to lint the large deck interactively.
core::CostTable make_sampled_costs() {
  const simapp::ComputationCostEngine engine;
  core::CostTable costs;
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (mesh::Material material : mesh::all_materials()) {
      for (double cells = 1.0; cells <= 262144.0; cells *= 4.0) {
        costs.add_sample(phase, material, cells,
                         engine.per_cell_cost(phase, material,
                                              static_cast<std::int64_t>(cells)));
      }
    }
  }
  return costs;
}

int run(const util::ArgParser& args) {
  const std::string format = args.get_string("format", "text");
  if (format != "text" && format != "csv") {
    std::cerr << kUsage;
    return 2;
  }

  const std::string deck_name = args.get_string("deck", "medium");
  analyze::DiagnosticReport report;
  if (args.has("trace")) {
    const std::string trace = args.get_string("trace", "");
    if (trace == "corrupted") {
      std::istringstream in(analyze::corrupted_trace_text());
      (void)analyze::lint_trace(in, report);
    } else {
      report = analyze::lint_trace_file(trace);
    }
  } else if (args.has("partition-store")) {
    const std::string store = args.get_string("partition-store", "");
    if (store == "corrupted") {
      std::istringstream in(analyze::corrupted_partition_store_text());
      (void)analyze::lint_partition_store(in, report);
    } else {
      report = analyze::lint_partition_store_file(store);
    }
  } else if (args.has("journal")) {
    const std::string journal = args.get_string("journal", "");
    if (journal == "corrupted") {
      std::istringstream in(analyze::corrupted_journal_text());
      (void)analyze::lint_journal(in, report);
    } else {
      report = analyze::lint_journal_file(journal);
    }
  } else if (args.has("synthetic")) {
    const std::string synthetic = args.get_string("synthetic", "");
    if (synthetic == "corrupted") {
      std::istringstream in(analyze::corrupted_synthetic_text());
      (void)analyze::lint_synthetic(in, report);
    } else {
      report = analyze::lint_synthetic_file(synthetic);
    }
  } else if (args.has("faults")) {
    const std::string faults = args.get_string("faults", "");
    const auto pes = static_cast<std::int32_t>(args.get_int("pes", 0));
    if (faults == "corrupted") {
      std::istringstream in(analyze::corrupted_fault_spec_text());
      report = analyze::lint_faults(fault::parse_fault_plan(in), pes,
                                    simapp::kPhaseCount);
    } else {
      report = analyze::lint_fault_file(faults, pes, simapp::kPhaseCount);
    }
  } else if (deck_name == "corrupted") {
    report = analyze::lint_fixture(analyze::make_corrupted_fixture());
  } else {
    const mesh::InputDeck deck = make_deck(deck_name);
    const auto pes = static_cast<std::int32_t>(args.get_int("pes", 64));
    const network::MachineConfig machine =
        args.get_string("machine", "es45") == "upgrade"
            ? network::make_hypothetical_upgrade()
            : network::make_es45_qsnet();

    analyze::LintInput input;
    input.deck = &deck;
    input.machine = &machine;
    input.pes = pes;

    partition::Partition partition(1, {0});
    if (!args.has("no-partition")) {
      partition = partition::partition_deck(
          deck, pes, parse_method(args.get_string("method", "multilevel")));
      input.partition = &partition;
    }
    core::CostTable costs;
    if (!args.has("no-costs")) {
      costs = make_sampled_costs();
      input.costs = &costs;
    }
    report = analyze::lint_model(input);
  }

  std::cout << (format == "csv" ? report.to_csv() : report.to_text());
  return report.has_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::ArgParser(argc, argv));
  } catch (const util::InvalidArgument& error) {
    std::cerr << "krak_analyze: " << error.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "krak_analyze: " << error.what() << "\n";
    return 1;
  }
}
