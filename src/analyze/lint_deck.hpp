#pragma once

#include "analyze/diagnostic.hpp"
#include "mesh/deck.hpp"

namespace krak::analyze {

/// Lint an input deck (Section 2.1): the detonator must sit inside the
/// grid on a high-explosive cell, HE gas must be present for a
/// detonation problem, and the grid shape must be usable.
void lint_deck(const mesh::InputDeck& deck, DiagnosticReport& report);

}  // namespace krak::analyze
