#include "analyze/lint_deck.hpp"

#include <sstream>

#include "analyze/rules.hpp"

namespace krak::analyze {

namespace {

/// Raw enum-range validation. Everything else in the deck (and in the
/// linter itself) indexes per-material arrays with material_index(), so
/// an out-of-range byte here is checked before anything dereferences it.
bool materials_in_range(const mesh::InputDeck& deck,
                        DiagnosticReport& report) {
  std::int64_t bad = 0;
  for (mesh::Material m : deck.materials()) {
    if (static_cast<std::size_t>(m) >= mesh::kMaterialCount) ++bad;
  }
  if (bad > 0) {
    std::ostringstream os;
    os << bad << " cell(s) carry a material id outside the " << "0.."
       << mesh::kMaterialCount - 1 << " range";
    report.error(rules::kDeckShape, "deck/" + deck.name(), os.str());
    return false;
  }
  return true;
}

}  // namespace

void lint_deck(const mesh::InputDeck& deck, DiagnosticReport& report) {
  const std::string where = "deck/" + deck.name();

  if (!materials_in_range(deck, report)) return;

  const mesh::Grid& grid = deck.grid();
  const mesh::Point det = deck.detonator();
  const bool inside = det.x >= 0.0 &&
                      det.x <= static_cast<double>(grid.nx()) &&
                      det.y >= 0.0 && det.y <= static_cast<double>(grid.ny());
  if (!inside) {
    std::ostringstream os;
    os << "detonator (" << det.x << ", " << det.y << ") lies outside the "
       << grid.nx() << " x " << grid.ny() << " domain";
    report.error(rules::kDeckDetonator, where, os.str());
  }

  const auto counts = deck.material_cell_counts();
  const std::int64_t he_cells =
      counts[mesh::material_index(mesh::Material::kHEGas)];
  if (he_cells == 0) {
    report.warning(rules::kDeckDetonator, where,
                   "no high-explosive gas cells: a detonation problem "
                   "cannot start (calibration-only decks are exempt by "
                   "intent, but check this is one)");
  } else if (inside) {
    // The detonator must sit in (or on the edge of) an HE gas cell.
    const auto clamp_index = [](double v, std::int32_t n) {
      auto i = static_cast<std::int32_t>(v);
      if (i >= n) i = n - 1;
      if (i < 0) i = 0;
      return i;
    };
    const mesh::CellId cell = grid.cell_at(clamp_index(det.x, grid.nx()),
                                           clamp_index(det.y, grid.ny()));
    if (deck.material_of(cell) != mesh::Material::kHEGas) {
      std::ostringstream os;
      os << "detonator cell holds "
         << mesh::material_short_name(deck.material_of(cell))
         << ", not HE gas";
      report.warning(rules::kDeckDetonator, where, os.str());
    }
  }
}

}  // namespace krak::analyze
