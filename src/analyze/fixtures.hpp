#pragma once

#include <cstdint>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "core/cost_table.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/stats.hpp"
#include "simapp/simkrak.hpp"

namespace krak::analyze {

/// A deliberately corrupted model-input bundle used to exercise the
/// linter end to end (tests and `krak_analyze --deck corrupted`). Every
/// field violates at least one documented rule; lint_fixture() must
/// flag all of them and docs/ANALYSIS.md lists the expected findings.
struct CorruptedFixture {
  mesh::InputDeck deck;
  /// Hand-built subdomain statistics that no real PartitionStats would
  /// produce (lost cells, impossible ghost counts, one-sided boundary).
  std::vector<partition::SubdomainInfo> subdomains;
  network::MachineConfig machine;
  core::CostTable costs;
  simapp::SimKrakOptions options;
  std::int32_t pes = 0;
};

[[nodiscard]] CorruptedFixture make_corrupted_fixture();

/// Lint every piece of the fixture (including the hand-built subdomain
/// statistics, which bypass the Partition type on purpose).
[[nodiscard]] DiagnosticReport lint_fixture(const CorruptedFixture& fixture);

}  // namespace krak::analyze
