#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"

namespace krak::analyze {

/// One event of a `kraktrace 1` file.
struct TraceEvent {
  std::int32_t rank = 0;
  double time_s = 0.0;
  std::string kind;
  std::int32_t peer = -1;  ///< isend destination / recv source, else -1
  std::int32_t tag = 0;
  double bytes = 0.0;
};

/// A parsed trace file: the declared rank count plus its events in file
/// order. Returned by parse_trace so drivers can inspect what the
/// linter saw.
struct TraceFile {
  std::int32_t ranks = 0;
  std::vector<TraceEvent> events;
};

/// The `kraktrace 1` event-trace file format (docs/RESILIENCE.md):
///
///   kraktrace 1
///   ranks N
///   op <rank> <t_seconds> <kind> [peer=P] [tag=T] [bytes=B]
///   ...
///   end
///
/// Kinds mirror sim::OpKind: compute, isend, recv, waitall, allreduce,
/// broadcast, gather, record. `#` starts a comment line.
///
/// Lint the trace in `in`, accumulating findings into `report`:
/// structural problems (rules::kTraceFormat), per-rank timestamp
/// monotonicity (rules::kTraceMonotoneTime), rank/peer bounds
/// (rules::kTraceRankBounds), op-kind validity (rules::kTraceOpKind)
/// and matched directed send/recv counts per (from, to, tag)
/// (rules::kTraceSendRecvMatch). Returns the parsed file (events that
/// failed to parse are skipped).
TraceFile lint_trace(std::istream& in, DiagnosticReport& report);

/// Open `path` and lint it; a file that cannot be opened is a
/// rules::kTraceFormat error naming the path and the OS cause.
[[nodiscard]] DiagnosticReport lint_trace_file(const std::string& path);

/// A deliberately corrupted trace exercising every trace rule at least
/// once (the analyze fixture idiom; see make_corrupted_fixture).
[[nodiscard]] std::string corrupted_trace_text();

}  // namespace krak::analyze
