#pragma once

#include <span>

#include "analyze/diagnostic.hpp"
#include "mesh/deck.hpp"
#include "partition/partition.hpp"
#include "partition/stats.hpp"

namespace krak::analyze {

/// Lint a cell-to-PE assignment against its deck, then compute the
/// subdomain statistics and lint those too (cell/material conservation,
/// ghost-node and shared-face invariants, boundary symmetry).
void lint_partition(const mesh::InputDeck& deck,
                    const partition::Partition& partition,
                    DiagnosticReport& report);

/// Lint pre-computed subdomain statistics against the deck. Split out so
/// tests (and trace importers) can feed hand-built or corrupted
/// SubdomainInfo records: the checks are exactly the invariants the
/// communication model of Sections 4.1-4.2 relies on.
///
/// - cell-conservation: per-PE cell totals sum to the deck's cells;
/// - material-conservation: per-PE, per-material counts sum to the
///   deck's per-material counts;
/// - empty-subdomain: no PE owns zero cells;
/// - face-group-sum: per-group boundary faces sum to the boundary total;
/// - ghost-face-consistency: a boundary of f faces has between
///   ceil(f/2) and 2f ghost nodes. An open run of k faces carries k+1
///   nodes (the faces+1 rule), but closed loops and runs meeting at
///   diagonal corners legally fall below f+1, so only the hard
///   topological bounds are errors;
/// - boundary-symmetry: pe a's boundary with b mirrors b's with a in
///   face count and ghost-node total, and the two sides together own at
///   most every shared node (a corner node may be owned by a third PE,
///   so the ownership split itself need not mirror).
void lint_subdomains(const mesh::InputDeck& deck,
                     std::span<const partition::SubdomainInfo> subdomains,
                     DiagnosticReport& report);

}  // namespace krak::analyze
