#include "analyze/lint_cli.hpp"

#include <ostream>

#include "util/error.hpp"

namespace krak::analyze {

int lint_exit_code(LintGateOutcome outcome) {
  return outcome == LintGateOutcome::kExitError ? 1 : 0;
}

LintGateOutcome run_lint_gate(const util::ArgParser& args,
                              const LintInput& input, std::ostream& out) {
  const bool lint_only = args.has("lint-only");
  if (!lint_only && !args.has("lint")) return LintGateOutcome::kProceed;

  const std::string format = args.get_string("lint-format", "text");
  KRAK_REQUIRE(format == "text" || format == "csv",
               "--lint-format must be 'text' or 'csv'");

  const DiagnosticReport report = lint_model(input);
  out << (format == "csv" ? report.to_csv() : report.to_text());

  if (report.has_errors()) return LintGateOutcome::kExitError;
  return lint_only ? LintGateOutcome::kExitClean : LintGateOutcome::kProceed;
}

}  // namespace krak::analyze
