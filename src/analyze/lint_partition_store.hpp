#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"

namespace krak::analyze {

/// A parsed `krakpart 1` partition-store entry (core/partition_store.hpp).
/// Returned by lint_partition_store so drivers can inspect what the
/// linter saw; `assignment[cell]` is -1 where no part claimed the cell.
struct PartitionStoreFile {
  std::uint64_t fingerprint = 0;
  std::int64_t pes = 0;
  std::string method;
  std::uint64_t seed = 0;
  std::int64_t cells = 0;
  std::uint64_t checksum = 0;
  std::vector<std::int64_t> offsets;
  std::vector<std::int32_t> assignment;
};

/// Lint a `krakpart 1` entry from `in`, accumulating findings into
/// `report`: structural problems (rules::kPartitionStoreFormat), CSR
/// offset consistency (rules::kPartitionStoreOffsets), part labels and
/// exactly-once cell coverage (rules::kPartitionStoreBounds), and the
/// embedded assignment checksum (rules::kPartitionStoreChecksum).
///
/// These are the same checks PartitionStore::load applies before
/// trusting a file — the linter exists to explain *why* the store
/// rejected (and evicted) an entry.
PartitionStoreFile lint_partition_store(std::istream& in,
                                        DiagnosticReport& report);

/// Open `path` and lint it; a file that cannot be opened is a
/// rules::kPartitionStoreFormat error naming the path and the OS cause.
[[nodiscard]] DiagnosticReport lint_partition_store_file(
    const std::string& path);

/// A deliberately corrupted entry exercising every partition-store rule
/// at least once (the analyze fixture idiom).
[[nodiscard]] std::string corrupted_partition_store_text();

}  // namespace krak::analyze
