#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace krak::analyze {

/// Severity of a linter finding, ordered from most to least severe.
enum class Severity {
  /// The model inputs are inconsistent; predictions from them are
  /// meaningless and a run should not proceed.
  kError = 0,
  /// The inputs are usable but suspicious (e.g. a degenerate subdomain
  /// or a non-power-of-two collective tree the paper's model only
  /// approximates).
  kWarning = 1,
  /// Informational context attached to the report.
  kInfo = 2,
};

[[nodiscard]] std::string_view severity_name(Severity severity);

/// One linter finding.
///
/// `rule` is the stable machine-readable rule id (see rules.hpp),
/// `component` names the model input the finding is about
/// ("cost-table/phase 3/Foam", "partition/pe 12 -> pe 13"), and
/// `message` explains the violation with the observed values.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule;
  std::string component;
  std::string message;
};

/// A severity-ranked collection of linter findings.
///
/// Findings accumulate in lint order; `sorted()` ranks them most-severe
/// first (stable within a severity, so related findings stay adjacent).
class DiagnosticReport {
 public:
  void add(Severity severity, std::string rule, std::string component,
           std::string message);
  void error(std::string rule, std::string component, std::string message);
  void warning(std::string rule, std::string component, std::string message);
  void info(std::string rule, std::string component, std::string message);

  /// Append every finding of `other`.
  void merge(const DiagnosticReport& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t error_count() const {
    return count(Severity::kError);
  }
  [[nodiscard]] std::size_t warning_count() const {
    return count(Severity::kWarning);
  }
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }

  /// Number of distinct rule ids appearing at `severity` or worse.
  [[nodiscard]] std::size_t distinct_rule_count(
      Severity at_least = Severity::kInfo) const;

  /// True if any finding carries the rule id.
  [[nodiscard]] bool has_rule(std::string_view rule) const;

  /// Findings ranked by severity (errors first), stable within a rank.
  [[nodiscard]] std::vector<Diagnostic> sorted() const;

  /// Human-readable report: one line per finding, severity-ranked, with
  /// a trailing summary line.
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180 CSV with header severity,rule,component,message,
  /// severity-ranked like to_text().
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

std::ostream& operator<<(std::ostream& os, const DiagnosticReport& report);

}  // namespace krak::analyze
