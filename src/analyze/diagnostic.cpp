#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "util/csv.hpp"

namespace krak::analyze {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

void DiagnosticReport::add(Severity severity, std::string rule,
                           std::string component, std::string message) {
  diagnostics_.push_back(Diagnostic{severity, std::move(rule),
                                    std::move(component), std::move(message)});
}

void DiagnosticReport::error(std::string rule, std::string component,
                             std::string message) {
  add(Severity::kError, std::move(rule), std::move(component),
      std::move(message));
}

void DiagnosticReport::warning(std::string rule, std::string component,
                               std::string message) {
  add(Severity::kWarning, std::move(rule), std::move(component),
      std::move(message));
}

void DiagnosticReport::info(std::string rule, std::string component,
                            std::string message) {
  add(Severity::kInfo, std::move(rule), std::move(component),
      std::move(message));
}

void DiagnosticReport::merge(const DiagnosticReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t DiagnosticReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

std::size_t DiagnosticReport::distinct_rule_count(Severity at_least) const {
  std::set<std::string_view> rules;
  for (const Diagnostic& d : diagnostics_) {
    if (static_cast<int>(d.severity) <= static_cast<int>(at_least)) {
      rules.insert(d.rule);
    }
  }
  return rules.size();
}

bool DiagnosticReport::has_rule(std::string_view rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<Diagnostic> DiagnosticReport::sorted() const {
  std::vector<Diagnostic> ranked = diagnostics_;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
  return ranked;
}

std::string DiagnosticReport::to_text() const {
  std::ostringstream os;
  for (const Diagnostic& d : sorted()) {
    os << severity_name(d.severity) << " [" << d.rule << "] " << d.component
       << ": " << d.message << "\n";
  }
  os << "model lint: " << error_count() << " error(s), " << warning_count()
     << " warning(s), " << count(Severity::kInfo) << " note(s)\n";
  return os.str();
}

std::string DiagnosticReport::to_csv() const {
  std::ostringstream os;
  os << "severity,rule,component,message\n";
  for (const Diagnostic& d : sorted()) {
    os << util::csv_escape(std::string(severity_name(d.severity))) << ","
       << util::csv_escape(d.rule) << "," << util::csv_escape(d.component)
       << "," << util::csv_escape(d.message) << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const DiagnosticReport& report) {
  return os << report.to_text();
}

}  // namespace krak::analyze
