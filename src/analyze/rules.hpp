#pragma once

namespace krak::analyze::rules {

/// Stable rule identifiers emitted by the model linter. Each id names
/// one invariant of the paper's model inputs; docs/ANALYSIS.md documents
/// them in detail. Tests and CI grep for these strings — treat them as
/// API.

// --- piecewise cost curves (Section 3, Equation 2) -----------------------

/// Total subgrid cost n * T(phase, material, n) must be non-decreasing
/// in n: more cells can never be cheaper in total.
inline constexpr const char* kCurveTotalMonotone = "curve-total-monotone";
/// A per-cell cost curve should have at most one knee (one significant
/// local maximum); several knees mean noisy or mis-merged calibration.
inline constexpr const char* kCurveKnee = "curve-knee-consistency";
/// Per-cell costs must be positive and finite.
inline constexpr const char* kCurvePositive = "curve-positive";
/// Every (phase, material) pair the model can be asked about needs
/// samples; fewer than two means no interpolation, only a constant.
inline constexpr const char* kCurveCoverage = "curve-sample-coverage";

// --- partition / subdomain statistics (Sections 4.1-4.2) -----------------

/// Sum of per-PE cell counts must equal the deck's cell count.
inline constexpr const char* kCellConservation = "cell-conservation";
/// Per-material cell counts summed over PEs must equal the deck's
/// per-material counts.
inline constexpr const char* kMaterialConservation = "material-conservation";
/// A PE with zero cells wastes a processor and breaks per-PE averages.
inline constexpr const char* kEmptySubdomain = "empty-subdomain";
/// Ghost nodes on a boundary obey the faces+1 rule: a boundary of f
/// shared faces has between f+1 (one contiguous segment) and 2f
/// (f disjoint segments) ghost nodes.
inline constexpr const char* kGhostFace = "ghost-face-consistency";
/// The per-group face counts of a boundary must sum to its total faces.
inline constexpr const char* kFaceGroupSum = "face-group-sum";
/// Boundaries must be symmetric: if pe a lists neighbor b, b must list
/// a with the same face count and mirrored ghost-node ownership.
inline constexpr const char* kBoundarySymmetry = "boundary-symmetry";

// --- machine description / collectives (Section 4.3) ---------------------

/// Node count, PEs per node, and compute speedup must be positive, and
/// the run must fit on the machine.
inline constexpr const char* kMachineShape = "machine-shape";
/// The binary collective tree must cover all PEs: depth d with
/// 2^(d-1) < P <= 2^d; non-power-of-two P is only approximated by the
/// paper's ceil(log2 P) trees.
inline constexpr const char* kTreeCoverage = "tree-coverage";
/// Unit/dimension checks on Tmsg(S) = L(S) + S*TB(S): non-negative
/// terms, Tmsg non-decreasing in S, latency in a physically plausible
/// range, and TB not confused with a total time.
inline constexpr const char* kMessageUnits = "message-cost-units";

// --- input deck (Section 2.1) --------------------------------------------

/// Detonator must lie inside the grid and on a high-explosive cell;
/// a deck with a detonator but no HE gas cannot detonate.
inline constexpr const char* kDeckDetonator = "deck-detonator";
/// Deck shape sanity: materials present, aspect ratio, cell counts.
inline constexpr const char* kDeckShape = "deck-shape";

// --- run options ----------------------------------------------------------

/// SimKrak option ranges (iterations >= 1, etc.).
inline constexpr const char* kOptionsRange = "options-range";

// --- event-trace files (kraktrace 1, lint_trace.hpp) ----------------------

/// Structural validity of a trace file: magic/version header, `ranks`
/// line, well-formed `op` records, terminating `end`.
inline constexpr const char* kTraceFormat = "trace-format";
/// Per-rank timestamps must be non-decreasing: a rank's events are its
/// local history and simulated clocks never run backwards.
inline constexpr const char* kTraceMonotoneTime = "trace-monotone-time";
/// Every rank and peer must lie in [0, ranks) declared by the header.
inline constexpr const char* kTraceRankBounds = "trace-rank-bounds";
/// Op kinds are a closed set (compute/isend/recv/waitall/allreduce/
/// broadcast/gather/record).
inline constexpr const char* kTraceOpKind = "trace-op-kind";
/// Every directed (from, to, tag) send count must equal the matching
/// receive count, or the replayed run would deadlock or drop payloads.
inline constexpr const char* kTraceSendRecvMatch = "trace-send-recv-match";

// --- partition-store files (krakpart 1, core/partition_store.hpp) ---------

/// Structural validity of a partition-store entry: magic/version
/// header, the fixed header fields (fingerprint, pes, method, seed,
/// cells, checksum), known partition method, terminating `end`.
inline constexpr const char* kPartitionStoreFormat = "partition-store-format";
/// CSR offsets must start at 0, end at the cell count, be monotone
/// non-decreasing, and agree with each part line's cell count.
inline constexpr const char* kPartitionStoreOffsets = "partition-store-offsets";
/// Part labels must be the sequence 0..pes-1 and every cell id must lie
/// in [0, cells), be assigned exactly once, and leave no cell unowned.
inline constexpr const char* kPartitionStoreBounds = "partition-store-bounds";
/// The declared checksum must equal FNV-1a over the reconstructed
/// assignment (core::partition_checksum) — the integrity seal the store
/// itself verifies before trusting a file.
inline constexpr const char* kPartitionStoreChecksum =
    "partition-store-checksum";

// --- campaign-journal files (krakjournal 1, core/campaign_journal.hpp) ----

/// Structural validity of a journal record: magic/version header, known
/// record kind, token counts, 16-hex fingerprints, positive attempt
/// numbers, positive pes, well-formed percent-escaping.
inline constexpr const char* kJournalFormat = "journal-format";
/// Every record's trailing checksum must equal FNV-1a over the line
/// body before it — the per-record seal recovery verifies before
/// replaying a scenario's state.
inline constexpr const char* kJournalChecksum = "journal-checksum";
/// Per-scenario record order must follow the writer's state machine:
/// attempt numbers strictly increase, `done`/`failed` close the attempt
/// the latest `running` record opened, and no record may follow a
/// terminal `done` or `quarantined` state.
inline constexpr const char* kJournalStateMachine = "journal-state-machine";
/// A trailing partial line with no newline is a torn append (crash
/// mid-write); recovery truncates it, losing exactly that record.
inline constexpr const char* kJournalTornTail = "journal-torn-tail";

// --- synthetic-deck specs (kraksynth 1, mesh/synthetic.hpp) ----------------

/// Structural validity of a synthetic-deck spec: magic/version header,
/// known keys, well-formed values, no duplicate grid/detonator lines,
/// terminating `end`.
inline constexpr const char* kSyntheticFormat = "synthetic-format";
/// The material mix must be generatable: known material indices, layer
/// fractions in (0, 1] summing to 1, and at least one grid column per
/// layer.
inline constexpr const char* kSyntheticMix = "synthetic-mix";
/// Grid dimensions must be positive and an explicit detonator must lie
/// inside the grid domain.
inline constexpr const char* kSyntheticShape = "synthetic-shape";

// --- fault-spec files (krakfaults 1, fault/plan.hpp) ----------------------

/// Structural validity of a fault-spec file (parse failures).
inline constexpr const char* kFaultSpecFormat = "fault-spec-format";
/// Value ranges: slowdown factor >= 1, drop probability in [0, 1),
/// bandwidth factor in (0, 1], non-negative durations and costs.
inline constexpr const char* kFaultSpecRange = "fault-spec-range";
/// Injection targets must exist: rank within the run, phase within the
/// iteration, no wildcard rank where a single rank is required.
inline constexpr const char* kFaultSpecTarget = "fault-spec-target";

}  // namespace krak::analyze::rules
