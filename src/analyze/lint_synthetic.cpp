#include "analyze/lint_synthetic.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>

#include "analyze/rules.hpp"
#include "mesh/material.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

constexpr std::string_view kMagic = "kraksynth";
constexpr int kVersion = 1;
/// Slack on the layer-fraction sum, matching mesh/synthetic.cpp.
constexpr double kMixTolerance = 1e-6;

std::string line_component(std::size_t line) {
  return "synthetic/line " + std::to_string(line);
}

}  // namespace

SyntheticFile lint_synthetic(std::istream& in, DiagnosticReport& report) {
  SyntheticFile file;
  file.name = "unnamed";

  bool saw_header = false;
  bool saw_grid = false;
  bool saw_end = false;
  double fraction_sum = 0.0;
  double det_x = 0.0;
  double det_y = 0.0;
  std::size_t det_line = 0;

  std::size_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key.front() == '#') continue;

    if (!saw_header) {
      int version = 0;
      std::istringstream hs(line);
      std::string magic;
      if (!(hs >> magic >> version) || magic != kMagic) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "expected header '" + std::string(kMagic) + " " +
                         std::to_string(kVersion) + "', got '" + line + "'");
        return file;
      }
      if (version != kVersion) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "unsupported version " + std::to_string(version) +
                         " (this linter reads version " +
                         std::to_string(kVersion) + ")");
        return file;
      }
      saw_header = true;
      continue;
    }
    if (saw_end) {
      report.error(rules::kSyntheticFormat, line_component(line_number),
                   "content after 'end': '" + line + "'");
      continue;
    }

    if (key == "name") {
      if (!(ls >> file.name)) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "'name' needs a value");
      }
    } else if (key == "grid") {
      if (saw_grid) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "duplicate 'grid' line");
        continue;
      }
      if (!(ls >> file.nx >> file.ny)) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "'grid' needs two integer dimensions, got '" + line +
                         "'");
        continue;
      }
      saw_grid = true;
      if (file.nx <= 0 || file.ny <= 0) {
        report.error(rules::kSyntheticShape, line_component(line_number),
                     "grid dimensions must be positive, got " +
                         std::to_string(file.nx) + " x " +
                         std::to_string(file.ny));
      }
    } else if (key == "layer") {
      std::int64_t index = -1;
      double fraction = 0.0;
      if (!(ls >> index >> fraction)) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "'layer' needs a material index and a fraction, got '" +
                         line + "'");
        continue;
      }
      ++file.layers;
      if (index < 0 ||
          index >= static_cast<std::int64_t>(mesh::kMaterialCount)) {
        report.error(rules::kSyntheticMix, line_component(line_number),
                     "material index " + std::to_string(index) +
                         " outside [0, " +
                         std::to_string(mesh::kMaterialCount) + ")");
      }
      if (fraction <= 0.0 || fraction > 1.0 || !std::isfinite(fraction)) {
        report.error(rules::kSyntheticMix, line_component(line_number),
                     "layer fraction must lie in (0, 1], got " +
                         std::to_string(fraction));
      } else {
        fraction_sum += fraction;
      }
    } else if (key == "detonator") {
      if (file.has_detonator) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "duplicate 'detonator' line");
        continue;
      }
      if (!(ls >> det_x >> det_y)) {
        report.error(rules::kSyntheticFormat, line_component(line_number),
                     "'detonator' needs two coordinates, got '" + line + "'");
        continue;
      }
      file.has_detonator = true;
      det_line = line_number;
    } else if (key == "end") {
      saw_end = true;
    } else {
      report.error(rules::kSyntheticFormat, line_component(line_number),
                   "unknown key '" + key + "'");
    }
  }

  if (!saw_header) {
    report.error(rules::kSyntheticFormat, "synthetic",
                 "empty input, missing '" + std::string(kMagic) + " " +
                     std::to_string(kVersion) + "' header");
    return file;
  }
  if (!saw_end) {
    report.error(rules::kSyntheticFormat, "synthetic", "missing 'end'");
  }
  if (!saw_grid) {
    report.error(rules::kSyntheticFormat, "synthetic", "missing 'grid'");
  }
  if (file.layers == 0) {
    report.error(rules::kSyntheticFormat, "synthetic",
                 "missing 'layer' lines");
  } else if (std::abs(fraction_sum - 1.0) > kMixTolerance) {
    report.error(rules::kSyntheticMix, "synthetic",
                 "layer fractions sum to " + std::to_string(fraction_sum) +
                     ", expected 1");
  }
  if (saw_grid && file.nx > 0 &&
      static_cast<std::size_t>(file.nx) < file.layers) {
    report.error(rules::kSyntheticMix, "synthetic",
                 "only " + std::to_string(file.nx) + " column(s) for " +
                     std::to_string(file.layers) +
                     " layer(s); every layer needs at least one column");
  }
  if (file.has_detonator && saw_grid && file.nx > 0 && file.ny > 0 &&
      (det_x < 0.0 || det_x > static_cast<double>(file.nx) || det_y < 0.0 ||
       det_y > static_cast<double>(file.ny))) {
    std::ostringstream os;
    os << "detonator (" << det_x << ", " << det_y
       << ") outside the grid domain [0, " << file.nx << "] x [0, " << file.ny
       << "]";
    report.error(rules::kSyntheticShape, line_component(det_line), os.str());
  }
  return file;
}

DiagnosticReport lint_synthetic_file(const std::string& path) {
  DiagnosticReport report;
  std::ifstream in(path);
  if (!in) {
    report.error(rules::kSyntheticFormat, "synthetic",
                 "cannot open " + path + ": " + util::errno_message());
    return report;
  }
  (void)lint_synthetic(in, report);
  return report;
}

std::string corrupted_synthetic_text() {
  // One violation per rule; the inline notes name the rule each line
  // trips.
  return "kraksynth 1\n"
         "name corrupted-synthetic\n"
         "grid 1024 128\n"
         "layer 0 0.5\n"
         "# material index outside the catalog      -> synthetic-mix\n"
         "layer 9 0.25\n"
         "# fractions now sum to 1.05               -> synthetic-mix\n"
         "layer 1 0.30\n"
         "# far outside the grid domain             -> synthetic-shape\n"
         "detonator 0 2048\n"
         "# not a key the format defines            -> synthetic-format\n"
         "wedge 3\n"
         "end\n";
}

}  // namespace krak::analyze
