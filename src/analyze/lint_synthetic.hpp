#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "analyze/diagnostic.hpp"

namespace krak::analyze {

/// Summary of a linted `kraksynth 1` synthetic-deck spec
/// (mesh/synthetic.hpp). Returned by lint_synthetic so drivers can
/// report what the linter saw alongside the diagnostics.
struct SyntheticFile {
  std::string name;             ///< declared name ("unnamed" if omitted)
  std::int32_t nx = 0;          ///< grid columns (0 until `grid` parses)
  std::int32_t ny = 0;          ///< grid rows (0 until `grid` parses)
  std::size_t layers = 0;       ///< `layer` lines parsed
  bool has_detonator = false;   ///< an explicit `detonator` line parsed
};

/// Lint a `kraksynth 1` synthetic-deck spec from `in`: header and
/// per-line structure (rules::kSyntheticFormat), the material mix the
/// generator requires — known material indices, fractions in (0, 1]
/// summing to 1, at least one column per layer
/// (rules::kSyntheticMix) — and grid/detonator geometry
/// (rules::kSyntheticShape).
///
/// These mirror the checks read_synthetic and make_synthetic_deck
/// apply, with one deliberate difference: where the loaders throw on
/// the first violation, the linter names every violation so a human can
/// fix a hand-written spec in one pass. Blank lines and `#` comments
/// are skipped (the writer emits neither; annotated fixtures and
/// hand-edited files do).
SyntheticFile lint_synthetic(std::istream& in, DiagnosticReport& report);

/// Open `path` and lint it; a file that cannot be opened is a
/// rules::kSyntheticFormat error naming the path and the OS cause.
[[nodiscard]] DiagnosticReport lint_synthetic_file(const std::string& path);

/// A deliberately corrupted spec exercising every synthetic rule at
/// least once (the analyze fixture idiom).
[[nodiscard]] std::string corrupted_synthetic_text();

}  // namespace krak::analyze
