#pragma once

#include <cstdint>

#include "analyze/diagnostic.hpp"
#include "network/machine.hpp"

namespace krak::analyze {

/// Lint a machine description and an intended run size: positive node /
/// PE / speedup counts, the run fitting on the machine, binary
/// collective-tree coverage of all `pes` ranks (Section 4.3), and the
/// unit checks of the interconnect's Tmsg tables. `pes <= 0` means
/// "whole machine".
void lint_machine(const network::MachineConfig& machine, std::int32_t pes,
                  DiagnosticReport& report);

}  // namespace krak::analyze
