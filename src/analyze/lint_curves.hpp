#pragma once

#include <array>
#include <string_view>

#include "analyze/diagnostic.hpp"
#include "core/cost_table.hpp"
#include "mesh/material.hpp"
#include "network/msgmodel.hpp"

namespace krak::analyze {

/// Which materials a cost table must cover. Defaults to all four; the
/// linter narrows this to the materials present in the deck, since
/// calibration from a deck can only learn costs for materials it saw.
using MaterialMask = std::array<bool, mesh::kMaterialCount>;

inline constexpr MaterialMask kAllMaterials = {true, true, true, true};

/// Lint the calibrated computation-cost database (Equation 2's T()):
/// sample coverage per (phase, required material), positive finite
/// costs, total subgrid cost monotone in cell count, and single-knee
/// consistency of each per-cell curve.
///
/// Exact-zero samples are reported as notes, not errors: non-negative
/// least squares (calibration Method 2) legitimately zeroes a material's
/// column in phases whose cost is material-independent.
void lint_cost_table(const core::CostTable& table, DiagnosticReport& report,
                     const MaterialMask& required = kAllMaterials);

/// Lint a point-to-point message cost model (Equation 4's
/// Tmsg(S) = L(S) + S*TB(S)): non-negative terms, Tmsg non-decreasing in
/// S, and unit/dimension plausibility of L and TB. `component` prefixes
/// the finding locations (e.g. "machine/network").
void lint_message_model(const network::MessageCostModel& model,
                        std::string_view component, DiagnosticReport& report);

}  // namespace krak::analyze
