#include "analyze/lint_journal.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "analyze/rules.hpp"
#include "core/campaign_journal.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

constexpr std::string_view kMagic = "krakjournal 1";

std::string line_component(std::size_t line) {
  return "journal/line " + std::to_string(line);
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

template <typename T>
bool parse_value(std::string_view token, T& value, int base = 10) {
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), value, base);
  return result.ec == std::errc{} && result.ptr == token.data() + token.size();
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

/// Per-fingerprint writer state the linter replays
/// (core/campaign.cpp run_one): each attempt opens with `running` and
/// closes with `done`/`failed`; `quarantined` follows a `failed` (or a
/// resumed quarantine transition) without its own `running`; `done` and
/// `quarantined` are terminal.
struct ScenarioState {
  std::uint32_t max_attempt = 0;
  std::uint32_t open_attempt = 0;  ///< valid when `open`
  bool open = false;               ///< a `running` record awaits its outcome
  bool done = false;
  bool quarantined = false;
};

}  // namespace

JournalFile lint_journal(std::istream& in, DiagnosticReport& report) {
  JournalFile file;
  // Slurp the stream: torn-tail detection needs to see whether the last
  // byte is a newline, which getline cannot report.
  std::string text;
  {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  std::map<std::uint64_t, ScenarioState> scenarios;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    const std::size_t line_end = text.find('\n', pos);
    if (line_end == std::string::npos) {
      file.torn_tail = true;
      report.warning(rules::kJournalTornTail, line_component(line_number + 1),
                     "trailing partial record without a newline (" +
                         std::to_string(text.size() - pos) +
                         " byte(s)): a torn append that recovery truncates");
      break;
    }
    const std::string_view line(text.data() + pos, line_end - pos);
    pos = line_end + 1;
    ++line_number;

    // Blank lines and `#` comments: the writer emits neither, but
    // annotated fixtures and hand-edited files do.
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string_view::npos || line[start] == '#') continue;

    if (!saw_header) {
      if (line != kMagic) {
        report.error(rules::kJournalFormat, line_component(line_number),
                     "expected header '" + std::string(kMagic) + "', got '" +
                         std::string(line) + "'");
        return file;
      }
      saw_header = true;
      continue;
    }

    const std::vector<std::string_view> tokens = split_tokens(line);
    if (tokens.size() < 2) {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "record needs at least a kind and a checksum, got '" +
                       std::string(line) + "'");
      continue;
    }
    std::uint64_t declared = 0;
    if (tokens.back().size() != 16 ||
        !parse_value(tokens.back(), declared, 16)) {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "last token must be the 16-hex-digit checksum, got '" +
                       std::string(tokens.back()) + "'");
      continue;
    }
    const std::uint64_t actual =
        core::journal_checksum(line.substr(0, line.rfind(' ')));
    if (actual != declared) {
      report.error(rules::kJournalChecksum, line_component(line_number),
                   "declared checksum " + std::string(tokens.back()) +
                       " does not match record checksum " + hex16(actual) +
                       "; recovery truncates the journal here");
      continue;  // the fields below the seal cannot be trusted
    }
    ++file.records;

    enum class Kind { kRunning, kDone, kFailed, kQuarantined };
    Kind kind = Kind::kRunning;
    std::size_t expected = 0;
    if (tokens[0] == "running") {
      kind = Kind::kRunning;
      expected = 4;
    } else if (tokens[0] == "done") {
      kind = Kind::kDone;
      expected = 8;
    } else if (tokens[0] == "failed") {
      kind = Kind::kFailed;
      expected = 6;
    } else if (tokens[0] == "quarantined") {
      kind = Kind::kQuarantined;
      expected = 5;
    } else {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "unknown record kind '" + std::string(tokens[0]) + "'");
      continue;
    }
    if (tokens.size() != expected) {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "'" + std::string(tokens[0]) + "' record needs " +
                       std::to_string(expected) + " token(s), got " +
                       std::to_string(tokens.size()));
      continue;
    }
    std::uint64_t fingerprint = 0;
    if (tokens[1].size() != 16 || !parse_value(tokens[1], fingerprint, 16)) {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "fingerprint must be 16 hex digits, got '" +
                       std::string(tokens[1]) + "'");
      continue;
    }
    std::uint32_t attempt = 0;
    if (!parse_value(tokens[2], attempt) || attempt == 0) {
      report.error(rules::kJournalFormat, line_component(line_number),
                   "attempt must be a positive integer, got '" +
                       std::string(tokens[2]) + "'");
      continue;
    }
    bool fields_ok = true;
    switch (kind) {
      case Kind::kRunning:
        break;
      case Kind::kDone: {
        if (!core::journal_unescape(tokens[3]).has_value()) {
          report.error(rules::kJournalFormat, line_component(line_number),
                       "malformed percent-escaping in problem token '" +
                           std::string(tokens[3]) + "'");
          fields_ok = false;
        }
        std::int32_t pes = 0;
        if (!parse_value(tokens[4], pes) || pes <= 0) {
          report.error(rules::kJournalFormat, line_component(line_number),
                       "pes must be a positive integer, got '" +
                           std::string(tokens[4]) + "'");
          fields_ok = false;
        }
        std::uint64_t bits = 0;
        for (const std::size_t i : {std::size_t{5}, std::size_t{6}}) {
          if (tokens[i].size() != 16 || !parse_value(tokens[i], bits, 16)) {
            report.error(rules::kJournalFormat, line_component(line_number),
                         "measured/predicted must be 16-hex IEEE-754 bit "
                         "patterns, got '" +
                             std::string(tokens[i]) + "'");
            fields_ok = false;
          }
        }
        break;
      }
      case Kind::kFailed: {
        if (tokens[3] != "transient" && tokens[3] != "deterministic") {
          report.error(rules::kJournalFormat, line_component(line_number),
                       "failure class must be 'transient' or "
                       "'deterministic', got '" +
                           std::string(tokens[3]) + "'");
          fields_ok = false;
        }
        if (!core::journal_unescape(tokens[4]).has_value()) {
          report.error(rules::kJournalFormat, line_component(line_number),
                       "malformed percent-escaping in error token '" +
                           std::string(tokens[4]) + "'");
          fields_ok = false;
        }
        break;
      }
      case Kind::kQuarantined: {
        if (!core::journal_unescape(tokens[3]).has_value()) {
          report.error(rules::kJournalFormat, line_component(line_number),
                       "malformed percent-escaping in error token '" +
                           std::string(tokens[3]) + "'");
          fields_ok = false;
        }
        break;
      }
    }
    if (!fields_ok) continue;

    // Writer state machine (core/campaign.cpp run_one).
    ScenarioState& state = scenarios[fingerprint];
    if (state.done || state.quarantined) {
      report.error(rules::kJournalStateMachine, line_component(line_number),
                   "record for scenario " + std::string(tokens[1]) +
                       " after its terminal '" +
                       (state.done ? std::string("done")
                                   : std::string("quarantined")) +
                       "' state");
    }
    switch (kind) {
      case Kind::kRunning:
        if (attempt <= state.max_attempt) {
          report.error(rules::kJournalStateMachine,
                       line_component(line_number),
                       "attempt numbers must strictly increase: attempt " +
                           std::to_string(attempt) + " after attempt " +
                           std::to_string(state.max_attempt));
        }
        state.open = true;
        state.open_attempt = attempt;
        break;
      case Kind::kDone:
      case Kind::kFailed:
        if (!state.open || state.open_attempt != attempt) {
          report.error(
              rules::kJournalStateMachine, line_component(line_number),
              "'" + std::string(tokens[0]) + "' for attempt " +
                  std::to_string(attempt) +
                  (state.open ? " does not close the open attempt " +
                                    std::to_string(state.open_attempt)
                              : " has no open 'running' record"));
        }
        state.open = false;
        if (kind == Kind::kDone) state.done = true;
        break;
      case Kind::kQuarantined:
        // Follows a `failed` record (or a resumed quarantine
        // transition) — no `running` of its own.
        state.open = false;
        state.quarantined = true;
        break;
    }
    state.max_attempt = std::max(state.max_attempt, attempt);
  }

  if (!saw_header) {
    report.error(rules::kJournalFormat, "journal",
                 "empty input, missing '" + std::string(kMagic) + "' header");
    return file;
  }

  file.scenarios = scenarios.size();
  for (const auto& [fingerprint, state] : scenarios) {
    (void)fingerprint;
    if (state.done) ++file.completed;
    if (state.quarantined) ++file.quarantined;
  }
  return file;
}

DiagnosticReport lint_journal_file(const std::string& path) {
  DiagnosticReport report;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    report.error(rules::kJournalFormat, "journal",
                 "cannot open " + path + ": " + util::errno_message());
    return report;
  }
  (void)lint_journal(in, report);
  return report;
}

std::string corrupted_journal_text() {
  // One violation per rule; the inline notes name the rule each line
  // trips. Checksums are computed here so only the zeroed one fails.
  const auto sealed = [](std::string body) {
    body += ' ';
    body += hex16(core::journal_checksum(
        std::string_view(body).substr(0, body.size() - 1)));
    body += '\n';
    return body;
  };
  const std::string measured = hex16(std::bit_cast<std::uint64_t>(119.4));
  const std::string predicted = hex16(std::bit_cast<std::uint64_t>(121.9));

  std::string text = "krakjournal 1\n";
  text += sealed("running 00000000000000aa 1");
  text += sealed("done 00000000000000aa 1 table5/medium/64 64 " + measured +
                 " " + predicted);
  text += "# the scenario above already completed   -> journal-state-machine\n";
  text += sealed("running 00000000000000aa 2");
  text += "# zeroed seal cannot match the body      -> journal-checksum\n";
  text += "failed 00000000000000ab 1 transient boom 0000000000000000\n";
  text += "# not a record kind the writer emits     -> journal-format\n";
  text += sealed("paused 00000000000000ac 1");
  text += "# outcome with no open running attempt   -> journal-state-machine\n";
  text += sealed("failed 00000000000000ad 1 deterministic nan%20cells");
  text += "# no trailing newline: a torn append     -> journal-torn-tail\n";
  text += "running 00000000000000ae";
  return text;
}

}  // namespace krak::analyze
