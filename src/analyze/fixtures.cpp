#include "analyze/fixtures.hpp"

#include <utility>

#include "analyze/lint_curves.hpp"
#include "analyze/lint_deck.hpp"
#include "analyze/lint_machine.hpp"
#include "analyze/lint_partition.hpp"
#include "analyze/linter.hpp"
#include "util/piecewise.hpp"

namespace krak::analyze {

namespace {

/// 8x4 deck of foam and aluminum with no HE gas and a detonator far
/// outside the domain: trips deck-detonator twice (outside + no HE).
mesh::InputDeck make_broken_deck() {
  const std::int32_t nx = 8;
  const std::int32_t ny = 4;
  std::vector<mesh::Material> materials(
      static_cast<std::size_t>(nx) * ny, mesh::Material::kFoam);
  for (std::size_t i = 0; i < materials.size() / 2; ++i) {
    materials[i] = mesh::Material::kAluminumInner;
  }
  return mesh::InputDeck("corrupted", mesh::Grid(nx, ny),
                         std::move(materials),
                         mesh::Point{1000.0, 1000.0});
}

/// Subdomain records violating conservation, the faces+1 rule, the
/// face-group sum, and boundary symmetry — corruption a trace importer
/// or a buggy partitioner could realistically produce.
std::vector<partition::SubdomainInfo> make_broken_subdomains() {
  partition::SubdomainInfo pe0;
  pe0.pe = 0;
  pe0.total_cells = 20;  // per-material sums to 16: material-conservation
  pe0.cells_per_material = {0, 10, 6, 0};
  partition::NeighborBoundary boundary;
  boundary.neighbor = 1;
  boundary.total_faces = 4;
  boundary.faces_per_group = {1, 1, 1};  // sums to 3: face-group-sum
  boundary.ghost_nodes_local = 1;  // 1 ghost on 4 faces: ghost-face bound
  boundary.ghost_nodes_remote = 0;
  pe0.neighbors.push_back(boundary);

  partition::SubdomainInfo pe1;
  pe1.pe = 1;
  pe1.total_cells = 8;  // 20 + 8 != 32 deck cells: cell-conservation
  pe1.cells_per_material = {0, 4, 4, 0};
  // pe1 lists no boundary back to pe0: boundary-symmetry.

  std::vector<partition::SubdomainInfo> subdomains;
  subdomains.push_back(std::move(pe0));
  subdomains.push_back(std::move(pe1));
  return subdomains;
}

/// Machine with an impossible shape and an interconnect whose Tmsg
/// decreases with message size (per-byte table loaded with totals).
network::MachineConfig make_broken_machine() {
  const std::vector<double> size_points = {1.0, 1024.0};
  const std::vector<double> latency_seconds = {5.0, 5.0};  // 5 "s": unit mix-up
  const std::vector<double> per_byte_seconds = {1e-2, 1e-9};
  const util::PiecewiseLinear latency(size_points, latency_seconds);
  const util::PiecewiseLinear byte_cost(size_points, per_byte_seconds);
  network::MachineConfig machine;
  machine.name = "corrupted";
  machine.nodes = 4;
  machine.pes_per_node = 0;      // machine-shape
  machine.compute_speedup = -1;  // machine-shape
  machine.network = network::MessageCostModel(latency, byte_cost);
  return machine;
}

/// Cost table whose only curves shrink in total cost (monotonicity) and
/// oscillate (knees), with every other required pair missing (coverage).
core::CostTable make_broken_costs() {
  core::CostTable costs;
  // Total cost: 1e-4 s at 100 cells, 1e-5 s at 1000 cells — impossible.
  costs.add_sample(1, mesh::Material::kHEGas, 100.0, 1e-6);
  costs.add_sample(1, mesh::Material::kHEGas, 1000.0, 1e-8);
  // Two prominent knees (totals stay monotone so only the knee fires).
  const double xs[] = {1.0, 10.0, 100.0, 1000.0, 10000.0};
  const double ys[] = {1e-6, 2e-6, 1e-6, 2e-6, 1e-6};
  for (std::size_t i = 0; i < 5; ++i) {
    costs.add_sample(3, mesh::Material::kAluminumInner, xs[i], ys[i]);
  }
  return costs;
}

}  // namespace

CorruptedFixture make_corrupted_fixture() {
  CorruptedFixture fixture{make_broken_deck(), make_broken_subdomains(),
                           make_broken_machine(), make_broken_costs(),
                           simapp::SimKrakOptions{}, /*pes=*/100};
  fixture.options.iterations = 0;  // options-range
  return fixture;
}

DiagnosticReport lint_fixture(const CorruptedFixture& fixture) {
  LintInput input;
  input.deck = &fixture.deck;
  input.machine = &fixture.machine;
  input.costs = &fixture.costs;
  input.options = &fixture.options;
  input.pes = fixture.pes;
  DiagnosticReport report = lint_model(input);
  lint_subdomains(fixture.deck, fixture.subdomains, report);
  return report;
}

}  // namespace krak::analyze
