#include "analyze/lint_faults.hpp"

#include <sstream>

#include "analyze/rules.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

std::string component(const char* directive, std::size_t index) {
  return std::string("faults/") + directive + " " + std::to_string(index);
}

/// Rank targets: `kAllRanks` is fine where wildcards are allowed,
/// otherwise the rank must exist (when a rank count is known).
void check_rank(DiagnosticReport& report, const std::string& where,
                std::int32_t rank, std::int32_t ranks, bool wildcard_ok) {
  if (rank == fault::kAllRanks) {
    if (!wildcard_ok) {
      report.error(rules::kFaultSpecTarget, where,
                   "rank=* is not allowed here; name one rank");
    }
    return;
  }
  if (rank < 0) {
    report.error(rules::kFaultSpecTarget, where,
                 "rank " + std::to_string(rank) + " is negative");
  } else if (ranks > 0 && rank >= ranks) {
    report.error(rules::kFaultSpecTarget, where,
                 "rank " + std::to_string(rank) + " outside [0, " +
                     std::to_string(ranks) + ")");
  }
}

void check_phase(DiagnosticReport& report, const std::string& where,
                 std::int32_t phase, std::int32_t iteration,
                 std::int32_t phases) {
  if (phase < 1 || (phases > 0 && phase > phases)) {
    std::ostringstream os;
    os << "phase " << phase << " outside [1, "
       << (phases > 0 ? std::to_string(phases) : std::string("phase count"))
       << "]";
    report.error(rules::kFaultSpecTarget, where, os.str());
  }
  if (iteration < 0) {
    report.error(rules::kFaultSpecTarget, where,
                 "iteration " + std::to_string(iteration) + " is negative");
  }
}

void range_error(DiagnosticReport& report, const std::string& where,
                 const std::string& what, double value) {
  std::ostringstream os;
  os << what << " (got " << value << ")";
  report.error(rules::kFaultSpecRange, where, os.str());
}

}  // namespace

DiagnosticReport lint_faults(const fault::FaultPlan& plan, std::int32_t ranks,
                             std::int32_t phases_per_iteration) {
  DiagnosticReport report;
  for (std::size_t i = 0; i < plan.slowdowns.size(); ++i) {
    const fault::ComputeSlowdown& s = plan.slowdowns[i];
    const std::string where = component("slowdown", i);
    check_rank(report, where, s.rank, ranks, /*wildcard_ok=*/true);
    if (s.factor < 1.0) {
      range_error(report, where, "slowdown factor must be >= 1", s.factor);
    }
  }
  for (std::size_t i = 0; i < plan.noise.size(); ++i) {
    const fault::NoiseBurst& n = plan.noise[i];
    const std::string where = component("noise", i);
    check_rank(report, where, n.rank, ranks, /*wildcard_ok=*/true);
    if (n.period_s <= 0.0) {
      range_error(report, where, "noise period must be positive", n.period_s);
    }
    if (n.duration_s < 0.0) {
      range_error(report, where, "noise duration must be non-negative",
                  n.duration_s);
    }
  }
  for (std::size_t i = 0; i < plan.delays.size(); ++i) {
    const fault::OneOffDelay& d = plan.delays[i];
    const std::string where = component("delay", i);
    check_rank(report, where, d.rank, ranks, /*wildcard_ok=*/false);
    check_phase(report, where, d.phase, d.iteration, phases_per_iteration);
    if (d.seconds < 0.0) {
      range_error(report, where, "delay seconds must be non-negative",
                  d.seconds);
    }
  }
  for (std::size_t i = 0; i < plan.message_faults.size(); ++i) {
    const fault::MessageFaultModel& m = plan.message_faults[i];
    const std::string where = component("messages", i);
    check_rank(report, where, m.rank, ranks, /*wildcard_ok=*/true);
    if (m.drop_probability < 0.0 || m.drop_probability >= 1.0) {
      range_error(report, where, "drop probability must be in [0, 1)",
                  m.drop_probability);
    }
    if (m.extra_delay_s < 0.0) {
      range_error(report, where, "extra delay must be non-negative",
                  m.extra_delay_s);
    }
    if (m.retransmit_timeout_s < 0.0) {
      range_error(report, where, "retransmit timeout must be non-negative",
                  m.retransmit_timeout_s);
    }
    if (m.max_retries < 0) {
      range_error(report, where, "max retries must be non-negative",
                  m.max_retries);
    }
  }
  for (std::size_t i = 0; i < plan.degrades.size(); ++i) {
    const fault::NicDegrade& d = plan.degrades[i];
    const std::string where = component("degrade", i);
    check_rank(report, where, d.rank, ranks, /*wildcard_ok=*/true);
    if (d.bandwidth_factor <= 0.0 || d.bandwidth_factor > 1.0) {
      range_error(report, where, "bandwidth factor must be in (0, 1]",
                  d.bandwidth_factor);
    }
  }
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const fault::RankCrash& c = plan.crashes[i];
    const std::string where = component("crash", i);
    check_rank(report, where, c.rank, ranks, /*wildcard_ok=*/false);
    check_phase(report, where, c.phase, c.iteration, phases_per_iteration);
    if (c.restart_s < 0.0) {
      range_error(report, where, "restart cost must be non-negative",
                  c.restart_s);
    }
    if (c.checkpoint_interval_s < 0.0) {
      range_error(report, where, "checkpoint interval must be non-negative",
                  c.checkpoint_interval_s);
    }
  }
  if (plan.max_sim_seconds < 0.0) {
    range_error(report, "faults/watchdog",
                "watchdog bound must be non-negative", plan.max_sim_seconds);
  }
  if (plan.empty()) {
    report.info(rules::kFaultSpecRange, "faults",
                "plan is empty: no faults will be injected");
  }
  return report;
}

DiagnosticReport lint_fault_file(const std::string& path, std::int32_t ranks,
                                 std::int32_t phases_per_iteration) {
  fault::FaultPlan plan;
  try {
    plan = fault::load_fault_plan(path);
  } catch (const util::KrakError& error) {
    DiagnosticReport report;
    report.error(rules::kFaultSpecFormat, "faults", error.what());
    return report;
  }
  return lint_faults(plan, ranks, phases_per_iteration);
}

std::string corrupted_fault_spec_text() {
  // Parses cleanly, but every directive violates a range or target rule.
  return "krakfaults 1\n"
         "seed 7\n"
         "# a slowdown below 1 would speed the rank up  -> fault-spec-range\n"
         "slowdown rank=0 factor=0.5\n"
         "# certain drop is not a probability in [0,1)  -> fault-spec-range\n"
         "messages rank=* drop=1.5\n"
         "# bandwidth factors cannot exceed 1           -> fault-spec-range\n"
         "degrade rank=0 bandwidth=2.0\n"
         "# the Krak iteration has 15 phases            -> fault-spec-target\n"
         "delay rank=0 phase=99 iter=0 seconds=0.01\n"
         "# crashes need one concrete rank              -> fault-spec-target\n"
         "crash rank=* phase=1 iter=0 restart=1.0\n"
         "end\n";
}

}  // namespace krak::analyze
