#include "analyze/lint_curves.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/rules.hpp"
#include "simapp/costmodel.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

/// Relative prominence a local maximum needs before it counts as a knee;
/// calibration noise (~1%) must stay below this.
constexpr double kKneeProminence = 0.02;

/// Relative tolerance for the total-cost monotonicity comparison.
constexpr double kMonotoneSlack = 1e-9;

std::string curve_component(std::int32_t phase, mesh::Material material) {
  std::ostringstream os;
  os << "cost-table/phase " << phase << "/"
     << mesh::material_short_name(material);
  return os.str();
}

void lint_curve(std::int32_t phase, mesh::Material material,
                std::span<const double> cells, std::span<const double> costs,
                DiagnosticReport& report) {
  const std::string where = curve_component(phase, material);

  std::size_t zero_samples = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const double y = util::span_at(costs, i);
    if (!std::isfinite(y) || y < 0.0) {
      std::ostringstream os;
      os << "per-cell cost " << y << " at " << util::span_at(cells, i)
         << " cells is not a non-negative finite time";
      report.error(rules::kCurvePositive, where, os.str());
      return;  // downstream checks are meaningless on a broken curve
    }
    if (y == 0.0) ++zero_samples;
  }
  if (zero_samples > 0) {
    std::ostringstream os;
    os << zero_samples << " zero-cost sample(s); non-negative least squares "
       << "attributed no time to this material at those scales";
    report.info(rules::kCurvePositive, where, os.str());
  }

  if (costs.size() < 2) {
    report.warning(rules::kCurveCoverage, where,
                   "only one sample; the curve degenerates to a constant "
                   "and cannot capture the knee");
    return;
  }

  // The checks below compare adjacent strictly-positive samples; zeroed
  // NNLS columns carry no cost information and are skipped.
  std::vector<std::size_t> positive;
  positive.reserve(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (util::span_at(costs, i) > 0.0) positive.push_back(i);
  }

  // Total subgrid cost n*T(n) must not decrease as n grows.
  for (std::size_t k = 1; k < positive.size(); ++k) {
    const std::size_t lo = positive[k - 1];
    const std::size_t hi = positive[k];
    const double total_lo = util::span_at(cells, lo) * util::span_at(costs, lo);
    const double total_hi = util::span_at(cells, hi) * util::span_at(costs, hi);
    if (total_hi < total_lo * (1.0 - kMonotoneSlack)) {
      std::ostringstream os;
      os << "total cost shrinks with more cells: " << total_lo << " s at "
         << util::span_at(cells, lo) << " cells vs " << total_hi << " s at "
         << util::span_at(cells, hi) << " cells";
      report.error(rules::kCurveTotalMonotone, where, os.str());
      break;  // one witness per curve keeps the report readable
    }
  }

  // Knee consistency: at most one significant local maximum.
  std::size_t knees = 0;
  for (std::size_t k = 1; k + 1 < positive.size(); ++k) {
    const double left = util::span_at(costs, positive[k - 1]);
    const double mid = util::span_at(costs, positive[k]);
    const double right = util::span_at(costs, positive[k + 1]);
    if (mid > left * (1.0 + kKneeProminence) &&
        mid > right * (1.0 + kKneeProminence)) {
      ++knees;
    }
  }
  if (knees > 1) {
    std::ostringstream os;
    os << knees << " distinct knees in the per-cell curve; expected at most "
       << "one (noisy or mis-merged calibration samples?)";
    report.warning(rules::kCurveKnee, where, os.str());
  }
}

}  // namespace

void lint_cost_table(const core::CostTable& table, DiagnosticReport& report,
                     const MaterialMask& required) {
  for (std::int32_t phase = 1; phase <= simapp::kPhaseCount; ++phase) {
    for (mesh::Material material : mesh::all_materials()) {
      const bool needed = required[mesh::material_index(material)];
      if (!table.has_samples(phase, material)) {
        if (needed) {
          report.error(rules::kCurveCoverage, curve_component(phase, material),
                       "no calibration samples; the model cannot evaluate "
                       "this (phase, material) pair");
        }
        continue;
      }
      lint_curve(phase, material, table.sample_cells(phase, material),
                 table.sample_costs(phase, material), report);
    }
  }
}

void lint_message_model(const network::MessageCostModel& model,
                        std::string_view component, DiagnosticReport& report) {
  const std::string where(component);

  // Probe the paper's relevant size range: collective payloads (4 B) to
  // large-subgrid boundary exchanges (~1 MB), geometrically spaced so
  // every plausible breakpoint region is visited.
  double previous_time = -1.0;
  bool monotone_reported = false;
  for (double bytes = 1.0; bytes <= 4.0 * 1024.0 * 1024.0; bytes *= 2.0) {
    const double latency = model.latency(bytes);
    const double per_byte = model.byte_cost(bytes);
    const double time = model.message_time(bytes);
    if (!std::isfinite(latency) || latency < 0.0 || !std::isfinite(per_byte) ||
        per_byte < 0.0) {
      std::ostringstream os;
      os << "L(" << bytes << ") = " << latency << " s, TB(" << bytes
         << ") = " << per_byte << " s/B; both terms must be non-negative "
         << "finite times";
      report.error(rules::kMessageUnits, where, os.str());
      return;
    }
    if (!monotone_reported && time < previous_time * (1.0 - 1e-12)) {
      std::ostringstream os;
      os << "Tmsg is not non-decreasing: Tmsg(" << bytes << ") = " << time
         << " s is below Tmsg(" << bytes / 2.0 << ") = " << previous_time
         << " s";
      report.error(rules::kMessageUnits, where, os.str());
      monotone_reported = true;
    }
    previous_time = time;
  }

  // Unit plausibility: a start-up cost outside [1 ns, 1 s] almost always
  // means the table was loaded in the wrong unit (us vs s).
  const double l8 = model.latency(8.0);
  if (l8 > 1.0 || (l8 > 0.0 && l8 < 1e-9)) {
    std::ostringstream os;
    os << "L(8 B) = " << l8 << " s is outside [1 ns, 1 s]; latency table "
       << "probably loaded in the wrong unit";
    report.warning(rules::kMessageUnits, where, os.str());
  }
  // Dimension check: TB is a per-byte cost. If one byte "costs" more
  // than the whole start-up latency, a total message time was most
  // likely stored where a per-byte cost belongs.
  const double tb8 = model.byte_cost(8.0);
  if (l8 > 0.0 && tb8 > l8) {
    std::ostringstream os;
    os << "TB(8 B) = " << tb8 << " s/B exceeds L(8 B) = " << l8
       << " s; the per-byte table looks like total times (unit mix-up)";
    report.warning(rules::kMessageUnits, where, os.str());
  }
}

}  // namespace krak::analyze
