#include "analyze/lint_machine.hpp"

#include <cmath>
#include <sstream>

#include "analyze/lint_curves.hpp"
#include "analyze/rules.hpp"
#include "network/collectives.hpp"

namespace krak::analyze {

void lint_machine(const network::MachineConfig& machine, std::int32_t pes,
                  DiagnosticReport& report) {
  const std::string where = machine.name.empty()
                                ? std::string("machine")
                                : "machine/" + machine.name;

  bool shape_ok = true;
  if (machine.nodes <= 0) {
    std::ostringstream os;
    os << "node count " << machine.nodes << " must be positive";
    report.error(rules::kMachineShape, where, os.str());
    shape_ok = false;
  }
  if (machine.pes_per_node <= 0) {
    std::ostringstream os;
    os << "PEs per node " << machine.pes_per_node << " must be positive";
    report.error(rules::kMachineShape, where, os.str());
    shape_ok = false;
  }
  if (!(machine.compute_speedup > 0.0) ||
      !std::isfinite(machine.compute_speedup)) {
    std::ostringstream os;
    os << "compute speedup " << machine.compute_speedup
       << " must be a positive finite factor";
    report.error(rules::kMachineShape, where, os.str());
    shape_ok = false;
  }

  const std::int32_t run_pes = pes > 0 && shape_ok
                                   ? pes
                                   : (shape_ok ? machine.total_pes() : pes);
  if (shape_ok && pes > machine.total_pes()) {
    std::ostringstream os;
    os << "run requests " << pes << " PEs but the machine has only "
       << machine.total_pes() << " (" << machine.nodes << " nodes x "
       << machine.pes_per_node << ")";
    report.error(rules::kMachineShape, where, os.str());
  }

  // Collective-tree coverage (Equations 8-10 charge ceil(log2 P) message
  // steps): the depth-d binary tree must reach every rank, and depth
  // d-1 must not already suffice.
  if (run_pes >= 1) {
    const std::int32_t depth = network::CollectiveModel::tree_depth(run_pes);
    const std::int64_t reach = std::int64_t{1} << depth;
    const std::int64_t prev_reach =
        depth > 0 ? (std::int64_t{1} << (depth - 1)) : 0;
    if (reach < run_pes || (run_pes > 1 && prev_reach >= run_pes)) {
      std::ostringstream os;
      os << "binary tree of depth " << depth << " reaches " << reach
         << " ranks; it does not tightly cover " << run_pes << " PEs";
      report.error(rules::kTreeCoverage, where, os.str());
    } else if ((run_pes & (run_pes - 1)) != 0) {
      std::ostringstream os;
      os << run_pes << " PEs is not a power of two; the ceil(log2 P) tree "
         << "of the paper overcharges the last tree level";
      report.info(rules::kTreeCoverage, where, os.str());
    }
  }

  lint_message_model(machine.network, where + "/network", report);
}

}  // namespace krak::analyze
