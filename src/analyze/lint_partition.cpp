#include "analyze/lint_partition.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "analyze/rules.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

std::string pe_component(partition::PeId pe) {
  std::ostringstream os;
  os << "partition/pe " << pe;
  return os.str();
}

std::string boundary_component(partition::PeId pe, partition::PeId neighbor) {
  std::ostringstream os;
  os << "partition/pe " << pe << " -> pe " << neighbor;
  return os.str();
}

void lint_boundary(const partition::SubdomainInfo& sub,
                   const partition::NeighborBoundary& boundary,
                   DiagnosticReport& report) {
  const std::string where = boundary_component(sub.pe, boundary.neighbor);

  if (boundary.neighbor < 0) {
    report.error(rules::kBoundarySymmetry, where,
                 "boundary references a negative neighbor PE id");
    return;
  }

  std::int64_t group_sum = 0;
  for (std::int64_t faces : boundary.faces_per_group) group_sum += faces;
  if (group_sum != boundary.total_faces) {
    std::ostringstream os;
    os << "per-group face counts sum to " << group_sum
       << " but the boundary reports " << boundary.total_faces
       << " total faces";
    report.error(rules::kFaceGroupSum, where, os.str());
  }

  // The faces+1 rule of Section 4.2: an open run of k shared faces
  // carries k+1 ghost nodes, so f faces suggest ~f+1 ghosts.  Real
  // boundaries can fall below that — a closed loop of f faces (an
  // enclosed subdomain) has exactly f nodes, and two runs meeting at a
  // diagonal corner share an endpoint — but each node terminates at
  // most four boundary faces, so the hard bounds are [ceil(f/2), 2f].
  const std::int64_t faces = boundary.total_faces;
  const std::int64_t ghosts = boundary.total_ghost_nodes();
  if (faces <= 0) {
    report.error(rules::kGhostFace, where,
                 "boundary with no shared faces should not exist");
  } else if (ghosts < (faces + 1) / 2 || ghosts > 2 * faces) {
    std::ostringstream os;
    os << ghosts << " ghost nodes on a boundary of " << faces
       << " shared faces is topologically impossible (each node joins at"
       << " most four faces, so between " << (faces + 1) / 2 << " and "
       << 2 * faces << " are expected)";
    report.error(rules::kGhostFace, where, os.str());
  }

  if (boundary.multi_material_ghost_nodes > ghosts) {
    std::ostringstream os;
    os << boundary.multi_material_ghost_nodes
       << " multi-material ghost nodes exceed the boundary's " << ghosts
       << " ghost nodes";
    report.error(rules::kGhostFace, where, os.str());
  }
}

}  // namespace

void lint_subdomains(const mesh::InputDeck& deck,
                     std::span<const partition::SubdomainInfo> subdomains,
                     DiagnosticReport& report) {
  // Conservation across PEs (Equation 2 sums per-PE, per-material cell
  // counts; a lost or duplicated cell silently skews every prediction).
  std::int64_t total_cells = 0;
  std::array<std::int64_t, mesh::kMaterialCount> material_cells{};
  for (const partition::SubdomainInfo& sub : subdomains) {
    total_cells += sub.total_cells;
    std::int64_t material_sum = 0;
    for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
      material_cells[m] += sub.cells_per_material[m];
      material_sum += sub.cells_per_material[m];
    }
    if (material_sum != sub.total_cells) {
      std::ostringstream os;
      os << "per-material cells sum to " << material_sum
         << " but the subdomain reports " << sub.total_cells << " cells";
      report.error(rules::kMaterialConservation, pe_component(sub.pe),
                   os.str());
    }
    if (sub.total_cells == 0) {
      report.warning(rules::kEmptySubdomain, pe_component(sub.pe),
                     "subdomain owns no cells; the PE idles every phase");
    }
  }

  if (total_cells != deck.grid().num_cells()) {
    std::ostringstream os;
    os << "subdomains hold " << total_cells << " cells but the deck has "
       << deck.grid().num_cells();
    report.error(rules::kCellConservation, "partition", os.str());
  }

  const auto deck_materials = deck.material_cell_counts();
  for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
    if (material_cells[m] != deck_materials[m]) {
      std::ostringstream os;
      os << "subdomains hold " << material_cells[m] << " "
         << mesh::material_short_name(mesh::material_from_index(m))
         << " cells but the deck has " << deck_materials[m];
      report.error(rules::kMaterialConservation, "partition", os.str());
    }
  }

  // Boundary invariants, then pairwise symmetry.
  std::map<std::pair<partition::PeId, partition::PeId>,
           const partition::NeighborBoundary*>
      boundaries;
  for (const partition::SubdomainInfo& sub : subdomains) {
    for (const partition::NeighborBoundary& boundary : sub.neighbors) {
      lint_boundary(sub, boundary, report);
      boundaries[{sub.pe, boundary.neighbor}] = &boundary;
    }
  }

  for (const auto& [key, boundary] : boundaries) {
    const auto [pe, neighbor] = key;
    if (pe > neighbor) continue;  // visit each pair once, from the low side
    const std::string where = boundary_component(pe, neighbor);
    const auto mirror_it = boundaries.find({neighbor, pe});
    if (mirror_it == boundaries.end()) {
      std::ostringstream os;
      os << "pe " << neighbor << " does not list pe " << pe
         << " as a neighbor";
      report.error(rules::kBoundarySymmetry, where, os.str());
      continue;
    }
    const partition::NeighborBoundary& mirror = *mirror_it->second;
    if (mirror.total_faces != boundary->total_faces) {
      std::ostringstream os;
      os << "face counts disagree across the boundary: " << boundary->total_faces
         << " vs " << mirror.total_faces;
      report.error(rules::kBoundarySymmetry, where, os.str());
    }
    if (mirror.total_ghost_nodes() != boundary->total_ghost_nodes()) {
      std::ostringstream os;
      os << "ghost-node totals disagree across the boundary: "
         << boundary->total_ghost_nodes() << " vs "
         << mirror.total_ghost_nodes();
      report.error(rules::kBoundarySymmetry, where, os.str());
    } else if (boundary->ghost_nodes_local + mirror.ghost_nodes_local >
               boundary->total_ghost_nodes()) {
      // Each shared node is owned by at most one of the two sides (a
      // corner node can belong to a third PE, so the sum may fall short
      // of the total but can never exceed it).
      std::ostringstream os;
      os << "both sides together claim "
         << boundary->ghost_nodes_local + mirror.ghost_nodes_local
         << " locally-owned ghost nodes out of "
         << boundary->total_ghost_nodes();
      report.error(rules::kBoundarySymmetry, where, os.str());
    }
  }
}

void lint_partition(const mesh::InputDeck& deck,
                    const partition::Partition& partition,
                    DiagnosticReport& report) {
  if (partition.num_cells() != deck.grid().num_cells()) {
    std::ostringstream os;
    os << "partition assigns " << partition.num_cells()
       << " cells but the deck has " << deck.grid().num_cells();
    report.error(rules::kCellConservation, "partition", os.str());
    return;  // stats would throw on the mismatch
  }
  const partition::PartitionStats stats(deck, partition);
  lint_subdomains(deck, stats.subdomains(), report);
}

}  // namespace krak::analyze
