#pragma once

#include <iosfwd>

#include "analyze/linter.hpp"
#include "util/cli.hpp"

namespace krak::analyze {

/// What a driver should do after consulting the lint gate.
enum class LintGateOutcome {
  /// No lint requested, or lint passed under --lint: run the workload.
  kProceed,
  /// --lint-only passed cleanly: exit 0 without running the workload.
  kExitClean,
  /// Lint found errors: exit non-zero without running the workload.
  kExitError,
};

/// Exit code a driver should return for an outcome (0 clean, 1 errors).
[[nodiscard]] int lint_exit_code(LintGateOutcome outcome);

/// Shared `--lint` / `--lint-only` handling for the example drivers and
/// simkrak entry points:
///
///   --lint         lint the inputs, print the report, and proceed only
///                  when no errors were found;
///   --lint-only    lint, print, and exit without running the workload;
///   --lint-format  `text` (default) or `csv`.
///
/// Without either flag this is a no-op returning kProceed, so wiring the
/// gate into a driver costs nothing on normal runs.
[[nodiscard]] LintGateOutcome run_lint_gate(const util::ArgParser& args,
                                            const LintInput& input,
                                            std::ostream& out);

}  // namespace krak::analyze
