#include "analyze/linter.hpp"

#include <sstream>

#include "analyze/lint_curves.hpp"
#include "analyze/lint_deck.hpp"
#include "analyze/lint_machine.hpp"
#include "analyze/lint_partition.hpp"
#include "analyze/rules.hpp"

namespace krak::analyze {

namespace {

bool materials_in_range(const mesh::InputDeck& deck) {
  for (mesh::Material m : deck.materials()) {
    if (static_cast<std::size_t>(m) >= mesh::kMaterialCount) return false;
  }
  return true;
}

}  // namespace

DiagnosticReport lint_model(const LintInput& input) {
  DiagnosticReport report;

  const bool deck_usable =
      input.deck != nullptr && materials_in_range(*input.deck);

  if (input.deck != nullptr) {
    lint_deck(*input.deck, report);
  } else {
    report.error(rules::kDeckShape, "deck", "no input deck provided");
  }

  // Partition checks index per-material arrays by the deck's material
  // bytes; skip them when the deck itself is corrupt.
  if (input.partition != nullptr && deck_usable) {
    lint_partition(*input.deck, *input.partition, report);
  }

  if (input.machine != nullptr) {
    lint_machine(*input.machine, input.pes, report);
  }

  if (input.costs != nullptr) {
    MaterialMask required = kAllMaterials;
    if (deck_usable) {
      // Calibration can only learn materials the deck contains.
      const auto counts = input.deck->material_cell_counts();
      for (std::size_t m = 0; m < mesh::kMaterialCount; ++m) {
        required[m] = counts[m] > 0;
      }
    }
    lint_cost_table(*input.costs, report, required);
  }

  if (input.options != nullptr) {
    if (input.options->iterations < 1) {
      std::ostringstream os;
      os << "iterations = " << input.options->iterations << " must be >= 1";
      report.error(rules::kOptionsRange, "options", os.str());
    }
  }

  return report;
}

}  // namespace krak::analyze
