#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "analyze/diagnostic.hpp"

namespace krak::analyze {

/// Summary of a linted `krakjournal 1` campaign journal
/// (core/campaign_journal.hpp). Returned by lint_journal so drivers can
/// report what the linter saw alongside the diagnostics.
struct JournalFile {
  std::size_t records = 0;      ///< checksum-valid records parsed
  std::size_t scenarios = 0;    ///< distinct scenario fingerprints
  std::size_t completed = 0;    ///< scenarios with a `done` record
  std::size_t quarantined = 0;  ///< scenarios with a `quarantined` record
  bool torn_tail = false;       ///< file ends in a partial line
};

/// Lint a `krakjournal 1` campaign journal from `in`: header and
/// per-record structure (rules::kJournalFormat), the per-record FNV-1a
/// checksum (rules::kJournalChecksum), the per-scenario state machine
/// the writer guarantees (rules::kJournalStateMachine), and a torn
/// trailing append (rules::kJournalTornTail, a warning — recovery
/// truncates it cleanly).
///
/// These mirror the checks CampaignJournal applies on load, with one
/// deliberate difference: where recovery silently truncates at the
/// first invalid record, the linter names every violation so a human
/// can see *what* `--resume` would drop. Blank lines and `#` comments
/// are skipped (the writer emits neither; annotated fixtures and
/// hand-edited files do).
JournalFile lint_journal(std::istream& in, DiagnosticReport& report);

/// Open `path` and lint it; a file that cannot be opened is a
/// rules::kJournalFormat error naming the path and the OS cause.
[[nodiscard]] DiagnosticReport lint_journal_file(const std::string& path);

/// A deliberately corrupted journal exercising every journal rule at
/// least once (the analyze fixture idiom).
[[nodiscard]] std::string corrupted_journal_text();

}  // namespace krak::analyze
