#include "analyze/lint_partition_store.hpp"

#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "analyze/rules.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

constexpr const char* kMagic = "krakpart";
constexpr int kVersion = 1;

const std::set<std::string>& known_methods() {
  static const std::set<std::string> methods = {"strip", "rcb", "multilevel",
                                                "material-aware"};
  return methods;
}

std::string line_component(std::size_t line) {
  return "store/line " + std::to_string(line);
}

/// Parse "key value" where value is a 16-digit hex word (fingerprint,
/// checksum) or a decimal integer. Returns false on any mismatch.
bool parse_u64_field(std::istringstream& ls, std::uint64_t& value, bool hex) {
  std::string token;
  if (!(ls >> token)) return false;
  std::istringstream vs(token);
  if (hex) vs >> std::hex;
  return static_cast<bool>(vs >> value) && vs.eof();
}

}  // namespace

PartitionStoreFile lint_partition_store(std::istream& in,
                                        DiagnosticReport& report) {
  PartitionStoreFile file;
  std::size_t line_number = 0;
  std::string line;

  // `#` comment lines and blank lines are ignored everywhere (the store
  // writer emits neither, but fixtures and hand-edited files do).
  const auto next_content_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_number;
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      return true;
    }
    return false;
  };

  // Header: magic + version.
  if (!next_content_line()) {
    report.error(rules::kPartitionStoreFormat, "store",
                 "empty input, missing header");
    return file;
  }
  {
    std::istringstream hs(line);
    std::string magic;
    int version = 0;
    if (!(hs >> magic >> version) || magic != kMagic || version != kVersion) {
      report.error(rules::kPartitionStoreFormat, line_component(line_number),
                   "expected header '" + std::string(kMagic) + " " +
                       std::to_string(kVersion) + "', got '" + line + "'");
      return file;
    }
  }

  // Fixed header fields, in the order the store writes them. A missing
  // or malformed field aborts: everything after depends on pes/cells.
  struct HeaderField {
    const char* key;
    bool hex;
    std::uint64_t* target;
  };
  std::uint64_t pes_raw = 0;
  std::uint64_t cells_raw = 0;
  const HeaderField fields[] = {
      {"fingerprint", true, &file.fingerprint},
      {"pes", false, &pes_raw},
      {"seed", false, &file.seed},
      {"cells", false, &cells_raw},
      {"checksum", true, &file.checksum},
  };
  for (const HeaderField& field : fields) {
    // `method` sits between `pes` and `seed` in the file.
    if (std::strcmp(field.key, "seed") == 0) {
      if (!next_content_line()) {
        report.error(rules::kPartitionStoreFormat, "store",
                     "truncated header, missing 'method'");
        return file;
      }
      std::istringstream ls(line);
      std::string key;
      if (!(ls >> key >> file.method) || key != "method") {
        report.error(rules::kPartitionStoreFormat, line_component(line_number),
                     "expected 'method <name>', got '" + line + "'");
        return file;
      }
      if (known_methods().count(file.method) == 0) {
        report.error(rules::kPartitionStoreFormat, line_component(line_number),
                     "unknown partition method '" + file.method + "'");
      }
    }
    if (!next_content_line()) {
      report.error(rules::kPartitionStoreFormat, "store",
                   "truncated header, missing '" + std::string(field.key) +
                       "'");
      return file;
    }
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key != field.key ||
        !parse_u64_field(ls, *field.target, field.hex)) {
      report.error(rules::kPartitionStoreFormat, line_component(line_number),
                   "expected '" + std::string(field.key) +
                       (field.hex ? " <16 hex digits>'" : " <integer>'") +
                       ", got '" + line + "'");
      return file;
    }
  }
  file.pes = static_cast<std::int64_t>(pes_raw);
  file.cells = static_cast<std::int64_t>(cells_raw);
  if (file.pes <= 0 || file.cells <= 0) {
    report.error(rules::kPartitionStoreFormat, "store",
                 "pes and cells must be positive (pes " +
                     std::to_string(file.pes) + ", cells " +
                     std::to_string(file.cells) + ")");
    return file;
  }

  // Offsets line: pes + 1 monotone values from 0 to cells.
  if (!next_content_line()) {
    report.error(rules::kPartitionStoreFormat, "store",
                 "truncated file, missing 'offsets'");
    return file;
  }
  bool offsets_usable = false;
  {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key != "offsets") {
      report.error(rules::kPartitionStoreFormat, line_component(line_number),
                   "expected 'offsets <" + std::to_string(file.pes + 1) +
                       " values>', got '" + line + "'");
    } else {
      std::int64_t value = 0;
      while (ls >> value) file.offsets.push_back(value);
      if (file.offsets.size() != static_cast<std::size_t>(file.pes) + 1) {
        report.error(rules::kPartitionStoreOffsets,
                     line_component(line_number),
                     "expected " + std::to_string(file.pes + 1) +
                         " offsets, got " +
                         std::to_string(file.offsets.size()));
      } else {
        offsets_usable = true;
        if (file.offsets.front() != 0) {
          report.error(rules::kPartitionStoreOffsets,
                       line_component(line_number),
                       "offsets must start at 0, got " +
                           std::to_string(file.offsets.front()));
        }
        if (file.offsets.back() != file.cells) {
          report.error(rules::kPartitionStoreOffsets,
                       line_component(line_number),
                       "offsets must end at the cell count " +
                           std::to_string(file.cells) + ", got " +
                           std::to_string(file.offsets.back()));
        }
        for (std::size_t p = 0; p + 1 < file.offsets.size(); ++p) {
          if (file.offsets[p] > file.offsets[p + 1]) {
            report.error(rules::kPartitionStoreOffsets,
                         line_component(line_number),
                         "offsets not monotone: offsets[" +
                             std::to_string(p) + "]=" +
                             std::to_string(file.offsets[p]) + " > offsets[" +
                             std::to_string(p + 1) + "]=" +
                             std::to_string(file.offsets[p + 1]));
            break;
          }
        }
      }
    }
  }

  // Part lines: "part <p> <cells...>", labels in sequence, each cell
  // owned exactly once. Each line carries its own cell list, so parsing
  // never depends on (possibly corrupt) offsets; offsets are
  // cross-checked against the per-line counts instead.
  file.assignment.assign(static_cast<std::size_t>(file.cells), -1);
  std::int64_t expected_label = 0;
  bool saw_end = false;
  while (next_content_line()) {
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive == "end") {
      saw_end = true;
      break;
    }
    if (directive != "part") {
      report.error(rules::kPartitionStoreFormat, line_component(line_number),
                   "unknown directive '" + directive + "'");
      continue;
    }
    std::int64_t label = -1;
    if (!(ls >> label)) {
      report.error(rules::kPartitionStoreFormat, line_component(line_number),
                   "expected 'part <p> <cells...>'");
      continue;
    }
    if (label != expected_label) {
      report.error(rules::kPartitionStoreBounds, line_component(line_number),
                   "part labels must be sequential: expected " +
                       std::to_string(expected_label) + ", got " +
                       std::to_string(label));
    }
    ++expected_label;
    std::int64_t count = 0;
    std::int64_t cell = 0;
    while (ls >> cell) {
      ++count;
      if (cell < 0 || cell >= file.cells) {
        report.error(rules::kPartitionStoreBounds, line_component(line_number),
                     "cell " + std::to_string(cell) + " outside [0, " +
                         std::to_string(file.cells) + ")");
        continue;
      }
      if (file.assignment[static_cast<std::size_t>(cell)] != -1) {
        report.error(rules::kPartitionStoreBounds, line_component(line_number),
                     "cell " + std::to_string(cell) +
                         " assigned twice (already in part " +
                         std::to_string(file.assignment[static_cast<
                             std::size_t>(cell)]) +
                         ")");
      }
      if (label >= 0 && label < file.pes) {
        file.assignment[static_cast<std::size_t>(cell)] =
            static_cast<std::int32_t>(label);
      }
    }
    if (offsets_usable && label >= 0 && label < file.pes) {
      const std::int64_t declared =
          file.offsets[static_cast<std::size_t>(label) + 1] -
          file.offsets[static_cast<std::size_t>(label)];
      if (declared != count) {
        report.error(rules::kPartitionStoreOffsets,
                     line_component(line_number),
                     "part " + std::to_string(label) + " lists " +
                         std::to_string(count) +
                         " cell(s) but the offsets imply " +
                         std::to_string(declared));
      }
    }
  }

  if (!saw_end) {
    report.error(rules::kPartitionStoreFormat, "store",
                 "missing 'end' (file truncated?)");
  }
  if (expected_label != file.pes) {
    report.error(rules::kPartitionStoreBounds, "store",
                 "expected " + std::to_string(file.pes) +
                     " part line(s), got " + std::to_string(expected_label));
  }
  std::int64_t unassigned = 0;
  for (const std::int32_t owner : file.assignment) {
    if (owner == -1) ++unassigned;
  }
  if (unassigned > 0) {
    report.error(rules::kPartitionStoreBounds, "store",
                 std::to_string(unassigned) + " cell(s) owned by no part");
  } else {
    // Checksum is only meaningful over a fully reconstructed
    // assignment; coverage errors above already explain the rest.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::int32_t owner : file.assignment) {
      hash ^= static_cast<std::uint32_t>(owner);
      hash *= 0x100000001b3ull;
    }
    if (hash != file.checksum) {
      std::ostringstream os;
      os << "declared checksum " << std::hex << file.checksum
         << " does not match assignment checksum " << hash;
      report.error(rules::kPartitionStoreChecksum, "store", os.str());
    }
  }
  return file;
}

DiagnosticReport lint_partition_store_file(const std::string& path) {
  DiagnosticReport report;
  std::ifstream in(path);
  if (!in) {
    report.error(rules::kPartitionStoreFormat, "store",
                 "cannot open " + path + ": " + util::errno_message());
    return report;
  }
  (void)lint_partition_store(in, report);
  return report;
}

std::string corrupted_partition_store_text() {
  // One violation per rule; the inline notes name the rule each line
  // trips. The assignment still covers all six cells, so the (wrong)
  // checksum is actually compared.
  return "krakpart 1\n"
         "fingerprint 00c0ffee00000001\n"
         "pes 3\n"
         "method multilevel\n"
         "seed 1\n"
         "cells 6\n"
         "# all-zero checksum cannot match        -> partition-store-checksum\n"
         "checksum 0000000000000000\n"
         "# 4 > 2 is not monotone; part 0 count   -> partition-store-offsets\n"
         "offsets 0 4 2 6\n"
         "# cell 9 is outside [0, 6)              -> partition-store-bounds\n"
         "part 0 0 1 9\n"
         "part 1 2 3\n"
         "# cell 2 already belongs to part 1      -> partition-store-bounds\n"
         "part 2 4 5 2\n"
         "# not a directive                       -> partition-store-format\n"
         "bogus\n"
         "end\n";
}

}  // namespace krak::analyze
