#include "analyze/lint_trace.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "analyze/rules.hpp"
#include "util/error.hpp"

namespace krak::analyze {

namespace {

constexpr const char* kMagic = "kraktrace";
constexpr int kVersion = 1;

const std::set<std::string>& known_kinds() {
  static const std::set<std::string> kinds = {
      "compute", "isend",     "recv",   "waitall",
      "allreduce", "broadcast", "gather", "record"};
  return kinds;
}

std::string line_component(std::size_t line) {
  return "trace/line " + std::to_string(line);
}

}  // namespace

TraceFile lint_trace(std::istream& in, DiagnosticReport& report) {
  TraceFile trace;
  std::size_t line_number = 0;
  std::string line;

  // Header: magic + version.
  if (!std::getline(in, line)) {
    report.error(rules::kTraceFormat, "trace", "empty input, missing header");
    return trace;
  }
  ++line_number;
  {
    std::istringstream hs(line);
    std::string magic;
    int version = 0;
    if (!(hs >> magic >> version) || magic != kMagic || version != kVersion) {
      report.error(rules::kTraceFormat, line_component(line_number),
                   "expected header '" + std::string(kMagic) + " " +
                       std::to_string(kVersion) + "', got '" + line + "'");
      return trace;
    }
  }

  bool saw_ranks = false;
  bool saw_end = false;
  // Last timestamp seen per rank, for the monotonicity rule.
  std::map<std::int32_t, double> last_time;
  // Directed (from, to, tag) -> (sends, recvs) for the matching rule.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
           std::pair<std::int64_t, std::int64_t>>
      messages;

  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive.front() == '#') continue;
    if (directive == "end") {
      saw_end = true;
      break;
    }
    if (directive == "ranks") {
      std::int32_t ranks = 0;
      if (!(ls >> ranks) || ranks < 1) {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "'ranks' needs a positive rank count");
      } else if (saw_ranks) {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "duplicate 'ranks' line");
      } else {
        trace.ranks = ranks;
        saw_ranks = true;
      }
      continue;
    }
    if (directive != "op") {
      report.error(rules::kTraceFormat, line_component(line_number),
                   "unknown directive '" + directive + "'");
      continue;
    }
    if (!saw_ranks) {
      report.error(rules::kTraceFormat, line_component(line_number),
                   "'op' before the 'ranks' line");
      continue;
    }

    TraceEvent event;
    if (!(ls >> event.rank >> event.time_s >> event.kind)) {
      report.error(rules::kTraceFormat, line_component(line_number),
                   "expected 'op <rank> <t_seconds> <kind>'");
      continue;
    }
    bool fields_ok = true;
    std::string token;
    while (ls >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "bad field '" + token + "' (expected key=value)");
        fields_ok = false;
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      std::istringstream vs(value);
      bool parsed = false;
      if (key == "peer") {
        parsed = static_cast<bool>(vs >> event.peer);
      } else if (key == "tag") {
        parsed = static_cast<bool>(vs >> event.tag);
      } else if (key == "bytes") {
        parsed = static_cast<bool>(vs >> event.bytes);
      } else {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "unknown field '" + key + "'");
        fields_ok = false;
        break;
      }
      if (!parsed || !vs.eof()) {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "field " + key + "='" + value + "' is not a number");
        fields_ok = false;
        break;
      }
    }
    if (!fields_ok) continue;

    // Op-kind validity.
    const bool kind_known = known_kinds().count(event.kind) != 0;
    if (!kind_known) {
      report.error(rules::kTraceOpKind, line_component(line_number),
                   "unknown op kind '" + event.kind + "'");
    }

    // Rank / peer bounds.
    bool rank_ok = event.rank >= 0 && event.rank < trace.ranks;
    if (!rank_ok) {
      report.error(rules::kTraceRankBounds, line_component(line_number),
                   "rank " + std::to_string(event.rank) +
                       " outside [0, " + std::to_string(trace.ranks) + ")");
    }
    const bool point_to_point = event.kind == "isend" || event.kind == "recv";
    if (point_to_point) {
      if (event.peer < 0) {
        report.error(rules::kTraceFormat, line_component(line_number),
                     "'" + event.kind + "' needs a peer=P field");
        rank_ok = false;
      } else if (event.peer >= trace.ranks) {
        report.error(rules::kTraceRankBounds, line_component(line_number),
                     "peer " + std::to_string(event.peer) + " outside [0, " +
                         std::to_string(trace.ranks) + ")");
        rank_ok = false;
      }
    }

    // Per-rank timestamp monotonicity (only meaningful in-bounds).
    if (event.rank >= 0 && event.rank < trace.ranks) {
      const auto it = last_time.find(event.rank);
      if (it != last_time.end() && event.time_s < it->second) {
        std::ostringstream os;
        os << "rank " << event.rank << " time went backwards: " << event.time_s
           << " after " << it->second;
        report.error(rules::kTraceMonotoneTime, line_component(line_number),
                     os.str());
      }
      last_time[event.rank] =
          std::max(event.time_s,
                   it != last_time.end() ? it->second : event.time_s);
    }

    if (point_to_point && rank_ok) {
      if (event.kind == "isend") {
        ++messages[{event.rank, event.peer, event.tag}].first;
      } else {
        ++messages[{event.peer, event.rank, event.tag}].second;
      }
    }
    trace.events.push_back(std::move(event));
  }

  if (!saw_end) {
    report.error(rules::kTraceFormat, "trace",
                 "missing 'end' (file truncated?)");
  }
  if (!saw_ranks && saw_end) {
    report.error(rules::kTraceFormat, "trace", "missing 'ranks' line");
  }

  for (const auto& [key, counts] : messages) {
    if (counts.first == counts.second) continue;
    const auto [from, to, tag] = key;
    std::ostringstream os;
    os << counts.first << " send(s) vs " << counts.second
       << " recv(s) for rank " << from << " -> rank " << to << ", tag " << tag;
    report.error(rules::kTraceSendRecvMatch,
                 "trace/" + std::to_string(from) + "->" + std::to_string(to),
                 os.str());
  }
  return trace;
}

DiagnosticReport lint_trace_file(const std::string& path) {
  DiagnosticReport report;
  std::ifstream in(path);
  if (!in) {
    report.error(rules::kTraceFormat, "trace",
                 "cannot open " + path + ": " + util::errno_message());
    return report;
  }
  (void)lint_trace(in, report);
  return report;
}

std::string corrupted_trace_text() {
  // One violation per rule: an op before fixing... see the inline notes.
  return "kraktrace 1\n"
         "ranks 2\n"
         "# rank 1's clock runs backwards        -> trace-monotone-time\n"
         "op 1 2.0 compute\n"
         "op 1 1.0 compute\n"
         "# rank 7 does not exist in a 2-rank run -> trace-rank-bounds\n"
         "op 7 0.0 compute\n"
         "# 'teleport' is not an op kind          -> trace-op-kind\n"
         "op 0 0.5 teleport\n"
         "# send with no matching recv            -> trace-send-recv-match\n"
         "op 0 1.0 isend peer=1 tag=42 bytes=64\n"
         "# malformed op record                   -> trace-format\n"
         "op 0 oops compute\n"
         "end\n";
}

}  // namespace krak::analyze
