#pragma once

#include <cstdint>
#include <string>

#include "analyze/diagnostic.hpp"
#include "fault/plan.hpp"

namespace krak::analyze {

/// Lint a fault-injection plan (fault/plan.hpp) against the rules a
/// fault::InjectionEngine would enforce by throwing, reported as
/// diagnostics instead so a driver can show every problem at once:
/// value ranges (rules::kFaultSpecRange) and injection-target existence
/// (rules::kFaultSpecTarget). `ranks` bounds the rank targets and
/// `phases_per_iteration` the phase targets; pass 0 for either to skip
/// those bound checks (e.g. when linting a spec file with no run
/// context).
[[nodiscard]] DiagnosticReport lint_faults(const fault::FaultPlan& plan,
                                           std::int32_t ranks = 0,
                                           std::int32_t phases_per_iteration = 0);

/// Load `path` as a `krakfaults 1` spec and lint it. A file that cannot
/// be opened or parsed is a rules::kFaultSpecFormat error naming the
/// path and cause.
[[nodiscard]] DiagnosticReport lint_fault_file(const std::string& path,
                                               std::int32_t ranks = 0,
                                               std::int32_t phases_per_iteration = 0);

/// A deliberately corrupted (but parseable) fault spec exercising the
/// range and target rules.
[[nodiscard]] std::string corrupted_fault_spec_text();

}  // namespace krak::analyze
