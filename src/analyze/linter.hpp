#pragma once

#include <cstdint>

#include "analyze/diagnostic.hpp"
#include "core/cost_table.hpp"
#include "mesh/deck.hpp"
#include "network/machine.hpp"
#include "partition/partition.hpp"
#include "simapp/simkrak.hpp"

namespace krak::analyze {

/// Everything the model linter can look at. Only `deck` is mandatory;
/// absent pieces are skipped, so drivers lint exactly what they built.
/// Pointees must outlive the lint call; nothing is copied.
struct LintInput {
  const mesh::InputDeck* deck = nullptr;
  const partition::Partition* partition = nullptr;
  const network::MachineConfig* machine = nullptr;
  const core::CostTable* costs = nullptr;
  const simapp::SimKrakOptions* options = nullptr;
  /// Intended run size; <= 0 means the whole machine (when given).
  std::int32_t pes = 0;
};

/// Statically validate a model-input bundle before any simulation or
/// prediction runs: deck shape and detonator placement, partition
/// conservation and ghost/face invariants, machine shape and collective
/// tree coverage, cost-curve monotonicity and knees, and Tmsg unit
/// checks. Returns the severity-ranked findings; a report with
/// has_errors() means predictions from these inputs are meaningless.
[[nodiscard]] DiagnosticReport lint_model(const LintInput& input);

}  // namespace krak::analyze
