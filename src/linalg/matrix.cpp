#include "linalg/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace krak::linalg {

using util::check;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  check(rows > 0 && cols > 0, "Matrix dimensions must be positive");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  check(rows.size() > 0, "Matrix initializer must be non-empty");
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  check(cols_ > 0, "Matrix rows must be non-empty");
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    check(row.size() == cols_, "Matrix initializer rows must be equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  check(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  check(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  check(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  check(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  check(cols_ == rhs.rows_, "Matrix multiply dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> x) const {
  check(x.size() == cols_, "Matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  check(rows_ == rhs.rows_ && cols_ == rhs.cols_,
        "Matrix add dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  check(rows_ == rhs.rows_ && cols_ == rhs.cols_,
        "Matrix subtract dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double norm2(std::span<const double> v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double dot(std::span<const double> a, std::span<const double> b) {
  check(a.size() == b.size(), "dot requires equal-length spans");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace krak::linalg
