#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace krak::linalg {

using util::check;

std::vector<double> solve_lu(Matrix a, std::vector<double> b) {
  check(a.rows() == a.cols(), "solve_lu requires a square matrix");
  check(a.rows() == b.size(), "solve_lu dimension mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below the
    // diagonal.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw util::KrakError("solve_lu: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a(ri, c) * x[c];
    x[ri] = sum / a(ri, ri);
  }
  return x;
}

LeastSquaresResult solve_least_squares(Matrix a, std::vector<double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  check(m >= n, "solve_least_squares requires rows >= cols");
  check(m == b.size(), "solve_least_squares dimension mismatch");

  // Rank tolerance relative to the largest column norm: columns whose
  // remaining mass falls below it are treated as linearly dependent.
  double max_column_norm = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    double norm = 0.0;
    for (std::size_t r = 0; r < m; ++r) norm += a(r, c) * a(r, c);
    max_column_norm = std::max(max_column_norm, std::sqrt(norm));
  }
  const double rank_tolerance =
      std::max(1e-300, 1e-10 * max_column_norm);

  // Householder QR applied in place; b is transformed alongside.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t r = k; r < m; ++r) norm += a(r, k) * a(r, k);
    norm = std::sqrt(norm);
    if (norm < rank_tolerance) {
      throw util::KrakError("solve_least_squares: rank-deficient matrix");
    }
    const double alpha = (a(k, k) >= 0.0) ? -norm : norm;
    // Householder vector v with v[k] = a(k,k) - alpha, v[r>k] = a(r,k).
    std::vector<double> v(m - k);
    v[0] = a(k, k) - alpha;
    for (std::size_t r = k + 1; r < m; ++r) v[r - k] = a(r, k);
    const double vnorm2 = dot(v, v);
    if (vnorm2 > 0.0) {
      // Apply H = I - 2 v v^T / (v^T v) to remaining columns and to b.
      for (std::size_t c = k; c < n; ++c) {
        double proj = 0.0;
        for (std::size_t r = k; r < m; ++r) proj += v[r - k] * a(r, c);
        const double scale = 2.0 * proj / vnorm2;
        for (std::size_t r = k; r < m; ++r) a(r, c) -= scale * v[r - k];
      }
      double proj_b = 0.0;
      for (std::size_t r = k; r < m; ++r) proj_b += v[r - k] * b[r];
      const double scale_b = 2.0 * proj_b / vnorm2;
      for (std::size_t r = k; r < m; ++r) b[r] -= scale_b * v[r - k];
    }
    a(k, k) = alpha;
    for (std::size_t r = k + 1; r < m; ++r) a(r, k) = 0.0;
  }

  LeastSquaresResult result;
  result.x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a(ri, c) * result.x[c];
    if (std::abs(a(ri, ri)) < rank_tolerance) {
      throw util::KrakError("solve_least_squares: rank-deficient matrix");
    }
    result.x[ri] = sum / a(ri, ri);
  }
  double res = 0.0;
  for (std::size_t r = n; r < m; ++r) res += b[r] * b[r];
  result.residual_norm = std::sqrt(res);
  return result;
}

LeastSquaresResult solve_nonnegative_least_squares(const Matrix& a,
                                                   std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  check(m >= n, "NNLS requires rows >= cols");
  check(m == b.size(), "NNLS dimension mismatch");

  // Lawson–Hanson active set. Passive set P holds indices allowed to be
  // positive; all others are pinned to zero.
  std::vector<bool> passive(n, false);
  std::vector<double> x(n, 0.0);
  const Matrix at = a.transposed();

  const auto residual = [&](const std::vector<double>& xx) {
    std::vector<double> r(m);
    for (std::size_t i = 0; i < m; ++i) {
      double ax = 0.0;
      for (std::size_t j = 0; j < n; ++j) ax += a(i, j) * xx[j];
      r[i] = b[i] - ax;
    }
    return r;
  };

  // Solve the unconstrained least-squares over the passive columns.
  const auto solve_passive = [&](std::vector<std::size_t>& idx) {
    idx.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (passive[j]) idx.push_back(j);
    }
    std::vector<double> z(n, 0.0);
    if (idx.empty()) return z;
    Matrix sub(m, idx.size());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t jj = 0; jj < idx.size(); ++jj) {
        sub(i, jj) = a(i, idx[jj]);
      }
    }
    const auto partial =
        solve_least_squares(sub, std::vector<double>(b.begin(), b.end()));
    for (std::size_t jj = 0; jj < idx.size(); ++jj) {
      z[idx[jj]] = partial.x[jj];
    }
    return z;
  };

  constexpr std::size_t kMaxOuter = 200;
  constexpr double kTolerance = 1e-12;
  std::vector<std::size_t> idx;
  for (std::size_t outer = 0; outer < kMaxOuter; ++outer) {
    const std::vector<double> r = residual(x);
    const std::vector<double> w = at * std::span<const double>(r);
    // Pick the most-violated zero constraint.
    std::size_t best = n;
    double best_w = kTolerance;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = j;
      }
    }
    if (best == n) break;  // KKT satisfied
    passive[best] = true;

    for (;;) {
      std::vector<double> z = solve_passive(idx);
      // If the candidate keeps all passive entries positive, accept it.
      bool all_positive = true;
      for (std::size_t j : idx) {
        if (z[j] <= kTolerance) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        x = std::move(z);
        break;
      }
      // Otherwise move as far toward z as feasibility allows and drop
      // the blocking variables from the passive set.
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j : idx) {
        if (z[j] <= kTolerance) {
          const double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j]) x[j] += alpha * (z[j] - x[j]);
      }
      for (std::size_t j : idx) {
        if (x[j] <= kTolerance) {
          x[j] = 0.0;
          passive[j] = false;
        }
      }
    }
  }

  LeastSquaresResult result;
  result.x = x;
  result.residual_norm = norm2(residual(x));
  return result;
}

}  // namespace krak::linalg
