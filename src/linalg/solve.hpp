#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace krak::linalg {

/// Solve the square system A x = b by LU decomposition with partial
/// pivoting. Throws KrakError if A is singular to working precision.
[[nodiscard]] std::vector<double> solve_lu(Matrix a, std::vector<double> b);

/// Result of a least-squares solve.
struct LeastSquaresResult {
  std::vector<double> x;
  /// Euclidean norm of the residual A x - b.
  double residual_norm = 0.0;
};

/// Solve min_x ||A x - b||_2 via Householder QR. Requires rows >= cols
/// and full column rank (throws KrakError otherwise).
///
/// This is the solver behind calibration "Method 2" (Section 3.1 of the
/// paper): one equation per (processor, phase) observation, one unknown
/// per material's per-cell cost.
[[nodiscard]] LeastSquaresResult solve_least_squares(Matrix a,
                                                     std::vector<double> b);

/// Solve the same least-squares problem subject to x >= 0, by active-set
/// iteration (Lawson–Hanson NNLS). Per-cell costs are physically
/// non-negative; unconstrained solves can return slightly negative costs
/// when a material barely appears on any processor.
[[nodiscard]] LeastSquaresResult solve_nonnegative_least_squares(
    const Matrix& a, std::span<const double> b);

}  // namespace krak::linalg
