#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace krak::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized for the calibration problems in this project: systems with one
/// row per (processor, phase) observation and one column per material —
/// at most a few thousand rows by a handful of columns. No attempt is
/// made at cache blocking or BLAS dispatch.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Unchecked element access (checked variants: at()).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws InvalidArgument when out of range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// View of row r.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product; inner dimensions must agree.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product; x.size() must equal cols().
  [[nodiscard]] std::vector<double> operator*(std::span<const double> x) const;

  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

  /// Largest absolute element (max norm); 0 for empty.
  [[nodiscard]] double max_abs() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
[[nodiscard]] double norm2(std::span<const double> v);

/// Dot product; spans must be equal length.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

}  // namespace krak::linalg
