#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace krak::obs {

/// Schema identifier stamped into every bench report; bump only with a
/// migration note in docs/OBSERVABILITY.md.
inline constexpr std::string_view kBenchSchemaId = "krak-bench-v1";

/// Validate a BENCH_*.json document against the krak-bench-v1 schema
/// (docs/OBSERVABILITY.md). Returns one human-readable violation per
/// problem, empty when the document conforms. Validation is structural
/// and range-based (required keys, kinds, sign constraints); it does not
/// compare timing values across reports.
[[nodiscard]] std::vector<std::string> validate_bench_report(
    const Json& report);

}  // namespace krak::obs
