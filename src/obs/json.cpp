#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace krak::obs {

using util::check;

namespace {

void write_number(std::string& out, double value) {
  check(std::isfinite(value), "JSON cannot represent NaN or infinity");
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  util::require_internal(ec == std::errc{}, "number formatting failed");
  out.append(buffer, end);
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }
bool Json::is_number() const { return std::holds_alternative<double>(value_); }
bool Json::is_string() const {
  return std::holds_alternative<std::string>(value_);
}
bool Json::is_array() const { return std::holds_alternative<Array>(value_); }
bool Json::is_object() const { return std::holds_alternative<Object>(value_); }

bool Json::as_bool() const {
  check(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  check(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  check(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  check(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  check(is_object(), "JSON value is not an object");
  return std::get<Object>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  check(is_object(), "JSON operator[] requires an object");
  return std::get<Object>(value_)[key];
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& members = std::get<Object>(value_);
  const auto it = members.find(std::string(key));
  return it == members.end() ? nullptr : &it->second;
}

void Json::push_back(Json element) {
  if (is_null()) value_ = Array{};
  check(is_array(), "JSON push_back requires an array");
  std::get<Array>(value_).push_back(std::move(element));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    write_number(out, std::get<double>(value_));
  } else if (is_string()) {
    out += json_escape(std::get<std::string>(value_));
  } else if (is_array()) {
    const Array& elements = std::get<Array>(value_);
    if (elements.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Json& element : elements) {
      if (!first) out.push_back(',');
      first = false;
      newline_pad(depth + 1);
      element.write(out, indent, depth + 1);
    }
    newline_pad(depth);
    out.push_back(']');
  } else {
    const Object& members = std::get<Object>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, element] : members) {
      if (!first) out.push_back(',');
      first = false;
      newline_pad(depth + 1);
      out += json_escape(key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      element.write(out, indent, depth + 1);
    }
    newline_pad(depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  check(indent >= 0, "dump indent must be non-negative");
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view with byte-offset
/// error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    check(pos_ == text_.size(), error("trailing characters after document"));
    return value;
  }

 private:
  [[nodiscard]] std::string error(std::string_view what) const {
    return "JSON parse error at byte " + std::to_string(pos_) + ": " +
           std::string(what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    check(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    check(peek() == c, error(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        check(consume_literal("true"), error("invalid literal"));
        return Json(true);
      case 'f':
        check(consume_literal("false"), error("invalid literal"));
        return Json(false);
      case 'n':
        check(consume_literal("null"), error("invalid literal"));
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      check(peek() == '"', error("expected object key"));
      std::string key = parse_string();
      expect(':');
      out[key] = parse_value();
      const char next = peek();
      ++pos_;
      if (next == '}') return out;
      check(next == ',', error("expected ',' or '}' in object"));
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return out;
      check(next == ',', error("expected ',' or ']' in array"));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      check(pos_ < text_.size(), error("unterminated escape"));
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), error("truncated \\u escape"));
          unsigned code = 0;
          const auto [end, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          check(ec == std::errc{} && end == text_.data() + pos_ + 4,
                error("invalid \\u escape"));
          pos_ += 4;
          // Reports only need the control-character range; non-ASCII
          // text flows through unescaped as UTF-8 bytes.
          check(code < 0x80, error("\\u escape above ASCII unsupported"));
          out.push_back(static_cast<char>(code));
          break;
        }
        default: check(false, error("unknown escape character"));
      }
    }
    check(pos_ < text_.size(), error("unterminated string"));
    ++pos_;  // closing quote
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + text_.size(),
                        value);
    check(ec == std::errc{} && end != text_.data() + start,
          error("invalid number"));
    pos_ = static_cast<std::size_t>(end - text_.data());
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace krak::obs
