#include "obs/bench_schema.hpp"

namespace krak::obs {

namespace {

/// Collects violations with dotted-path context ("campaigns[2].runs[0]").
class SchemaChecker {
 public:
  explicit SchemaChecker(std::vector<std::string>& out) : out_(out) {}

  void fail(const std::string& path, const std::string& what) {
    out_.push_back(path + ": " + what);
  }

  /// Each require_* returns the typed member, or nullptr after recording
  /// a violation, so callers can keep scanning siblings.
  const Json* require(const Json& parent, const std::string& path,
                      const std::string& key) {
    const Json* member = parent.find(key);
    if (member == nullptr) fail(path, "missing required key \"" + key + "\"");
    return member;
  }

  const std::string* require_string(const Json& parent,
                                    const std::string& path,
                                    const std::string& key,
                                    bool non_empty = true) {
    const Json* member = require(parent, path, key);
    if (member == nullptr) return nullptr;
    if (!member->is_string()) {
      fail(path + "." + key, "must be a string");
      return nullptr;
    }
    if (non_empty && member->as_string().empty()) {
      fail(path + "." + key, "must be non-empty");
      return nullptr;
    }
    return &member->as_string();
  }

  bool require_bool(const Json& parent, const std::string& path,
                    const std::string& key) {
    const Json* member = require(parent, path, key);
    if (member == nullptr) return false;
    if (!member->is_bool()) {
      fail(path + "." + key, "must be a boolean");
      return false;
    }
    return true;
  }

  /// Number constrained to [min, max]; returns 0.0 on violation.
  double require_number(const Json& parent, const std::string& path,
                        const std::string& key, double min, double max) {
    const Json* member = require(parent, path, key);
    if (member == nullptr) return 0.0;
    if (!member->is_number()) {
      fail(path + "." + key, "must be a number");
      return 0.0;
    }
    const double value = member->as_double();
    if (value < min || value > max) {
      fail(path + "." + key,
           "out of range [" + std::to_string(min) + ", " +
               std::to_string(max) + "]: " + std::to_string(value));
    }
    return value;
  }

  const Json* require_object(const Json& parent, const std::string& path,
                             const std::string& key) {
    const Json* member = require(parent, path, key);
    if (member == nullptr) return nullptr;
    if (!member->is_object()) {
      fail(path + "." + key, "must be an object");
      return nullptr;
    }
    return member;
  }

  const Json* require_array(const Json& parent, const std::string& path,
                            const std::string& key, std::size_t min_size) {
    const Json* member = require(parent, path, key);
    if (member == nullptr) return nullptr;
    if (!member->is_array()) {
      fail(path + "." + key, "must be an array");
      return nullptr;
    }
    if (member->size() < min_size) {
      fail(path + "." + key,
           "must have at least " + std::to_string(min_size) + " element(s)");
    }
    return member;
  }

 private:
  std::vector<std::string>& out_;
};

constexpr double kHuge = 1e30;

void check_run(SchemaChecker& ck, const Json& run, const std::string& path) {
  if (!run.is_object()) {
    ck.fail(path, "must be an object");
    return;
  }
  ck.require_string(run, path, "problem");
  ck.require_number(run, path, "pes", 1.0, kHuge);
  ck.require_number(run, path, "measured_s", 0.0, kHuge);
  ck.require_number(run, path, "predicted_s", 0.0, kHuge);
  ck.require_number(run, path, "error", -kHuge, kHuge);
  ck.require_number(run, path, "wall_seconds", 0.0, kHuge);
}

/// "failures" entry of a campaign: a scenario that produced a recorded
/// error instead of a measurement (krak-bench-v1 graceful degradation).
void check_campaign_failure(SchemaChecker& ck, const Json& failure,
                            const std::string& path) {
  if (!failure.is_object()) {
    ck.fail(path, "must be an object");
    return;
  }
  ck.require_number(failure, path, "run_index", 0.0, kHuge);
  ck.require_string(failure, path, "scenario");
  ck.require_string(failure, path, "error");
  // Optional resilience fields (absent from pre-resilience reports):
  // the retry budget charged, the failure class, and whether the
  // scenario was quarantined as poison.
  if (failure.find("attempts") != nullptr) {
    // attempts 0: a quarantine skip recorded without re-running.
    ck.require_number(failure, path, "attempts", 0.0, kHuge);
  }
  if (const Json* klass = failure.find("class")) {
    if (!klass->is_string() || (klass->as_string() != "transient" &&
                                klass->as_string() != "deterministic")) {
      ck.fail(path + ".class",
              "must be \"transient\" or \"deterministic\"");
    }
  }
  if (failure.find("quarantined") != nullptr) {
    ck.require_bool(failure, path, "quarantined");
  }
  // Optional structured simulator diagnosis.
  if (const Json* cause = failure.find("sim_failure")) {
    if (!cause->is_object()) {
      ck.fail(path + ".sim_failure", "must be an object");
      return;
    }
    const std::string sub = path + ".sim_failure";
    ck.require_string(*cause, sub, "kind");
    // rank -1: a run-level diagnosis (e.g. event-limit), not a rank's.
    ck.require_number(*cause, sub, "rank", -1.0, kHuge);
    ck.require_number(*cause, sub, "op_index", -1.0, kHuge);
    ck.require_string(*cause, sub, "detail");
  }
}

void check_campaign(SchemaChecker& ck, const Json& campaign,
                    const std::string& path) {
  if (!campaign.is_object()) {
    ck.fail(path, "must be an object");
    return;
  }
  ck.require_string(campaign, path, "name");
  ck.require_number(campaign, path, "wall_seconds", 0.0, kHuge);
  ck.require_number(campaign, path, "threads", 1.0, kHuge);
  // A tiny tolerance: utilization is sum(run)/ (wall * threads) and the
  // run clocks are sampled inside the pool, so rounding can nudge it
  // just above 1.
  ck.require_number(campaign, path, "thread_utilization", 0.0, 1.01);
  ck.require_number(campaign, path, "worst_abs_error", 0.0, kHuge);
  ck.require_number(campaign, path, "mean_abs_error", 0.0, kHuge);
  // Optional resilience accounting (absent from pre-resilience
  // reports): attempts, retries, journal replays, quarantines.
  if (const Json* resilience = campaign.find("resilience")) {
    if (!resilience->is_object()) {
      ck.fail(path + ".resilience", "must be an object");
    } else {
      const std::string sub = path + ".resilience";
      ck.require_number(*resilience, sub, "attempts", 0.0, kHuge);
      ck.require_number(*resilience, sub, "retries", 0.0, kHuge);
      ck.require_number(*resilience, sub, "replayed", 0.0, kHuge);
      ck.require_number(*resilience, sub, "quarantined", 0.0, kHuge);
      ck.require_number(*resilience, sub, "deadline_failures", 0.0, kHuge);
      ck.require_number(*resilience, sub, "backoff_s", 0.0, kHuge);
    }
  }
  // "failures" is optional (absent from clean reports, so pre-existing
  // reports stay valid); when present it must be well-formed, and a
  // campaign where every scenario failed may legitimately have zero
  // measured runs.
  std::size_t failure_count = 0;
  if (const Json* failures = campaign.find("failures")) {
    if (!failures->is_array()) {
      ck.fail(path + ".failures", "must be an array");
    } else {
      failure_count = failures->size();
      for (std::size_t i = 0; i < failures->as_array().size(); ++i) {
        check_campaign_failure(ck, failures->as_array()[i],
                               path + ".failures[" + std::to_string(i) + "]");
      }
    }
  }
  const std::size_t min_runs = failure_count > 0 ? 0 : 1;
  if (const Json* runs = ck.require_array(campaign, path, "runs", min_runs)) {
    for (std::size_t i = 0; i < runs->as_array().size(); ++i) {
      check_run(ck, runs->as_array()[i],
                path + ".runs[" + std::to_string(i) + "]");
    }
  }
}

void check_replay(SchemaChecker& ck, const Json& replay,
                  const std::string& path) {
  if (!replay.is_object()) {
    ck.fail(path, "must be an object");
    return;
  }
  ck.require_string(replay, path, "name");
  ck.require_number(replay, path, "ranks", 1.0, kHuge);
  ck.require_number(replay, path, "makespan_s", 0.0, kHuge);
  ck.require_number(replay, path, "time_per_iteration_s", 0.0, kHuge);
  ck.require_number(replay, path, "events", 1.0, kHuge);
  ck.require_number(replay, path, "max_queue_depth", 1.0, kHuge);
  if (const Json* phases = ck.require_object(replay, path, "phases")) {
    const std::string sub = path + ".phases";
    ck.require_number(*phases, sub, "compute_s", 0.0, kHuge);
    ck.require_number(*phases, sub, "p2p_s", 0.0, kHuge);
    ck.require_number(*phases, sub, "collective_s", 0.0, kHuge);
  }
  if (const Json* blocked = ck.require_object(replay, path, "blocked")) {
    const std::string sub = path + ".blocked";
    ck.require_number(*blocked, sub, "send_wait_s", 0.0, kHuge);
    ck.require_number(*blocked, sub, "recv_wait_s", 0.0, kHuge);
    ck.require_number(*blocked, sub, "collective_wait_s", 0.0, kHuge);
    ck.require_number(*blocked, sub, "collective_cost_s", 0.0, kHuge);
  }
  if (const Json* traffic = ck.require_object(replay, path, "traffic")) {
    const std::string sub = path + ".traffic";
    ck.require_number(*traffic, sub, "p2p_messages", 0.0, kHuge);
    ck.require_number(*traffic, sub, "p2p_bytes", 0.0, kHuge);
    ck.require_number(*traffic, sub, "allreduces", 0.0, kHuge);
    ck.require_number(*traffic, sub, "broadcasts", 0.0, kHuge);
    ck.require_number(*traffic, sub, "gathers", 0.0, kHuge);
  }
  // Optional parallel-simulation scaling datapoint: wall clock of the
  // single-thread oracle vs. the conservative parallel engine over the
  // same scenario (absent from serial-only reports, so pre-existing
  // reports stay valid).
  if (const Json* parallel = replay.find("parallel")) {
    if (!parallel->is_object()) {
      ck.fail(path + ".parallel", "must be an object");
      return;
    }
    const std::string sub = path + ".parallel";
    ck.require_number(*parallel, sub, "threads", 1.0, kHuge);
    ck.require_number(*parallel, sub, "serial_wall_s", 0.0, kHuge);
    ck.require_number(*parallel, sub, "parallel_wall_s", 0.0, kHuge);
    ck.require_number(*parallel, sub, "speedup", 0.0, kHuge);
    // Optional-if-present (PR 10; older reports predate them):
    // speedup_vs_oracle is the documented name of the oracle-vs-engine
    // wall ratio, coordinator_serial_fraction the replay's Amdahl
    // serial fraction — a proper fraction by construction.
    if (parallel->find("speedup_vs_oracle") != nullptr) {
      ck.require_number(*parallel, sub, "speedup_vs_oracle", 0.0, kHuge);
    }
    if (parallel->find("coordinator_serial_fraction") != nullptr) {
      ck.require_number(*parallel, sub, "coordinator_serial_fraction", 0.0,
                        1.0);
    }
  }
  // Optional fault-injection accounting, emitted only when a fault plan
  // was active (keeps pre-existing reports valid).
  if (const Json* fault = replay.find("fault")) {
    if (!fault->is_object()) {
      ck.fail(path + ".fault", "must be an object");
      return;
    }
    const std::string sub = path + ".fault";
    ck.require_number(*fault, sub, "injections", 0.0, kHuge);
    ck.require_number(*fault, sub, "retransmits", 0.0, kHuge);
    ck.require_number(*fault, sub, "messages_lost", 0.0, kHuge);
    ck.require_number(*fault, sub, "fault_delay_s", 0.0, kHuge);
    ck.require_number(*fault, sub, "recovery_s", 0.0, kHuge);
    if (const Json* failures = ck.require_array(*fault, sub, "failures", 0)) {
      for (std::size_t i = 0; i < failures->as_array().size(); ++i) {
        const Json& entry = failures->as_array()[i];
        const std::string entry_path =
            sub + ".failures[" + std::to_string(i) + "]";
        if (!entry.is_object()) {
          ck.fail(entry_path, "must be an object");
          continue;
        }
        ck.require_string(entry, entry_path, "kind");
        // rank -1: a run-level diagnosis (e.g. event-limit).
        ck.require_number(entry, entry_path, "rank", -1.0, kHuge);
        ck.require_number(entry, entry_path, "op_index", -1.0, kHuge);
        ck.require_string(entry, entry_path, "detail");
      }
    }
  }
}

void check_metric(SchemaChecker& ck, const Json& metric,
                  const std::string& path) {
  if (!metric.is_object()) {
    ck.fail(path, "must be an object");
    return;
  }
  const std::string* kind = ck.require_string(metric, path, "kind");
  if (kind == nullptr) return;
  if (*kind == "counter") {
    ck.require_number(metric, path, "count", 0.0, kHuge);
  } else if (*kind == "gauge") {
    ck.require_number(metric, path, "value", -kHuge, kHuge);
  } else if (*kind == "timer") {
    ck.require_number(metric, path, "count", 0.0, kHuge);
    ck.require_number(metric, path, "total_seconds", 0.0, kHuge);
  } else {
    ck.fail(path + ".kind", "unknown metric kind \"" + *kind + "\"");
  }
}

}  // namespace

std::vector<std::string> validate_bench_report(const Json& report) {
  std::vector<std::string> violations;
  SchemaChecker ck(violations);
  if (!report.is_object()) {
    ck.fail("$", "top level must be an object");
    return violations;
  }
  if (const std::string* schema = ck.require_string(report, "$", "schema")) {
    if (*schema != kBenchSchemaId) {
      ck.fail("$.schema", "expected \"" + std::string(kBenchSchemaId) +
                              "\", got \"" + *schema + "\"");
    }
  }
  ck.require_string(report, "$", "name");
  ck.require_bool(report, "$", "quick");
  if (const Json* env = ck.require_object(report, "$", "environment")) {
    ck.require_string(*env, "$.environment", "git_sha");
    ck.require_string(*env, "$.environment", "build_type");
    ck.require_string(*env, "$.environment", "compiler");
    ck.require_number(*env, "$.environment", "hardware_concurrency", 1.0,
                      kHuge);
  }
  if (const Json* campaigns = ck.require_array(report, "$", "campaigns", 1)) {
    for (std::size_t i = 0; i < campaigns->as_array().size(); ++i) {
      check_campaign(ck, campaigns->as_array()[i],
                     "$.campaigns[" + std::to_string(i) + "]");
    }
  }
  if (const Json* replays = ck.require_array(report, "$", "replays", 1)) {
    for (std::size_t i = 0; i < replays->as_array().size(); ++i) {
      check_replay(ck, replays->as_array()[i],
                   "$.replays[" + std::to_string(i) + "]");
    }
  }
  if (const Json* metrics = ck.require_object(report, "$", "metrics")) {
    for (const auto& [name, metric] : metrics->as_object()) {
      check_metric(ck, metric, "$.metrics[\"" + name + "\"]");
    }
  }
  return violations;
}

}  // namespace krak::obs
