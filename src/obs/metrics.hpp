#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace krak::obs {

/// Global instrumentation switch. All recording calls (Counter::add,
/// Gauge::set, Timer::record, ScopedTimer) are no-ops while disabled;
/// registration and reads are always allowed. Defaults to enabled —
/// recording is a handful of relaxed atomic operations — but hot loops
/// that must not pay even that can flip it off (see
/// bench_perf_kernels's BM_ScopedTimer* pair for the measured cost).
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Value of one metric at snapshot time.
struct MetricValue {
  enum class Kind : std::uint8_t { kCounter, kGauge, kTimer };
  Kind kind = Kind::kCounter;
  /// Counter value, or number of Timer::record calls (0 for gauges).
  std::int64_t count = 0;
  /// Gauge value, or accumulated Timer seconds (0 for counters).
  double value = 0.0;
};

[[nodiscard]] std::string_view metric_kind_name(MetricValue::Kind kind);

/// Sorted name -> value map; the unit every reporter consumes.
using Snapshot = std::map<std::string, MetricValue>;

/// Monotone event count (messages sent, runs executed, ...).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins sample (queue depth, imbalance of the last partition).
class Gauge {
 public:
  void set(double value) {
    if (enabled()) value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration plus call count (mean = total / count).
class Timer {
 public:
  /// Record one interval of `seconds` (gated on the global switch).
  void record(double seconds) {
    if (!enabled()) return;
    double current = total_.load(std::memory_order_relaxed);
    while (!total_.compare_exchange_weak(current, current + seconds,
                                         std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    total_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> total_{0.0};
  std::atomic<std::int64_t> count_{0};
};

/// RAII wall-clock probe: records into `timer` on destruction. When
/// instrumentation is disabled at construction the scope costs one
/// relaxed atomic load — no clock read, no allocation, nothing to undo.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(enabled() ? &timer : nullptr),
        start_(timer_ != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe named-metric registry. Registration returns a stable
/// reference (metrics are never removed), so hot paths look a metric up
/// once — typically through a function-local static — and record through
/// the reference thereafter. A name identifies exactly one metric; asking
/// for an existing name with a different kind throws InvalidArgument.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Timer& timer(std::string_view name);

  /// Copy out every metric's current value, sorted by name.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every metric (registrations survive; references stay valid).
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricValue::Kind kind = MetricValue::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timer> timer;
  };
  Entry& entry_for(std::string_view name, MetricValue::Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// The process-wide registry the library's built-in probes record into
/// (metric names are catalogued in docs/OBSERVABILITY.md).
[[nodiscard]] Registry& global_registry();

}  // namespace krak::obs
