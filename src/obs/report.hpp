#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace krak::obs {

/// Render a snapshot as a JSON object: each metric name maps to
///   counter -> {"kind":"counter","count":N}
///   gauge   -> {"kind":"gauge","value":X}
///   timer   -> {"kind":"timer","count":N,"total_seconds":X}
/// Keys are sorted (Json object invariant), so output is byte-stable
/// for a given snapshot — this is the "metrics" section of BENCH_*.json.
[[nodiscard]] Json snapshot_to_json(const Snapshot& snapshot);

/// Write `snapshot_to_json(...).dump(2)` plus a trailing newline to
/// `path`. Throws KrakError when the file cannot be written.
void write_json_report(const Snapshot& snapshot, const std::string& path);

/// Write the snapshot as CSV with header `name,kind,count,value`.
void write_csv_report(const Snapshot& snapshot, const std::string& path);

}  // namespace krak::obs
