#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace krak::obs {

/// Minimal JSON document tree: enough to emit and re-read the BENCH_*
/// reports (docs/OBSERVABILITY.md) without an external dependency.
///
/// Objects keep their keys sorted (std::map), so serialization is
/// byte-stable for a given tree — golden tests and cross-PR diffs of
/// BENCH_*.json rely on this. Numbers are doubles serialized with
/// shortest-round-trip formatting; non-finite values are rejected at
/// dump time because JSON cannot represent them.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// null by default.
  Json() = default;
  Json(bool value) : value_(value) {}                       // NOLINT(*-explicit-*)
  Json(double value) : value_(value) {}                     // NOLINT(*-explicit-*)
  Json(int value) : value_(static_cast<double>(value)) {}   // NOLINT(*-explicit-*)
  Json(std::int64_t value) : value_(static_cast<double>(value)) {}  // NOLINT(*-explicit-*)
  Json(std::string value) : value_(std::move(value)) {}     // NOLINT(*-explicit-*)
  Json(const char* value) : value_(std::string(value)) {}   // NOLINT(*-explicit-*)

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_bool() const;
  [[nodiscard]] bool is_number() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool is_object() const;

  /// Typed reads; throw InvalidArgument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object element access; inserts null under a missing key (and turns
  /// a null value into an object first, so building nests naturally).
  Json& operator[](const std::string& key);

  /// Member lookup without insertion; nullptr when absent or not an
  /// object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Append to an array (a null value becomes an array first).
  void push_back(Json element);

  [[nodiscard]] std::size_t size() const;

  /// Serialize. indent > 0 pretty-prints with that many spaces per
  /// level; indent == 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  /// Throws KrakError with a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] bool operator==(const Json& other) const {
    return value_ == other.value_;
  }

 private:
  explicit Json(Object value) : value_(std::move(value)) {}
  explicit Json(Array value) : value_(std::move(value)) {}

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_ = nullptr;
};

/// Escape and quote one string for embedding in JSON output.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace krak::obs
