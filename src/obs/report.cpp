#include "obs/report.hpp"

#include <fstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace krak::obs {

Json snapshot_to_json(const Snapshot& snapshot) {
  Json out = Json::object();
  for (const auto& [name, metric] : snapshot) {
    Json entry = Json::object();
    entry["kind"] = std::string(metric_kind_name(metric.kind));
    switch (metric.kind) {
      case MetricValue::Kind::kCounter:
        entry["count"] = metric.count;
        break;
      case MetricValue::Kind::kGauge:
        entry["value"] = metric.value;
        break;
      case MetricValue::Kind::kTimer:
        entry["count"] = metric.count;
        entry["total_seconds"] = metric.value;
        break;
    }
    out[name] = std::move(entry);
  }
  return out;
}

void write_json_report(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  util::check(out.good(), "cannot open JSON report file for writing");
  out << snapshot_to_json(snapshot).dump(2) << "\n";
  util::check(out.good(), "failed writing JSON report");
}

void write_csv_report(const Snapshot& snapshot, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_header({"name", "kind", "count", "value"});
  for (const auto& [name, metric] : snapshot) {
    csv.write_row({name, std::string(metric_kind_name(metric.kind)),
                   std::to_string(metric.count), std::to_string(metric.value)});
  }
}

}  // namespace krak::obs
