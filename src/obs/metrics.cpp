#include "obs/metrics.hpp"

#include "util/error.hpp"

namespace krak::obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::string_view metric_kind_name(MetricValue::Kind kind) {
  switch (kind) {
    case MetricValue::Kind::kCounter: return "counter";
    case MetricValue::Kind::kGauge: return "gauge";
    case MetricValue::Kind::kTimer: return "timer";
  }
  return "unknown";
}

Registry::Entry& Registry::entry_for(std::string_view name,
                                     MetricValue::Kind kind) {
  util::check(!name.empty(), "metric name must be non-empty");
  std::lock_guard lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.kind = kind;
    switch (kind) {
      case MetricValue::Kind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case MetricValue::Kind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case MetricValue::Kind::kTimer:
        it->second.timer = std::make_unique<Timer>();
        break;
    }
  }
  util::check(it->second.kind == kind,
              "metric already registered with a different kind");
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_for(name, MetricValue::Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_for(name, MetricValue::Kind::kGauge).gauge;
}

Timer& Registry::timer(std::string_view name) {
  return *entry_for(name, MetricValue::Kind::kTimer).timer;
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot out;
  for (const auto& [name, entry] : metrics_) {
    MetricValue value;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        value.count = entry.counter->value();
        break;
      case MetricValue::Kind::kGauge:
        value.value = entry.gauge->value();
        break;
      case MetricValue::Kind::kTimer:
        value.count = entry.timer->count();
        value.value = entry.timer->total_seconds();
        break;
    }
    out.emplace(name, value);
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricValue::Kind::kCounter: entry.counter->reset(); break;
      case MetricValue::Kind::kGauge: entry.gauge->reset(); break;
      case MetricValue::Kind::kTimer: entry.timer->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return metrics_.size();
}

Registry& global_registry() {
  static Registry instance;
  return instance;
}

}  // namespace krak::obs
