#include "hydro/state.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace krak::hydro {

HydroState::HydroState(const mesh::InputDeck& deck) : deck_(deck) {
  const mesh::Grid& grid = deck.grid();
  const auto nodes = static_cast<std::size_t>(grid.num_nodes());
  const auto cells = static_cast<std::size_t>(grid.num_cells());

  node_x.resize(nodes);
  node_y.resize(nodes);
  velocity_x.assign(nodes, 0.0);
  velocity_y.assign(nodes, 0.0);
  force_x.assign(nodes, 0.0);
  force_y.assign(nodes, 0.0);
  node_mass.assign(nodes, 0.0);
  for (std::int64_t node = 0; node < grid.num_nodes(); ++node) {
    const mesh::Point p = grid.node_position(static_cast<mesh::NodeId>(node));
    node_x[static_cast<std::size_t>(node)] = p.x;
    node_y[static_cast<std::size_t>(node)] = p.y;
  }

  cell_mass.resize(cells);
  cell_volume.resize(cells);
  density.resize(cells);
  specific_energy.resize(cells);
  pressure.resize(cells);
  viscosity.assign(cells, 0.0);
  sound_speed.resize(cells);
  burned.assign(cells, false);

  for (std::int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    const MaterialEos& eos =
        eos_for(deck.material_of(static_cast<mesh::CellId>(cell)));
    cell_volume[i] = compute_cell_volume(static_cast<mesh::CellId>(cell));
    density[i] = eos.reference_density;
    cell_mass[i] = density[i] * cell_volume[i];
    specific_energy[i] = eos.initial_energy;
    pressure[i] = eos.pressure(density[i], specific_energy[i]);
    sound_speed[i] = eos.sound_speed(density[i], specific_energy[i]);
  }
  update_node_masses();
}

double HydroState::compute_cell_volume(mesh::CellId cell) const {
  const auto nodes = grid().nodes_of_cell(cell);
  // Shoelace formula over the (SW, SE, NE, NW) quad.
  double twice_area = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    const auto a = static_cast<std::size_t>(nodes[k]);
    const auto b = static_cast<std::size_t>(nodes[(k + 1) % 4]);
    twice_area += node_x[a] * node_y[b] - node_x[b] * node_y[a];
  }
  const double volume = 0.5 * twice_area;
  util::require_internal(volume > 0.0, "inverted or degenerate cell");
  return volume;
}

void HydroState::update_geometry() {
  for (std::int64_t cell = 0; cell < num_cells(); ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    cell_volume[i] = compute_cell_volume(static_cast<mesh::CellId>(cell));
    density[i] = cell_mass[i] / cell_volume[i];
  }
}

void HydroState::update_node_masses() {
  std::fill(node_mass.begin(), node_mass.end(), 0.0);
  for (std::int64_t cell = 0; cell < num_cells(); ++cell) {
    const double quarter =
        0.25 * cell_mass[static_cast<std::size_t>(cell)];
    for (mesh::NodeId node :
         grid().nodes_of_cell(static_cast<mesh::CellId>(cell))) {
      node_mass[static_cast<std::size_t>(node)] += quarter;
    }
  }
}

double HydroState::total_internal_energy() const {
  double total = 0.0;
  for (std::size_t i = 0; i < cell_mass.size(); ++i) {
    total += cell_mass[i] * specific_energy[i];
  }
  return total;
}

double HydroState::total_kinetic_energy() const {
  double total = 0.0;
  for (std::size_t i = 0; i < node_mass.size(); ++i) {
    total += 0.5 * node_mass[i] *
             (velocity_x[i] * velocity_x[i] + velocity_y[i] * velocity_y[i]);
  }
  return total;
}

double HydroState::total_mass() const {
  double total = 0.0;
  for (double m : cell_mass) total += m;
  return total;
}

std::pair<double, mesh::CellId> HydroState::max_pressure() const {
  double best = -1.0;
  mesh::CellId best_cell = 0;
  for (std::int64_t cell = 0; cell < num_cells(); ++cell) {
    const double p = pressure[static_cast<std::size_t>(cell)];
    if (p > best) {
      best = p;
      best_cell = static_cast<mesh::CellId>(cell);
    }
  }
  return {best, best_cell};
}

}  // namespace krak::hydro
