#include "hydro/measure.hpp"

#include <cmath>

#include "mesh/deck.hpp"
#include "util/error.hpp"

namespace krak::hydro {

double HydroCostSample::total_per_cell_seconds() const {
  double total = 0.0;
  for (double s : per_cell_seconds) total += s;
  return total;
}

HydroCostSample measure_uniform_cost(mesh::Material material,
                                     std::int64_t cells, std::int64_t steps) {
  util::check(cells >= 1, "need at least one cell");
  util::check(steps >= 1, "need at least one step");

  // A roughly square grid with at least the requested cell count.
  const auto side = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, std::llround(std::sqrt(
                                    static_cast<double>(cells)))));
  std::int32_t nx = side;
  std::int32_t ny = side;
  while (static_cast<std::int64_t>(nx) * ny < cells) ++nx;

  const mesh::InputDeck deck = mesh::make_uniform_deck(nx, ny, material);
  HydroState state(deck);
  HydroConfig config;
  config.enable_burn = false;  // steady measurement, no energy injection
  HydroSolver solver(state, config);

  // One untimed warm-up step populates caches; a fresh solver then
  // measures from the warmed state (its timers start at zero).
  (void)solver.step();
  HydroSolver measured(state, config);
  for (std::int64_t s = 0; s < steps; ++s) {
    (void)measured.step();
  }

  HydroCostSample sample;
  sample.material = material;
  sample.cells = deck.grid().num_cells();
  sample.steps = steps;
  for (std::size_t p = 0; p < kHydroPhaseCount; ++p) {
    sample.per_cell_seconds[p] =
        measured.timers().seconds(static_cast<HydroPhase>(p)) /
        static_cast<double>(steps) / static_cast<double>(sample.cells);
  }
  return sample;
}

std::vector<HydroCostSample> sweep_hydro_costs(
    mesh::Material material, const std::vector<std::int64_t>& sizes,
    std::int64_t steps) {
  std::vector<HydroCostSample> samples;
  samples.reserve(sizes.size());
  for (std::int64_t cells : sizes) {
    samples.push_back(measure_uniform_cost(material, cells, steps));
  }
  return samples;
}

}  // namespace krak::hydro
