#include "hydro/eos.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace krak::hydro {

double MaterialEos::pressure(double density, double specific_energy) const {
  util::check(density >= 0.0, "density must be non-negative");
  return std::max(0.0, (gamma - 1.0) * density * specific_energy);
}

double MaterialEos::sound_speed(double density,
                                double specific_energy) const {
  if (density <= 0.0) return 0.0;
  const double p = pressure(density, specific_energy);
  return std::sqrt(gamma * p / density);
}

const std::array<MaterialEos, mesh::kMaterialCount>& eos_table() {
  static const std::array<MaterialEos, mesh::kMaterialCount> kTable = [] {
    std::array<MaterialEos, mesh::kMaterialCount> table{};
    // High-explosive gas: light, energetic, with a programmed burn.
    MaterialEos he;
    he.gamma = 3.0;
    he.reference_density = 1.6;
    he.initial_energy = 0.05;
    he.detonation_energy = 4.0;
    he.detonation_speed = 6.0;
    table[mesh::material_index(mesh::Material::kHEGas)] = he;

    // Aluminum (both layers): dense and stiff.
    MaterialEos aluminum;
    aluminum.gamma = 2.7;
    aluminum.reference_density = 2.7;
    aluminum.initial_energy = 0.02;
    table[mesh::material_index(mesh::Material::kAluminumInner)] = aluminum;
    MaterialEos outer = aluminum;
    outer.initial_energy = 0.019;  // marginally different outer layer
    table[mesh::material_index(mesh::Material::kAluminumOuter)] = outer;

    // Foam: light and soft.
    MaterialEos foam;
    foam.gamma = 1.4;
    foam.reference_density = 0.3;
    foam.initial_energy = 0.03;
    table[mesh::material_index(mesh::Material::kFoam)] = foam;
    return table;
  }();
  return kTable;
}

const MaterialEos& eos_for(mesh::Material material) {
  return eos_table()[mesh::material_index(material)];
}

}  // namespace krak::hydro
