#pragma once

#include <array>

#include "mesh/material.hpp"

namespace krak::hydro {

/// Gamma-law equation of state with per-material parameters.
///
/// Krak proper carries tabular and JWL equations of state; for the
/// mini-app a polytropic gas law per material captures what the
/// performance study needs — material-dependent arithmetic cost and
/// physically plausible wave propagation. Units are arbitrary but
/// consistent (mass/length/time chosen so sound speeds are O(1)).
struct MaterialEos {
  double gamma = 1.4;            ///< adiabatic index
  double reference_density = 1.0;
  double initial_energy = 0.0;   ///< specific internal energy at t = 0
  /// Specific detonation energy released by the programmed burn
  /// (nonzero only for the high-explosive gas).
  double detonation_energy = 0.0;
  /// Programmed-burn detonation speed (distance per unit time).
  double detonation_speed = 0.0;

  /// p = (gamma - 1) rho e, clamped at zero (no tension).
  [[nodiscard]] double pressure(double density, double specific_energy) const;

  /// c = sqrt(gamma p / rho); 0 for vacuum.
  [[nodiscard]] double sound_speed(double density,
                                   double specific_energy) const;
};

/// The four materials of the paper's deck, parameterized so the HE gas
/// is hot and fast, the metals dense and stiff, the foam light and soft.
[[nodiscard]] const MaterialEos& eos_for(mesh::Material material);

/// All four EOS in material order.
[[nodiscard]] const std::array<MaterialEos, mesh::kMaterialCount>& eos_table();

}  // namespace krak::hydro
