#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "hydro/state.hpp"
#include "util/thread_pool.hpp"

namespace krak::hydro {

/// Numerical parameters of the Lagrangian step.
struct HydroConfig {
  double cfl = 0.25;          ///< Courant factor for the next-step dt
  double q_linear = 0.5;      ///< linear artificial-viscosity coefficient
  double q_quadratic = 1.0;   ///< quadratic artificial-viscosity coefficient
  double initial_dt = 1e-4;
  double max_dt = 0.05;
  bool enable_burn = true;    ///< programmed burn of the HE gas
  /// Treat every domain boundary as a rigid wall (zero normal
  /// velocity). Default: only the x = 0 axis reflects and the other
  /// boundaries are free surfaces, as in the paper's open deck. Rigid
  /// walls enable closed-box verification problems (Sod's shock tube).
  bool reflecting_boundaries = false;
  /// Worker threads for the cell and node loops (1 = serial). All
  /// loops are written so results are bitwise identical at any thread
  /// count: cell phases are cell-local, nodal forces are computed by a
  /// race-free node-centric gather, and the CFL reduction combines
  /// exact per-chunk minima.
  std::int32_t threads = 1;
};

/// The computational phases of one hydro step, timed individually —
/// the mini-app analogue of Krak's phase structure (Table 1): some
/// phases' cost depends on the cells' materials (EOS), others only on
/// the cell count (integration).
enum class HydroPhase : std::uint8_t {
  kBurn = 0,     ///< programmed detonation front
  kEos,          ///< pressure / sound speed per cell (material dependent)
  kViscosity,    ///< artificial viscosity per cell
  kForces,       ///< corner-force accumulation onto nodes
  kIntegrate,    ///< velocity and position update + boundary conditions
  kEnergy,       ///< geometry update + PdV energy update
  kTimestep,     ///< CFL reduction for the next dt
};
inline constexpr std::size_t kHydroPhaseCount = 7;

[[nodiscard]] std::string_view hydro_phase_name(HydroPhase phase);

/// Accumulated wall-clock time per phase across all steps taken.
class PhaseTimers {
 public:
  void add(HydroPhase phase, double seconds);
  [[nodiscard]] double seconds(HydroPhase phase) const;
  [[nodiscard]] double total_seconds() const;
  void reset();

 private:
  std::array<double, kHydroPhaseCount> seconds_{};
};

/// Diagnostics of one completed step.
struct StepStats {
  double dt = 0.0;
  double time = 0.0;            ///< simulation time after the step
  double max_pressure = 0.0;
  double total_energy = 0.0;
  double burn_front_radius = 0.0;
};

/// Explicit staggered-grid Lagrangian hydrodynamics solver: gamma-law
/// EOS per material, programmed burn, corner forces, bulk artificial
/// viscosity, PdV energy update, CFL-controlled time step. The x = 0
/// boundary is the axis of rotation (reflecting); the other boundaries
/// are free surfaces.
class HydroSolver {
 public:
  explicit HydroSolver(HydroState& state, HydroConfig config = {});

  /// Advance one time step; returns the step's diagnostics.
  StepStats step();

  /// Advance until `end_time` or `max_steps`, whichever first; returns
  /// the final step's diagnostics.
  StepStats run_until(double end_time, std::int64_t max_steps = 1'000'000);

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] std::int64_t steps_taken() const { return steps_; }
  [[nodiscard]] const PhaseTimers& timers() const { return timers_; }
  [[nodiscard]] const HydroConfig& config() const { return config_; }

 private:
  void phase_burn();
  void phase_eos();
  void phase_viscosity();
  void phase_forces();
  void phase_integrate();
  void phase_energy();
  void phase_timestep();

  /// Rate of change of a cell's volume under the current velocities.
  [[nodiscard]] double volume_rate(mesh::CellId cell) const;

  /// Run fn(begin, end) over [0, count) in contiguous chunks, across
  /// the pool when one exists.
  void parallel_ranges(std::int64_t count,
                       const std::function<void(std::int64_t, std::int64_t)>& fn);

  HydroState& state_;
  HydroConfig config_;
  PhaseTimers timers_;
  double dt_;
  std::int64_t steps_ = 0;
  std::vector<double> old_volume_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace krak::hydro
