#pragma once

#include <vector>

#include "hydro/eos.hpp"
#include "mesh/deck.hpp"

namespace krak::hydro {

/// Staggered Lagrangian state on a deforming quadrilateral mesh:
/// positions and velocities live on nodes, thermodynamic quantities on
/// cells. The mesh connectivity is the deck's grid and never changes;
/// node positions move with the flow (Section 2: "the spatial grid
/// deforms as forces propagate through the objects").
class HydroState {
 public:
  /// Initialize from a deck: nodes at grid positions, cells at their
  /// material's reference density and initial energy, everything at
  /// rest. The state keeps its own copy of the deck, so it remains
  /// valid after the argument goes out of scope.
  explicit HydroState(const mesh::InputDeck& deck);

  [[nodiscard]] const mesh::InputDeck& deck() const { return deck_; }
  [[nodiscard]] const mesh::Grid& grid() const { return deck_.grid(); }
  [[nodiscard]] std::int64_t num_cells() const { return grid().num_cells(); }
  [[nodiscard]] std::int64_t num_nodes() const { return grid().num_nodes(); }

  // Node fields (SoA layout for vectorizable loops).
  std::vector<double> node_x;
  std::vector<double> node_y;
  std::vector<double> velocity_x;
  std::vector<double> velocity_y;
  std::vector<double> force_x;
  std::vector<double> force_y;
  /// Lumped nodal mass (quarter of each adjacent cell's mass).
  std::vector<double> node_mass;

  // Cell fields.
  std::vector<double> cell_mass;     ///< invariant (Lagrangian)
  std::vector<double> cell_volume;
  std::vector<double> density;
  std::vector<double> specific_energy;
  std::vector<double> pressure;
  std::vector<double> viscosity;     ///< artificial viscosity q
  std::vector<double> sound_speed;
  std::vector<bool> burned;          ///< HE cells already detonated

  double time = 0.0;

  /// Signed area of a (convex, counter-clockwise) cell from current
  /// node positions; throws InternalError if the cell has inverted.
  [[nodiscard]] double compute_cell_volume(mesh::CellId cell) const;

  /// Recompute all cell volumes and densities from node positions.
  void update_geometry();

  /// Recompute lumped nodal masses from cell masses.
  void update_node_masses();

  /// Total internal + kinetic energy (conservation diagnostic).
  [[nodiscard]] double total_internal_energy() const;
  [[nodiscard]] double total_kinetic_energy() const;
  [[nodiscard]] double total_energy() const {
    return total_internal_energy() + total_kinetic_energy();
  }
  [[nodiscard]] double total_mass() const;

  /// Largest pressure and its cell (diagnostics / shock tracking).
  [[nodiscard]] std::pair<double, mesh::CellId> max_pressure() const;

 private:
  mesh::InputDeck deck_;
};

}  // namespace krak::hydro
