#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hydro/solver.hpp"
#include "mesh/material.hpp"

namespace krak::hydro {

/// Measured per-cell wall-clock cost of each hydro phase at one subgrid
/// size — the real-code analogue of the paper's contrived-grid
/// calibration samples (Section 3.1).
struct HydroCostSample {
  mesh::Material material = mesh::Material::kHEGas;
  std::int64_t cells = 0;
  std::int64_t steps = 0;
  /// Mean wall-clock seconds per cell per step for each phase.
  std::array<double, kHydroPhaseCount> per_cell_seconds{};

  [[nodiscard]] double total_per_cell_seconds() const;
};

/// Time `steps` solver steps on a roughly square uniform deck of
/// `cells` cells of `material` and return per-phase per-cell costs.
/// The burn is disabled so the measurement is steady.
[[nodiscard]] HydroCostSample measure_uniform_cost(mesh::Material material,
                                                   std::int64_t cells,
                                                   std::int64_t steps = 20);

/// Sweep subgrid sizes for one material (the Figure 3 measurement
/// campaign run on the real mini-app instead of the synthetic engine).
[[nodiscard]] std::vector<HydroCostSample> sweep_hydro_costs(
    mesh::Material material, const std::vector<std::int64_t>& sizes,
    std::int64_t steps = 20);

}  // namespace krak::hydro
