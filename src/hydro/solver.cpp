#include "hydro/solver.hpp"

#include <algorithm>
#include <mutex>
#include <cmath>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace krak::hydro {

namespace {

/// RAII wall-clock accumulator for one phase.
class ScopedTimer {
 public:
  ScopedTimer(PhaseTimers& timers, HydroPhase phase)
      : timers_(timers), phase_(phase) {}
  ~ScopedTimer() { timers_.add(phase_, watch_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseTimers& timers_;
  HydroPhase phase_;
  util::Stopwatch watch_;
};

}  // namespace

std::string_view hydro_phase_name(HydroPhase phase) {
  switch (phase) {
    case HydroPhase::kBurn: return "burn";
    case HydroPhase::kEos: return "eos";
    case HydroPhase::kViscosity: return "viscosity";
    case HydroPhase::kForces: return "forces";
    case HydroPhase::kIntegrate: return "integrate";
    case HydroPhase::kEnergy: return "energy";
    case HydroPhase::kTimestep: return "timestep";
  }
  return "unknown";
}

void PhaseTimers::add(HydroPhase phase, double seconds) {
  seconds_[static_cast<std::size_t>(phase)] += seconds;
}

double PhaseTimers::seconds(HydroPhase phase) const {
  return seconds_[static_cast<std::size_t>(phase)];
}

double PhaseTimers::total_seconds() const {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

void PhaseTimers::reset() { seconds_.fill(0.0); }

HydroSolver::HydroSolver(HydroState& state, HydroConfig config)
    : state_(state), config_(config), dt_(config.initial_dt) {
  util::check(config.cfl > 0.0 && config.cfl < 1.0, "cfl must be in (0, 1)");
  util::check(config.initial_dt > 0.0, "initial_dt must be positive");
  util::check(config.max_dt >= config.initial_dt,
              "max_dt must be >= initial_dt");
  util::check(config.threads >= 1, "threads must be >= 1");
  old_volume_ = state_.cell_volume;
  if (config.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config.threads));
  }
}

void HydroSolver::parallel_ranges(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  // Small loops are not worth the fork/join; run them inline.
  if (!pool_ || count < 4096) {
    fn(0, count);
    return;
  }
  const auto chunks = static_cast<std::int64_t>(pool_->thread_count() * 4);
  const std::int64_t chunk_size = (count + chunks - 1) / chunks;
  pool_->parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const std::int64_t begin = static_cast<std::int64_t>(c) * chunk_size;
    const std::int64_t end = std::min(count, begin + chunk_size);
    if (begin < end) fn(begin, end);
  });
}

void HydroSolver::phase_burn() {
  if (!config_.enable_burn) return;
  const mesh::InputDeck& deck = state_.deck();
  const mesh::Point det = deck.detonator();
  for (std::int64_t cell = 0; cell < state_.num_cells(); ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    if (state_.burned[i]) continue;
    const mesh::Material material =
        deck.material_of(static_cast<mesh::CellId>(cell));
    const MaterialEos& eos = eos_for(material);
    if (eos.detonation_energy == 0.0) continue;
    // Programmed burn: the detonation front expands spherically from
    // the detonator at the detonation speed (initial geometry).
    const mesh::Point center =
        deck.grid().cell_center(static_cast<mesh::CellId>(cell));
    const double dx = center.x - det.x;
    const double dy = center.y - det.y;
    const double distance = std::sqrt(dx * dx + dy * dy);
    if (distance <= eos.detonation_speed * state_.time) {
      state_.specific_energy[i] += eos.detonation_energy;
      state_.burned[i] = true;
    }
  }
}

void HydroSolver::phase_eos() {
  const mesh::InputDeck& deck = state_.deck();
  parallel_ranges(state_.num_cells(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t cell = begin; cell < end; ++cell) {
      const auto i = static_cast<std::size_t>(cell);
      const MaterialEos& eos =
          eos_for(deck.material_of(static_cast<mesh::CellId>(cell)));
      state_.pressure[i] = eos.pressure(state_.density[i],
                                        state_.specific_energy[i]);
      state_.sound_speed[i] =
          eos.sound_speed(state_.density[i], state_.specific_energy[i]);
    }
  });
}

double HydroSolver::volume_rate(mesh::CellId cell) const {
  // d/dt of the shoelace area under current nodal velocities.
  const auto nodes = state_.grid().nodes_of_cell(cell);
  double rate = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    const auto a = static_cast<std::size_t>(nodes[k]);
    const auto b = static_cast<std::size_t>(nodes[(k + 1) % 4]);
    rate += state_.velocity_x[a] * state_.node_y[b] +
            state_.node_x[a] * state_.velocity_y[b] -
            state_.velocity_x[b] * state_.node_y[a] -
            state_.node_x[b] * state_.velocity_y[a];
  }
  return 0.5 * rate;
}

void HydroSolver::phase_viscosity() {
  parallel_ranges(state_.num_cells(), [&](std::int64_t begin, std::int64_t end) {
  for (std::int64_t cell = begin; cell < end; ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    const double volume = state_.cell_volume[i];
    const double rate = volume_rate(static_cast<mesh::CellId>(cell));
    if (rate >= 0.0) {
      state_.viscosity[i] = 0.0;  // expanding: no shock viscosity
      continue;
    }
    // Velocity jump scale: |dV/dt| / V * characteristic length.
    const double length = std::sqrt(volume);
    const double du = -rate / volume * length;
    state_.viscosity[i] =
        state_.density[i] * (config_.q_linear * state_.sound_speed[i] * du +
                             config_.q_quadratic * du * du);
  }
  });
}

void HydroSolver::phase_forces() {
  // Node-centric gather: each node sums the corner forces of its (up
  // to four) adjacent cells. Unlike the textbook cell-centric scatter,
  // this is race-free, so the loop parallelizes with bitwise-identical
  // results at any thread count (each node's additions happen in a
  // fixed order).
  const mesh::Grid& grid = state_.grid();
  const std::int32_t nx = grid.nx();
  const std::int32_t ny = grid.ny();
  parallel_ranges(state_.num_nodes(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t node = begin; node < end; ++node) {
      const auto n = static_cast<std::size_t>(node);
      const std::int32_t i = static_cast<std::int32_t>(node % (nx + 1));
      const std::int32_t j = static_cast<std::int32_t>(node / (nx + 1));
      double fx = 0.0;
      double fy = 0.0;
      // The corner index of this node in each adjacent cell (cells are
      // [SW, SE, NE, NW]): cell to the lower-left sees it as NE, lower
      // -right as NW, upper-left as SE, upper-right as SW.
      struct Adjacent {
        std::int32_t ci, cj;
        std::size_t corner;
      };
      const Adjacent adjacent[4] = {{i - 1, j - 1, 2},
                                    {i, j - 1, 3},
                                    {i - 1, j, 1},
                                    {i, j, 0}};
      for (const Adjacent& a : adjacent) {
        if (a.ci < 0 || a.ci >= nx || a.cj < 0 || a.cj >= ny) continue;
        const auto cell = static_cast<std::size_t>(grid.cell_at(a.ci, a.cj));
        const double total_pressure =
            state_.pressure[cell] + state_.viscosity[cell];
        if (total_pressure == 0.0) continue;
        const auto nodes =
            grid.nodes_of_cell(static_cast<mesh::CellId>(cell));
        const auto next = static_cast<std::size_t>(nodes[(a.corner + 1) % 4]);
        const auto prev = static_cast<std::size_t>(nodes[(a.corner + 3) % 4]);
        const double dx = state_.node_x[next] - state_.node_x[prev];
        const double dy = state_.node_y[next] - state_.node_y[prev];
        fx += 0.5 * total_pressure * dy;
        fy -= 0.5 * total_pressure * dx;
      }
      state_.force_x[n] = fx;
      state_.force_y[n] = fy;
    }
  });
}

void HydroSolver::phase_integrate() {
  const mesh::Grid& grid = state_.grid();
  parallel_ranges(state_.num_nodes(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t node = begin; node < end; ++node) {
      const auto i = static_cast<std::size_t>(node);
      const double inv_mass =
          (state_.node_mass[i] > 0.0) ? 1.0 / state_.node_mass[i] : 0.0;
      state_.velocity_x[i] += dt_ * state_.force_x[i] * inv_mass;
      state_.velocity_y[i] += dt_ * state_.force_y[i] * inv_mass;
    }
  });
  // Axis of rotation at x = 0: reflecting boundary (no radial motion).
  for (std::int32_t j = 0; j <= grid.ny(); ++j) {
    const auto axis_node = static_cast<std::size_t>(grid.node_at(0, j));
    state_.velocity_x[axis_node] = 0.0;
  }
  if (config_.reflecting_boundaries) {
    // Closed box: zero normal velocity on every boundary.
    for (std::int32_t j = 0; j <= grid.ny(); ++j) {
      state_.velocity_x[static_cast<std::size_t>(grid.node_at(grid.nx(), j))] =
          0.0;
    }
    for (std::int32_t i = 0; i <= grid.nx(); ++i) {
      state_.velocity_y[static_cast<std::size_t>(grid.node_at(i, 0))] = 0.0;
      state_.velocity_y[static_cast<std::size_t>(grid.node_at(i, grid.ny()))] =
          0.0;
    }
  }
  parallel_ranges(state_.num_nodes(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t node = begin; node < end; ++node) {
      const auto i = static_cast<std::size_t>(node);
      state_.node_x[i] += dt_ * state_.velocity_x[i];
      state_.node_y[i] += dt_ * state_.velocity_y[i];
    }
  });
}

void HydroSolver::phase_energy() {
  old_volume_ = state_.cell_volume;
  parallel_ranges(state_.num_cells(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t cell = begin; cell < end; ++cell) {
      const auto i = static_cast<std::size_t>(cell);
      state_.cell_volume[i] =
          state_.compute_cell_volume(static_cast<mesh::CellId>(cell));
      state_.density[i] = state_.cell_mass[i] / state_.cell_volume[i];
      // PdV work: compression heats, expansion cools.
      const double dv = state_.cell_volume[i] - old_volume_[i];
      state_.specific_energy[i] -=
          (state_.pressure[i] + state_.viscosity[i]) * dv /
          state_.cell_mass[i];
      state_.specific_energy[i] = std::max(0.0, state_.specific_energy[i]);
    }
  });
}

void HydroSolver::phase_timestep() {
  double min_dt = config_.max_dt;
  std::mutex combine;
  parallel_ranges(state_.num_cells(), [&](std::int64_t begin, std::int64_t end) {
  double local_min = config_.max_dt;
  for (std::int64_t cell = begin; cell < end; ++cell) {
    const auto i = static_cast<std::size_t>(cell);
    const double length = std::sqrt(state_.cell_volume[i]);
    const auto nodes =
        state_.grid().nodes_of_cell(static_cast<mesh::CellId>(cell));
    double max_speed = state_.sound_speed[i];
    for (mesh::NodeId node : nodes) {
      const auto n = static_cast<std::size_t>(node);
      const double speed = std::sqrt(
          state_.velocity_x[n] * state_.velocity_x[n] +
          state_.velocity_y[n] * state_.velocity_y[n]);
      max_speed = std::max(max_speed, speed);
    }
    if (max_speed > 0.0) {
      local_min = std::min(local_min, config_.cfl * length / max_speed);
    }
  }
  // min is exact and order-independent, so the combine preserves
  // bitwise determinism across thread counts.
  const std::lock_guard<std::mutex> lock(combine);
  min_dt = std::min(min_dt, local_min);
  });
  dt_ = min_dt;
}

StepStats HydroSolver::step() {
  {
    ScopedTimer timer(timers_, HydroPhase::kBurn);
    phase_burn();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kEos);
    phase_eos();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kViscosity);
    phase_viscosity();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kForces);
    phase_forces();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kIntegrate);
    phase_integrate();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kEnergy);
    phase_energy();
  }
  {
    ScopedTimer timer(timers_, HydroPhase::kTimestep);
    phase_timestep();
  }
  state_.time += dt_;
  ++steps_;

  StepStats stats;
  stats.dt = dt_;
  stats.time = state_.time;
  stats.max_pressure = state_.max_pressure().first;
  stats.total_energy = state_.total_energy();
  const MaterialEos& he = eos_for(mesh::Material::kHEGas);
  stats.burn_front_radius = he.detonation_speed * state_.time;
  return stats;
}

StepStats HydroSolver::run_until(double end_time, std::int64_t max_steps) {
  util::check(end_time >= state_.time, "end_time is in the past");
  StepStats stats;
  while (state_.time < end_time && steps_ < max_steps) {
    stats = step();
  }
  return stats;
}

}  // namespace krak::hydro
