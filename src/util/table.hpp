#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace krak::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Plain-text table renderer for benchmark output.
///
/// All bench binaries print their reproduced paper tables through this
/// class so the output format is uniform and diffable across runs.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Set alignment per column (default: kRight for all).
  void set_alignment(std::vector<Align> alignment);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const;

  /// Render with box-drawing ASCII (+, -, |).
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Format helpers shared by bench binaries.
[[nodiscard]] std::string format_double(double value, int precision = 3);
[[nodiscard]] std::string format_ms(double seconds, int precision = 1);
[[nodiscard]] std::string format_us(double seconds, int precision = 2);
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace krak::util
