#include "util/error.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

namespace krak::util {

std::string format_location(const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name() << ")";
  return os.str();
}

std::string errno_message() {
  const int code = errno;
  // Error paths that land here are cold and effectively serialized
  // (file opens before any pool work starts); the GNU/XSI strerror_r
  // split is not worth carrying for a message formatter.
  const char* text = std::strerror(code);  // NOLINT(concurrency-mt-unsafe)
  std::ostringstream os;
  os << (text != nullptr ? text : "unknown error") << " (errno " << code
     << ")";
  return os.str();
}

void check(bool condition, std::string_view message, std::source_location loc) {
  if (!condition) {
    std::ostringstream os;
    os << "precondition violated: " << message << " at " << format_location(loc);
    throw InvalidArgument(os.str());
  }
}

void require_internal(bool condition, std::string_view message,
                      std::source_location loc) {
  if (!condition) {
    std::ostringstream os;
    os << "internal invariant violated: " << message << " at "
       << format_location(loc);
    throw InternalError(os.str());
  }
}

namespace detail {

void throw_requirement(const char* expression, std::string_view message,
                       const std::source_location& loc) {
  std::ostringstream os;
  os << "precondition violated: " << message << " [" << expression << "] at "
     << format_location(loc);
  throw InvalidArgument(os.str());
}

void throw_assertion(const char* expression, std::string_view message,
                     const std::source_location& loc) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expression
     << "] at " << format_location(loc);
  throw InternalError(os.str());
}

void throw_index(std::size_t index, std::size_t size,
                 const std::source_location& loc) {
  std::ostringstream os;
  os << "index " << index << " out of range for size " << size << " at "
     << format_location(loc);
  throw InternalError(os.str());
}

}  // namespace detail

}  // namespace krak::util
