#include "util/error.hpp"

#include <sstream>

namespace krak::util {

std::string format_location(const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name() << ")";
  return os.str();
}

void check(bool condition, std::string_view message, std::source_location loc) {
  if (!condition) {
    std::ostringstream os;
    os << "precondition violated: " << message << " at " << format_location(loc);
    throw InvalidArgument(os.str());
  }
}

void require_internal(bool condition, std::string_view message,
                      std::source_location loc) {
  if (!condition) {
    std::ostringstream os;
    os << "internal invariant violated: " << message << " at "
       << format_location(loc);
    throw InternalError(os.str());
  }
}

}  // namespace krak::util
