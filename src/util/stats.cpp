#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace krak::util {

void OnlineStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::mean() const {
  check(count_ > 0, "OnlineStats::mean requires at least one sample");
  return mean_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  check(count_ > 0, "OnlineStats::min requires at least one sample");
  return min_;
}

double OnlineStats::max() const {
  check(count_ > 0, "OnlineStats::max requires at least one sample");
  return max_;
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  check(x.size() == y.size(), "fit_line requires equal-length spans");
  check(x.size() >= 2, "fit_line requires at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  check(sxx > 0.0, "fit_line requires non-constant x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    fit.r_squared = 1.0;  // all y identical and the fit is exact
  }
  return fit;
}

double relative_error(double measured, double predicted) {
  check(measured != 0.0, "relative_error requires measured != 0");
  return (predicted - measured) / measured;
}

double paper_error(double measured, double predicted) {
  check(measured != 0.0, "paper_error requires measured != 0");
  return (measured - predicted) / measured;
}

double percentile(std::span<const double> values, double p) {
  check(!values.empty(), "percentile requires a non-empty span");
  check(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  check(!values.empty(), "mean requires a non-empty span");
  return kahan_sum(values) / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  check(!values.empty(), "geometric_mean requires a non-empty span");
  double log_sum = 0.0;
  for (double v : values) {
    check(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double c = 0.0;
  for (double v : values) {
    const double y = v - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace krak::util
