#include "util/csv.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace krak::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw KrakError("CsvWriter: cannot open " + path + " for writing");
  }
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  check(!header_written_, "CsvWriter header already written");
  check(rows_ == 0, "CsvWriter header must precede data rows");
  check(!columns.empty(), "CsvWriter header must be non-empty");
  columns_ = columns.size();
  header_written_ = true;
  write_line(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (header_written_) {
    check(cells.size() == columns_, "CsvWriter row width mismatch");
  }
  write_line(cells);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(17) << v;
    cells.push_back(os.str());
  }
  write_row(cells);
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace krak::util
