#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace krak::util {

/// Thrown by cooperative cancellation checkpoints when their token has
/// expired; carries the token's reason ("campaign deadline of 30 s
/// exceeded"). Campaign runners classify it as a transient failure —
/// wall budgets depend on machine load, not on the scenario.
class CancelledError : public KrakError {
 public:
  explicit CancelledError(const std::string& what) : KrakError(what) {}
};

/// Cooperative cancellation token with an optional wall-clock deadline.
///
/// The resilience layer (docs/RESILIENCE.md, "Resumable campaigns")
/// threads a token through core::Campaign, core::PartitionCache, and
/// the simulator so a scenario that blows its wall budget surfaces as a
/// structured failure instead of wedging the sweep. Cancellation is
/// cooperative: nothing is interrupted, long-running loops poll
/// `expired()` at checkpoints (the simulator checks every few thousand
/// events and at every epoch barrier).
///
/// A token may chain to a parent: a per-scenario token expires when its
/// own deadline passes, when it is cancelled explicitly, or when the
/// campaign-wide parent expires. Thread-safe; `expired()` is a couple
/// of relaxed atomic loads plus (when a deadline is armed) one
/// monotonic-clock read through util::Stopwatch.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arm a wall deadline `seconds` from now; <= 0 disarms. Restarts the
  /// budget clock on every call.
  void arm_deadline(double seconds) {
    watch_.restart();
    deadline_seconds_.store(seconds, std::memory_order_relaxed);
  }

  /// Chain to `parent`: this token also expires when `parent` does.
  /// The parent must outlive this token; pass nullptr to unchain.
  void set_parent(const CancellationToken* parent) { parent_ = parent; }

  /// Trip the token explicitly, recording `reason` (first cancel wins).
  void cancel(const std::string& reason) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (reason_.empty()) reason_ = reason;
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// True once the token is cancelled, its deadline has passed, or the
  /// parent (if any) has expired.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const double deadline = deadline_seconds_.load(std::memory_order_relaxed);
    if (deadline > 0.0 && watch_.seconds() > deadline) return true;
    return parent_ != nullptr && parent_->expired();
  }

  /// Why the token expired ("" while it has not): the explicit cancel
  /// reason, a deadline description, or the parent's reason.
  [[nodiscard]] std::string reason() const {
    if (cancelled_.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      return reason_;
    }
    const double deadline = deadline_seconds_.load(std::memory_order_relaxed);
    if (deadline > 0.0 && watch_.seconds() > deadline) {
      return "wall deadline of " + std::to_string(deadline) + " s exceeded";
    }
    if (parent_ != nullptr) return parent_->reason();
    return "";
  }

  /// Checkpoint: throw CancelledError carrying `where` and the reason
  /// once the token has expired; no-op otherwise. Safe on a null
  /// `token`, so call sites need no guard.
  static void check(const CancellationToken* token, std::string_view where) {
    if (token == nullptr || !token->expired()) return;
    throw CancelledError(std::string(where) + " cancelled: " +
                         token->reason());
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<double> deadline_seconds_{0.0};
  Stopwatch watch_;
  const CancellationToken* parent_ = nullptr;
  mutable std::mutex mutex_;
  std::string reason_;
};

}  // namespace krak::util
