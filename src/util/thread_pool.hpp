#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace krak::util {

/// Fixed-size worker pool for embarrassingly parallel sweeps.
///
/// Used by calibration (independent SimKrak runs per subgrid size) and the
/// scaling benches (independent processor counts). Tasks handed to
/// submit() must not throw — an exception escaping a raw task terminates
/// the process. parallel_for is safe: it catches exceptions from fn,
/// stops handing out new indices, and rethrows the first one in the
/// calling thread.
class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// fn is invoked concurrently; it must be safe for concurrent calls
  /// with distinct indices. If any invocation throws, the first
  /// exception (in completion order) is rethrown here after in-flight
  /// indices drain; indices not yet claimed when it was captured are
  /// skipped. Implemented over parallel_for_chunked with grain 1.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Run fn(begin, end) over contiguous chunks of [0, count), at most
  /// `grain` indices per chunk. Workers claim chunks dynamically, so
  /// uneven per-index costs stay balanced while the dispatch cost — one
  /// atomic claim plus one std::function call — is paid once per chunk
  /// instead of once per index. The hot loop inside fn runs without any
  /// type-erased indirection, which is what the partitioner's inner
  /// loops and the campaign sweeps need. Exception semantics match
  /// parallel_for: the first failure is rethrown here and unclaimed
  /// chunks are abandoned.
  void parallel_for_chunked(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace krak::util
