#pragma once

#include <cstdint>

namespace krak::util {

/// Time is represented throughout krakmodel as seconds in double
/// precision; these helpers make literals self-documenting.
[[nodiscard]] constexpr double seconds(double s) { return s; }
[[nodiscard]] constexpr double milliseconds(double ms) { return ms * 1e-3; }
[[nodiscard]] constexpr double microseconds(double us) { return us * 1e-6; }
[[nodiscard]] constexpr double nanoseconds(double ns) { return ns * 1e-9; }

/// Bandwidths: bytes per second.
[[nodiscard]] constexpr double mib_per_second(double mib) {
  return mib * 1024.0 * 1024.0;
}
[[nodiscard]] constexpr double mb_per_second(double mb) { return mb * 1e6; }

/// Byte-count literals.
[[nodiscard]] constexpr std::uint64_t kib(std::uint64_t n) { return n * 1024; }
[[nodiscard]] constexpr std::uint64_t mib(std::uint64_t n) {
  return n * 1024 * 1024;
}

}  // namespace krak::util
