#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace krak::util {

/// How a PiecewiseLinear behaves outside its breakpoint range.
enum class Extrapolation {
  /// Hold the first/last y value constant.
  kClamp,
  /// Continue the first/last segment's slope.
  kLinear,
};

/// How x values are interpolated between breakpoints.
enum class Interpolation {
  /// Straight-line interpolation in x.
  kLinear,
  /// Interpolate linearly in log(x); requires all breakpoint x > 0.
  /// Matches the paper's use of cost curves sampled at geometric sizes
  /// (Figure 3's log-log plots).
  kLogX,
};

/// A piecewise-linear function defined by sorted (x, y) breakpoints.
///
/// This is the paper's modeling primitive: both the per-cell computation
/// cost T(phase, material, n) of Section 3 and the message-cost terms
/// L(S), TB(S) of Equation 4 are "piecewise linear equations" built from
/// measured samples.
class PiecewiseLinear {
 public:
  /// Empty function; add_point() before evaluating.
  PiecewiseLinear() = default;

  /// Build from parallel breakpoint arrays. xs must be strictly
  /// increasing; both spans must be equal, non-empty length.
  PiecewiseLinear(std::span<const double> xs, std::span<const double> ys,
                  Interpolation interp = Interpolation::kLinear,
                  Extrapolation extrap = Extrapolation::kClamp);

  /// Insert a breakpoint, keeping xs sorted. Duplicate x replaces y.
  void add_point(double x, double y);

  void set_interpolation(Interpolation interp);
  void set_extrapolation(Extrapolation extrap);

  [[nodiscard]] Interpolation interpolation() const { return interp_; }
  [[nodiscard]] Extrapolation extrapolation() const { return extrap_; }

  /// Evaluate at x. Requires at least one breakpoint.
  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] std::span<const double> xs() const { return xs_; }
  [[nodiscard]] std::span<const double> ys() const { return ys_; }

  /// Smallest / largest breakpoint x. Requires non-empty.
  [[nodiscard]] double x_min() const;
  [[nodiscard]] double x_max() const;

  /// True if y values never decrease with x (useful sanity check for
  /// bandwidth-cost tables).
  [[nodiscard]] bool is_non_decreasing() const;

 private:
  [[nodiscard]] double interp_segment(std::size_t hi_index, double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
  Interpolation interp_ = Interpolation::kLinear;
  Extrapolation extrap_ = Extrapolation::kClamp;
};

}  // namespace krak::util
