#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace krak::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      alignment_(headers_.size(), Align::kRight) {
  check(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  check(alignment.size() == headers_.size(),
        "alignment vector must match column count");
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "row cell count must match column count");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::size_t TextTable::row_count() const { return rows_.size(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << ' ';
      if (alignment_[c] == Align::kRight) {
        os << std::string(pad, ' ') << cells[c];
      } else {
        os << cells[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_rule();
  emit_cells(headers_);
  emit_rule();
  for (const Row& row : rows_) {
    if (row.rule_before) emit_rule();
    emit_cells(row.cells);
  }
  emit_rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_ms(double seconds, int precision) {
  return format_double(seconds * 1e3, precision) + " ms";
}

std::string format_us(double seconds, int precision) {
  return format_double(seconds * 1e6, precision) + " us";
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_bytes(double bytes) {
  if (bytes < 1024.0) return format_double(bytes, 0) + " B";
  if (bytes < 1024.0 * 1024.0) return format_double(bytes / 1024.0, 1) + " KiB";
  return format_double(bytes / (1024.0 * 1024.0), 2) + " MiB";
}

}  // namespace krak::util
