#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace krak::util {

/// Minimal CSV writer for exporting benchmark series (Figure data).
///
/// Fields containing commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Open `path` for writing (truncates). Throws KrakError on failure.
  explicit CsvWriter(const std::string& path);

  /// Write the header row; must be called at most once, before any row.
  void write_header(const std::vector<std::string>& columns);

  /// Write a data row. Column count must match the header when one was
  /// written.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: write a row of doubles with full precision.
  void write_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_line(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Quote a single CSV field if needed.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace krak::util
