#pragma once

#include <chrono>

namespace krak::util {

/// Monotonic elapsed-seconds stopwatch.
///
/// The only sanctioned wall-clock access outside `src/obs` and
/// `src/util` (krak_lint's no-wall-clock rule, docs/STATIC_ANALYSIS.md):
/// measurement sites hold a Stopwatch instead of touching
/// std::chrono clocks directly, which keeps clock reads auditable and
/// out of the deterministic simulation paths — simulated time never
/// comes from here, only profiling of our own code does.
class Stopwatch {
 public:
  /// Starts running at construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Reset the origin to now.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace krak::util
