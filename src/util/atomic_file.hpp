#pragma once

#include <filesystem>
#include <string_view>

namespace krak::util {

/// Crash-safe whole-file write: the content lands in `<path>.tmp`, is
/// flushed (and fsync'ed where the platform supports it), and only then
/// renamed over `path`. A reader therefore sees either the previous
/// complete file or the new complete file — never a truncated hybrid.
///
/// This is the temp-plus-rename pattern the partition store pioneered,
/// factored out so every artifact writer (krak_bench --out, krakpart
/// entries, campaign journals' recovery rewrites) shares one audited
/// implementation. Throws KrakError naming the path and the OS cause on
/// any failure; the temp file is removed before the throw so repeated
/// failed writes cannot litter the directory.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content);

/// Remove every sibling `*.tmp` file a crashed atomic_write_file (or an
/// interrupted pre-helper writer) left in `directory`; returns how many
/// were removed. Missing or unreadable directories count zero — the
/// sweep is a best-effort hygiene pass, not a contract.
[[nodiscard]] std::size_t remove_orphan_temp_files(
    const std::filesystem::path& directory);

}  // namespace krak::util
