#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace krak::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  check(bound > 0, "Rng::next_below bound must be positive");
  // Lemire-style rejection: accept only values in the largest multiple
  // of `bound` below 2^64.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t value = next_u64();
    if (value >= threshold) return value % bound;
  }
}

double Rng::next_double() {
  // 53 random mantissa bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  check(lo <= hi, "Rng::next_double requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

double Rng::next_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::next_normal(double mean, double stddev) {
  check(stddev >= 0.0, "Rng::next_normal requires stddev >= 0");
  return mean + stddev * next_normal();
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace krak::util
