#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace krak::util {

/// Minimal command-line option parser for the example and benchmark
/// drivers: `--name value`, `--name=value`, and bare `--flag` forms.
///
/// Unknown options are collected rather than rejected so drivers can
/// report them together; positional arguments are preserved in order.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if `--name` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value lookups with defaults. Throw InvalidArgument when the option
  /// is present but its value does not parse.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0], or empty when argc == 0).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace krak::util
