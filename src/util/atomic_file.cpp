#include "util/atomic_file.hpp"

#include <system_error>

#include "util/error.hpp"

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace krak::util {

namespace {

[[noreturn]] void fail(const std::filesystem::path& temp,
                       const std::string& what) {
  // Capture the cause before the cleanup below can clobber errno.
  const std::string cause = errno_message();
  std::error_code ec;
  std::filesystem::remove(temp, ec);
  throw KrakError(what + ": " + cause);
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content) {
  const std::filesystem::path temp = path.string() + ".tmp";
#if defined(_WIN32)
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) fail(temp, "cannot open " + temp.string() + " for writing");
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) fail(temp, "short write to " + temp.string());
  }
#else
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(temp, "cannot open " + temp.string() + " for writing");
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n = ::write(fd, content.data() + written,
                                content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail(temp, "short write to " + temp.string());
    }
    written += static_cast<std::size_t>(n);
  }
  // The flush half of the durability contract: the rename below must
  // never publish a name whose bytes are still in flight, or a crash
  // after the rename could expose a valid name over truncated content.
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail(temp, "cannot flush " + temp.string());
  }
  if (::close(fd) != 0) fail(temp, "cannot close " + temp.string());
#endif
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw KrakError("cannot rename " + temp.string() + " to " + path.string() +
                    ": " + ec.message());
  }
#if !defined(_WIN32)
  // Best-effort directory sync so the rename itself survives a crash;
  // some filesystems refuse to fsync a directory, which is not an error
  // worth failing a run over.
  const std::filesystem::path dir = path.parent_path();
  const int dir_fd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

std::size_t remove_orphan_temp_files(const std::filesystem::path& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const std::filesystem::directory_entry& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".tmp") continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) ++removed;
  }
  return removed;
}

}  // namespace krak::util
