#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace krak::util {

/// Severity levels in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a level name ("debug", "info", "warn", "error", "off");
/// throws InvalidArgument for anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

/// Human-readable name of a level.
[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Minimal process-wide logger.
///
/// Deliberately tiny: experiments are batch jobs, so the logger only needs
/// level filtering and a redirectable sink. Thread-safe for concurrent
/// writes (a single mutex serializes sink access).
class Logger {
 public:
  /// The process-wide instance used by the KRAK_LOG_* helpers.
  static Logger& global();

  /// Messages below `level` are discarded.
  void set_level(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  /// Redirect output (default: std::clog). The stream must outlive the
  /// logger or be reset before destruction.
  void set_sink(std::ostream* sink);

  /// Write one line (a level tag is prepended, a newline appended).
  void write(LogLevel level, std::string_view message);

 private:
  Logger();

  struct Impl;
  Impl* impl_;  // intentionally leaked; logger lives for the whole process
};

namespace detail {
/// Builds the message lazily so disabled levels cost only a comparison.
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  Logger& logger = Logger::global();
  if (level < logger.level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  logger.write(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace krak::util
