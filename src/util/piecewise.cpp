#include "util/piecewise.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace krak::util {

PiecewiseLinear::PiecewiseLinear(std::span<const double> xs,
                                 std::span<const double> ys,
                                 Interpolation interp, Extrapolation extrap)
    : interp_(interp), extrap_(extrap) {
  check(xs.size() == ys.size(), "PiecewiseLinear spans must match in length");
  check(!xs.empty(), "PiecewiseLinear requires at least one breakpoint");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    check(xs[i] > xs[i - 1], "PiecewiseLinear xs must be strictly increasing");
  }
  if (interp_ == Interpolation::kLogX) {
    check(xs.front() > 0.0, "kLogX interpolation requires positive x values");
  }
  xs_.assign(xs.begin(), xs.end());
  ys_.assign(ys.begin(), ys.end());
}

void PiecewiseLinear::add_point(double x, double y) {
  if (interp_ == Interpolation::kLogX) {
    check(x > 0.0, "kLogX interpolation requires positive x values");
  }
  const auto it = std::lower_bound(xs_.begin(), xs_.end(), x);
  const auto index = static_cast<std::size_t>(it - xs_.begin());
  if (it != xs_.end() && *it == x) {
    ys_[index] = y;
    return;
  }
  xs_.insert(it, x);
  ys_.insert(ys_.begin() + static_cast<std::ptrdiff_t>(index), y);
}

void PiecewiseLinear::set_interpolation(Interpolation interp) {
  if (interp == Interpolation::kLogX && !xs_.empty()) {
    check(xs_.front() > 0.0, "kLogX interpolation requires positive x values");
  }
  interp_ = interp;
}

void PiecewiseLinear::set_extrapolation(Extrapolation extrap) {
  extrap_ = extrap;
}

double PiecewiseLinear::x_min() const {
  check(!xs_.empty(), "PiecewiseLinear::x_min on empty function");
  return xs_.front();
}

double PiecewiseLinear::x_max() const {
  check(!xs_.empty(), "PiecewiseLinear::x_max on empty function");
  return xs_.back();
}

bool PiecewiseLinear::is_non_decreasing() const {
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] < ys_[i - 1]) return false;
  }
  return true;
}

double PiecewiseLinear::interp_segment(std::size_t hi_index, double x) const {
  const double x0 = xs_[hi_index - 1];
  const double x1 = xs_[hi_index];
  const double y0 = ys_[hi_index - 1];
  const double y1 = ys_[hi_index];
  double t = 0.0;
  if (interp_ == Interpolation::kLogX) {
    // Callers with kLogX guarantee x > 0 via evaluation-time check.
    t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
  } else {
    t = (x - x0) / (x1 - x0);
  }
  return y0 + t * (y1 - y0);
}

double PiecewiseLinear::operator()(double x) const {
  check(!xs_.empty(), "evaluating an empty PiecewiseLinear");
  if (interp_ == Interpolation::kLogX) {
    check(x > 0.0, "kLogX interpolation requires positive query x");
  }
  if (xs_.size() == 1) return ys_.front();

  if (x <= xs_.front()) {
    if (extrap_ == Extrapolation::kClamp || x == xs_.front()) {
      return ys_.front();
    }
    return interp_segment(1, x);
  }
  if (x >= xs_.back()) {
    if (extrap_ == Extrapolation::kClamp || x == xs_.back()) {
      return ys_.back();
    }
    return interp_segment(xs_.size() - 1, x);
  }
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs_.begin());
  return interp_segment(hi, x);
}

}  // namespace krak::util
