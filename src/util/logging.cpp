#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/error.hpp"

namespace krak::util {

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw InvalidArgument("unknown log level: " + std::string(name));
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

struct Logger::Impl {
  std::atomic<LogLevel> level{LogLevel::kInfo};
  std::mutex mutex;
  std::ostream* sink = &std::clog;
};

Logger::Logger() : impl_(new Impl) {}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_level(LogLevel level) { impl_->level.store(level); }

LogLevel Logger::level() const { return impl_->level.load(); }

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard lock(impl_->mutex);
  impl_->sink = (sink != nullptr) ? sink : &std::clog;
}

void Logger::write(LogLevel level, std::string_view message) {
  std::lock_guard lock(impl_->mutex);
  (*impl_->sink) << "[" << log_level_name(level) << "] " << message << "\n";
}

}  // namespace krak::util
