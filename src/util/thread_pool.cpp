#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/error.hpp"

namespace krak::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  check(static_cast<bool>(task), "ThreadPool::submit requires a callable");
  {
    std::lock_guard lock(mutex_);
    check(!shutting_down_, "ThreadPool::submit after shutdown");
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  check(static_cast<bool>(fn), "ThreadPool::parallel_for requires a callable");
  parallel_for_chunked(count, 1,
                       [&fn](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_chunked(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  check(static_cast<bool>(fn),
        "ThreadPool::parallel_for_chunked requires a callable");
  check(grain > 0, "ThreadPool::parallel_for_chunked requires grain > 0");
  if (count == 0) return;
  // Chunks are claimed dynamically via a shared counter so uneven task
  // costs (e.g. large vs. small processor counts in a sweep) stay
  // balanced. A worker exception must reach the caller, not
  // std::terminate: the first one (by completion order) is captured,
  // later ones are dropped, and remaining chunks are abandoned — a
  // sweep with a broken point has no meaningful partial answer.
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<SharedState>();
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t workers = std::min(chunks, thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    submit([state, count, grain, &fn] {
      for (;;) {
        if (state->failed.load(std::memory_order_acquire)) return;
        const std::size_t begin = state->next.fetch_add(grain);
        if (begin >= count) return;
        try {
          fn(begin, std::min(begin + grain, count));
        } catch (...) {
          std::lock_guard lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  wait_idle();
  if (state->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(state->error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace krak::util
