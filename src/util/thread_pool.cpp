#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace krak::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  check(static_cast<bool>(task), "ThreadPool::submit requires a callable");
  {
    std::lock_guard lock(mutex_);
    check(!shutting_down_, "ThreadPool::submit after shutdown");
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  check(static_cast<bool>(fn), "ThreadPool::parallel_for requires a callable");
  if (count == 0) return;
  // Chunk indices dynamically via a shared counter so uneven task costs
  // (e.g. large vs. small processor counts in a sweep) stay balanced.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(count, thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    submit([next, count, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down with no work left
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace krak::util
