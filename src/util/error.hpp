#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace krak::util {

/// Base class for all errors raised by the krakmodel libraries.
///
/// All library-level contract violations (bad arguments, inconsistent
/// state, unsatisfiable requests) throw KrakError rather than aborting,
/// so that driver programs can report the failure and continue with the
/// next experiment in a sweep.
class KrakError : public std::runtime_error {
 public:
  explicit KrakError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented precondition.
class InvalidArgument : public KrakError {
 public:
  explicit InvalidArgument(const std::string& what) : KrakError(what) {}
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public KrakError {
 public:
  explicit InternalError(const std::string& what) : KrakError(what) {}
};

/// Check a caller-supplied precondition; throws InvalidArgument on failure.
///
/// The source location of the *caller* is embedded into the message so
/// sweep logs identify the offending call site without a debugger.
void check(bool condition, std::string_view message,
           std::source_location loc = std::source_location::current());

/// Check an internal invariant; throws InternalError on failure.
void require_internal(bool condition, std::string_view message,
                      std::source_location loc = std::source_location::current());

/// Format a source location as "file:line (function)".
[[nodiscard]] std::string format_location(const std::source_location& loc);

}  // namespace krak::util
