#pragma once

#include <cstddef>
#include <iterator>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace krak::util {

/// Base class for all errors raised by the krakmodel libraries.
///
/// All library-level contract violations (bad arguments, inconsistent
/// state, unsatisfiable requests) throw KrakError rather than aborting,
/// so that driver programs can report the failure and continue with the
/// next experiment in a sweep.
class KrakError : public std::runtime_error {
 public:
  explicit KrakError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented precondition.
class InvalidArgument : public KrakError {
 public:
  explicit InvalidArgument(const std::string& what) : KrakError(what) {}
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public KrakError {
 public:
  explicit InternalError(const std::string& what) : KrakError(what) {}
};

/// Check a caller-supplied precondition; throws InvalidArgument on failure.
///
/// The source location of the *caller* is embedded into the message so
/// sweep logs identify the offending call site without a debugger.
void check(bool condition, std::string_view message,
           std::source_location loc = std::source_location::current());

/// Check an internal invariant; throws InternalError on failure.
void require_internal(bool condition, std::string_view message,
                      std::source_location loc = std::source_location::current());

/// Format a source location as "file:line (function)".
[[nodiscard]] std::string format_location(const std::source_location& loc);

/// The current errno rendered as "message (errno N)". The single
/// sanctioned strerror call in the tree: every "cannot open <path>"
/// error path formats through here instead of touching the static
/// strerror buffer directly.
[[nodiscard]] std::string errno_message();

namespace detail {

/// Out-of-line throw helpers keep the macro expansions below to a single
/// predictable branch at each call site (hot loops stay inlinable).
[[noreturn]] void throw_requirement(const char* expression,
                                    std::string_view message,
                                    const std::source_location& loc);
[[noreturn]] void throw_assertion(const char* expression,
                                  std::string_view message,
                                  const std::source_location& loc);
[[noreturn]] void throw_index(std::size_t index, std::size_t size,
                              const std::source_location& loc);

}  // namespace detail

/// Bounds-checked element access for vectors, arrays, and spans: the
/// drop-in replacement for raw `v[i]` at contract boundaries. Throws
/// InternalError naming the index, the size, and the call site instead
/// of invoking undefined behavior.
template <typename Container>
[[nodiscard]] constexpr decltype(auto) span_at(
    Container&& container, std::size_t index,
    std::source_location loc = std::source_location::current()) {
  if (index >= std::size(container)) {
    detail::throw_index(index, std::size(container), loc);
  }
  return std::forward<Container>(container)[index];
}

}  // namespace krak::util

/// Check a caller-supplied precondition; throws InvalidArgument with the
/// failing expression text and call site on failure. Unlike util::check
/// the condition text itself lands in the message, so sweep logs show
/// *what* was violated, not only where.
#define KRAK_REQUIRE(condition, message)                            \
  do {                                                              \
    if (!(condition)) {                                             \
      ::krak::util::detail::throw_requirement(                      \
          #condition, (message), std::source_location::current());  \
    }                                                               \
  } while (false)

/// Check an internal invariant; throws InternalError (a library bug)
/// with the failing expression text and call site on failure.
#define KRAK_ASSERT(condition, message)                             \
  do {                                                              \
    if (!(condition)) {                                             \
      ::krak::util::detail::throw_assertion(                        \
          #condition, (message), std::source_location::current());  \
    }                                                               \
  } while (false)
