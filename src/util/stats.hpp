#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace krak::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long calibration sweeps; O(1) state.
class OnlineStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merge another accumulator (parallel reduction support).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = intercept + slope*x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination; 1 means perfect fit.
  double r_squared = 0.0;
};

/// Fit a line through (x, y) pairs. Requires >= 2 points and non-constant x.
[[nodiscard]] LinearFit fit_line(std::span<const double> x,
                                 std::span<const double> y);

/// Signed relative error (predicted - measured) / measured.
/// This matches the paper's Table 5/6 convention up to sign: the paper
/// reports (measured - predicted)/measured; use paper_error() for that.
[[nodiscard]] double relative_error(double measured, double predicted);

/// The paper's error convention: (measured - predicted) / measured.
[[nodiscard]] double paper_error(double measured, double predicted);

/// p-th percentile (0..100) by linear interpolation between order
/// statistics; input need not be sorted (a copy is sorted internally).
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Arithmetic mean of a span; requires at least one element.
[[nodiscard]] double mean(std::span<const double> values);

/// Geometric mean; requires all values > 0.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Sum with Kahan compensation for long series.
[[nodiscard]] double kahan_sum(std::span<const double> values);

}  // namespace krak::util
