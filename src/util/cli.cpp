#include "util/cli.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace krak::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    check(!body.empty(), "empty option name '--'");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option;
    // otherwise a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.contains(name);
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    check(consumed == it->second.size(),
          "trailing characters in integer option --" + name);
    return value;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("option --" + name + " expects an integer, got '" +
                          it->second + "'");
  } catch (const std::out_of_range&) {
    throw InvalidArgument("option --" + name + " value out of range");
  }
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    check(consumed == it->second.size(),
          "trailing characters in numeric option --" + name);
    return value;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("option --" + name + " expects a number, got '" +
                          it->second + "'");
  } catch (const std::out_of_range&) {
    throw InvalidArgument("option --" + name + " value out of range");
  }
}

}  // namespace krak::util
