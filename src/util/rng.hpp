#pragma once

#include <cstdint>

namespace krak::util {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// All stochastic behaviour in krakmodel (partition tie-breaking, SimKrak
/// measurement noise, synthetic workloads) flows through explicitly seeded
/// Rng instances so every experiment is bit-reproducible. The engine is
/// xoshiro256** seeded through SplitMix64, which gives full 256-bit state
/// from a single user seed without correlated low bits.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling so
  /// the distribution is exactly uniform (no modulo bias).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  [[nodiscard]] double next_normal();

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double next_normal(double mean, double stddev);

  /// Fork an independent stream; deterministic given this stream's state.
  [[nodiscard]] Rng split();

  /// Complete engine state, including the Marsaglia normal cache, so a
  /// draw sequence can be suspended and resumed bit-exactly. Used by the
  /// partitioner's coarsening ladder cache to replay the RNG position a
  /// cached coarsening level left off at.
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const {
    return {{state_[0], state_[1], state_[2], state_[3]}, cached_normal_,
            has_cached_normal_};
  }

  void restore(const State& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace krak::util
