#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"

namespace krak::mesh {

using CellId = std::int32_t;
using NodeId = std::int32_t;
using FaceId = std::int32_t;

inline constexpr CellId kNoCell = -1;

/// Structured 2-D quadrilateral grid of nx x ny cells on the unit-less
/// rectangle [0, nx] x [0, ny] (unit cell spacing).
///
/// Krak's spatial grid is a mesh of quadrilateral "cells" bounded by
/// "faces" that connect "nodes" (Section 2). The production code's mesh
/// is unstructured; all the model's inputs (adjacency, face counts,
/// ghost-node counts) are topological, so a structured quad grid whose
/// cells are *partitioned irregularly* reproduces the same statistics.
/// The grid is immutable after construction.
class Grid {
 public:
  /// nx, ny must be positive.
  Grid(std::int32_t nx, std::int32_t ny);

  [[nodiscard]] std::int32_t nx() const { return nx_; }
  [[nodiscard]] std::int32_t ny() const { return ny_; }

  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(nx_) * ny_;
  }
  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nx_ + 1) * (ny_ + 1);
  }
  /// Faces include domain-boundary faces.
  [[nodiscard]] std::int64_t num_faces() const {
    return static_cast<std::int64_t>(nx_ + 1) * ny_ +
           static_cast<std::int64_t>(nx_) * (ny_ + 1);
  }

  // --- index mapping -----------------------------------------------------

  /// Cell at column i (radial), row j (axial); 0 <= i < nx, 0 <= j < ny.
  [[nodiscard]] CellId cell_at(std::int32_t i, std::int32_t j) const;
  [[nodiscard]] std::int32_t cell_i(CellId cell) const;
  [[nodiscard]] std::int32_t cell_j(CellId cell) const;

  [[nodiscard]] NodeId node_at(std::int32_t i, std::int32_t j) const;

  // --- geometry ----------------------------------------------------------

  [[nodiscard]] Point cell_center(CellId cell) const;
  [[nodiscard]] Point node_position(NodeId node) const;

  // --- topology ----------------------------------------------------------

  /// The (up to four) orthogonal neighbors of a cell; kNoCell entries are
  /// suppressed, so the result holds 2..4 cells.
  [[nodiscard]] std::vector<CellId> neighbors_of_cell(CellId cell) const;

  /// The four faces bounding a cell, in order west, east, south, north.
  [[nodiscard]] std::array<FaceId, 4> faces_of_cell(CellId cell) const;

  /// The one or two cells adjacent to a face; the second entry is kNoCell
  /// for a domain-boundary face.
  [[nodiscard]] std::array<CellId, 2> cells_of_face(FaceId face) const;

  /// The two nodes connected by a face.
  [[nodiscard]] std::array<NodeId, 2> nodes_of_face(FaceId face) const;

  /// The four corner nodes of a cell (SW, SE, NE, NW).
  [[nodiscard]] std::array<NodeId, 4> nodes_of_cell(CellId cell) const;

  [[nodiscard]] bool is_boundary_face(FaceId face) const;

  /// The interior face shared by two orthogonally adjacent cells;
  /// throws InvalidArgument if the cells are not adjacent.
  [[nodiscard]] FaceId shared_face(CellId a, CellId b) const;

 private:
  void check_cell(CellId cell) const;
  void check_face(FaceId face) const;

  /// Vertical faces (normal along x) come first in face numbering:
  /// id = j*(nx+1) + i for 0 <= i <= nx, 0 <= j < ny. Horizontal faces
  /// (normal along y) follow: offset + j*nx + i for 0 <= i < nx,
  /// 0 <= j <= ny.
  [[nodiscard]] std::int64_t vertical_face_count() const {
    return static_cast<std::int64_t>(nx_ + 1) * ny_;
  }

  std::int32_t nx_;
  std::int32_t ny_;
};

}  // namespace krak::mesh
