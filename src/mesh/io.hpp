#pragma once

#include <iosfwd>
#include <string>

#include "mesh/deck.hpp"

namespace krak::mesh {

/// Plain-text input-deck format, versioned for forward compatibility:
///
///   krakdeck 1
///   name <string>
///   grid <nx> <ny>
///   detonator <x> <y>
///   materials <run-length encoded cell materials, row-major>
///   end
///
/// Cell materials are run-length encoded as `<count>x<material-index>`
/// tokens (e.g. `1251x0 550x1`), which keeps the paper's layered decks
/// tiny on disk.

/// Serialize a deck. Throws KrakError on stream failure.
void write_deck(std::ostream& out, const InputDeck& deck);
void save_deck(const std::string& path, const InputDeck& deck);

/// Parse a deck; throws KrakError on malformed input (wrong magic,
/// missing fields, cell-count mismatch, unknown material index).
[[nodiscard]] InputDeck read_deck(std::istream& in);
[[nodiscard]] InputDeck load_deck(const std::string& path);

/// Multi-line human-readable summary (dimensions, material census,
/// detonator position).
[[nodiscard]] std::string describe_deck(const InputDeck& deck);

}  // namespace krak::mesh
