#include "mesh/material.hpp"

#include "util/error.hpp"

namespace krak::mesh {

Material material_from_index(std::size_t index) {
  util::check(index < kMaterialCount, "material index out of range");
  return static_cast<Material>(index);
}

std::string_view material_name(Material m) {
  switch (m) {
    case Material::kHEGas: return "High-Explosive Gas";
    case Material::kAluminumInner: return "Aluminum (Inner)";
    case Material::kFoam: return "Foam";
    case Material::kAluminumOuter: return "Aluminum (Outer)";
  }
  return "Unknown";
}

std::string_view material_short_name(Material m) {
  switch (m) {
    case Material::kHEGas: return "HE Gas";
    case Material::kAluminumInner: return "Al (In)";
    case Material::kFoam: return "Foam";
    case Material::kAluminumOuter: return "Al (Out)";
  }
  return "Unknown";
}

std::string_view exchange_group_name(std::size_t group) {
  switch (group) {
    case 0: return "H.E. Gas";
    case 1: return "Aluminum (both)";
    case 2: return "Foam";
    default: break;
  }
  util::check(false, "exchange group out of range");
  return "Unknown";
}

}  // namespace krak::mesh
