#pragma once

namespace krak::mesh {

/// 2-D point. The deck's x axis is the radial direction (distance from
/// the axis of rotation) and y is the axial direction; rotating the
/// rectangle about x = 0 produces the paper's cylindrical domain.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] constexpr Point midpoint(Point a, Point b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

}  // namespace krak::mesh
