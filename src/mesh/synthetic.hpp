#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/deck.hpp"

namespace krak::mesh {

/// Specification of a deterministic synthetic deck: a layered cylinder
/// like the paper's (Figure 1), but with a free grid size and material
/// mix so benches can emit meshes far past the three standard decks —
/// the 100k-rank regime needs ≥100k useful cells to partition
/// (docs/PERFORMANCE.md, "The 100k-rank regime").
///
/// Versioned plain-text format, `kraksynth 1`:
///
///   kraksynth 1
///   name synth-1024x256
///   grid 1024 256
///   layer 0 0.391
///   layer 1 0.172
///   layer 2 0.203
///   layer 3 0.234
///   detonator 0 102.4
///   end
///
/// Each `layer <material-index> <fraction>` is one radial layer, inner
/// to outer; fractions must be positive and sum to 1. Material indices
/// match the krakdeck format's. `detonator` is optional — omitted, the
/// generator uses the paper's placement (on the axis, 0.4 * ny).
struct SyntheticSpec {
  /// One radial layer: a material and its fraction of the columns.
  struct Layer {
    Material material = Material::kHEGas;
    double fraction = 0.0;
  };

  std::string name = "synthetic";
  std::int32_t nx = 0;
  std::int32_t ny = 0;
  /// Inner-to-outer radial layers; see paper_synthetic_spec for the
  /// paper-shaped default mix.
  std::vector<Layer> layers;
  /// Detonator location; a negative y means "use the paper's placement"
  /// (the axis of rotation, slightly below center).
  Point detonator{0.0, -1.0};
};

/// A spec with the paper's four-layer material mix (kPaperMaterialRatios)
/// on an nx x ny grid; `name` defaults to "synthetic-NXxNY".
[[nodiscard]] SyntheticSpec paper_synthetic_spec(std::int32_t nx,
                                                 std::int32_t ny,
                                                 std::string name = "");

/// Materialize the spec into a deck: layer column breaks come from the
/// cumulative fractions (every layer keeps at least one column), and the
/// result is a pure function of the spec — bit-identical across runs,
/// platforms, and thread counts. Throws KrakError on an invalid spec
/// (no layers, non-positive fractions, fractions not summing to 1,
/// fewer columns than layers).
[[nodiscard]] InputDeck make_synthetic_deck(const SyntheticSpec& spec);

/// Serialize a spec. Throws KrakError on stream failure.
void write_synthetic(std::ostream& out, const SyntheticSpec& spec);
void save_synthetic(const std::string& path, const SyntheticSpec& spec);

/// Parse a spec; throws KrakError on malformed input (wrong magic,
/// unknown key, bad layer index, fractions that cannot form a deck).
[[nodiscard]] SyntheticSpec read_synthetic(std::istream& in);
[[nodiscard]] SyntheticSpec load_synthetic(const std::string& path);

}  // namespace krak::mesh
