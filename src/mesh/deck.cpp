#include "mesh/deck.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/error.hpp"

namespace krak::mesh {

using util::check;

std::string_view deck_size_name(DeckSize size) {
  switch (size) {
    case DeckSize::kSmall: return "small";
    case DeckSize::kMedium: return "medium";
    case DeckSize::kLarge: return "large";
  }
  return "unknown";
}

InputDeck::InputDeck(std::string name, Grid grid,
                     std::vector<Material> materials, Point detonator)
    : name_(std::move(name)),
      grid_(grid),
      materials_(std::move(materials)),
      detonator_(detonator) {
  check(static_cast<std::int64_t>(materials_.size()) == grid_.num_cells(),
        "InputDeck material count must equal cell count");
}

Material InputDeck::material_of(CellId cell) const {
  check(cell >= 0 && cell < grid_.num_cells(), "cell id out of range");
  return materials_[static_cast<std::size_t>(cell)];
}

std::array<std::int64_t, kMaterialCount> InputDeck::material_cell_counts()
    const {
  std::array<std::int64_t, kMaterialCount> counts{};
  for (Material m : materials_) ++counts[material_index(m)];
  return counts;
}

std::array<double, kMaterialCount> InputDeck::material_ratios() const {
  const auto counts = material_cell_counts();
  const auto total = static_cast<double>(grid_.num_cells());
  std::array<double, kMaterialCount> ratios{};
  for (std::size_t i = 0; i < kMaterialCount; ++i) {
    ratios[i] = static_cast<double>(counts[i]) / total;
  }
  return ratios;
}

std::size_t InputDeck::distinct_material_count() const {
  const auto counts = material_cell_counts();
  std::size_t distinct = 0;
  for (std::int64_t c : counts) {
    if (c > 0) ++distinct;
  }
  return distinct;
}

InputDeck make_cylindrical_deck(std::int32_t nx, std::int32_t ny) {
  check(nx >= 4, "cylindrical deck needs at least 4 radial columns");
  check(ny >= 1, "cylindrical deck needs at least 1 axial row");
  Grid grid(nx, ny);

  // Radial layer boundaries (in columns) from the paper's cumulative
  // material fractions: HE gas 39.1%, +Al inner 17.2% -> 56.3%,
  // +foam 20.3% -> 76.6%, +Al outer 23.4% -> 100%.
  const auto column_break = [nx](double cumulative_fraction) {
    return static_cast<std::int32_t>(
        std::lround(cumulative_fraction * static_cast<double>(nx)));
  };
  std::array<std::int32_t, 3> breaks = {
      column_break(kPaperMaterialRatios[0]),
      column_break(kPaperMaterialRatios[0] + kPaperMaterialRatios[1]),
      column_break(kPaperMaterialRatios[0] + kPaperMaterialRatios[1] +
                   kPaperMaterialRatios[2])};
  // Force every layer to be at least one column wide on tiny grids.
  breaks[0] = std::clamp(breaks[0], 1, nx - 3);
  breaks[1] = std::clamp(breaks[1], breaks[0] + 1, nx - 2);
  breaks[2] = std::clamp(breaks[2], breaks[1] + 1, nx - 1);

  std::vector<Material> materials(static_cast<std::size_t>(grid.num_cells()));
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      Material m = Material::kAluminumOuter;
      if (i < breaks[0]) {
        m = Material::kHEGas;
      } else if (i < breaks[1]) {
        m = Material::kAluminumInner;
      } else if (i < breaks[2]) {
        m = Material::kFoam;
      }
      materials[static_cast<std::size_t>(grid.cell_at(i, j))] = m;
    }
  }

  // "An explosive detonator is placed on the axis of rotation, slightly
  // below center" (Section 2.1). The axis is x = 0.
  const Point detonator{0.0, 0.4 * static_cast<double>(ny)};
  const std::string name =
      "cylinder-" + std::to_string(nx) + "x" + std::to_string(ny);
  return InputDeck(name, grid, std::move(materials), detonator);
}

std::int64_t standard_deck_cells(DeckSize size) {
  switch (size) {
    case DeckSize::kSmall: return 3200;
    case DeckSize::kMedium: return 204800;
    case DeckSize::kLarge: return 819200;
  }
  check(false, "unknown deck size");
  return 0;
}

InputDeck make_standard_deck(DeckSize size) {
  // All standard decks keep the same 2:1 (radial:axial) cell aspect so
  // the material layer widths scale with resolution.
  switch (size) {
    case DeckSize::kSmall: return make_cylindrical_deck(80, 40);
    case DeckSize::kMedium: return make_cylindrical_deck(640, 320);
    case DeckSize::kLarge: return make_cylindrical_deck(1280, 640);
  }
  check(false, "unknown deck size");
  return make_cylindrical_deck(4, 4);  // unreachable
}

InputDeck make_figure2_deck() { return make_cylindrical_deck(256, 256); }

namespace {

/// Deck names are single tokens (see mesh/io.hpp): slugify material
/// names like "Al (Out)" into "al-out".
std::string material_slug(Material material) {
  std::string slug;
  for (char c : material_short_name(material)) {
    if (c == ' ') {
      slug += '-';
    } else if (c != '(' && c != ')') {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return slug;
}

}  // namespace

InputDeck make_uniform_deck(std::int32_t nx, std::int32_t ny,
                            Material material) {
  Grid grid(nx, ny);
  std::vector<Material> materials(static_cast<std::size_t>(grid.num_cells()),
                                  material);
  const std::string name = "uniform-" + material_slug(material) +
                           "-" + std::to_string(nx) + "x" + std::to_string(ny);
  return InputDeck(name, grid, std::move(materials),
                   Point{0.0, 0.4 * static_cast<double>(ny)});
}

InputDeck make_two_material_deck(std::int32_t nx, std::int32_t ny,
                                 Material other) {
  check(nx % 2 == 0, "two-material deck requires an even column count");
  check(nx >= 2, "two-material deck needs at least 2 columns");
  Grid grid(nx, ny);
  std::vector<Material> materials(static_cast<std::size_t>(grid.num_cells()));
  const std::int32_t half = nx / 2;
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      materials[static_cast<std::size_t>(grid.cell_at(i, j))] =
          (i < half) ? Material::kHEGas : other;
    }
  }
  const std::string name = "two-material-" + material_slug(other) + "-" +
                           std::to_string(nx) + "x" + std::to_string(ny);
  return InputDeck(name, grid, std::move(materials),
                   Point{0.0, 0.4 * static_cast<double>(ny)});
}

}  // namespace krak::mesh
