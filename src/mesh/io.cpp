#include "mesh/io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace krak::mesh {

namespace {

constexpr std::string_view kMagic = "krakdeck";
constexpr int kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
  throw util::KrakError("malformed deck: " + what);
}

}  // namespace

void write_deck(std::ostream& out, const InputDeck& deck) {
  out << kMagic << " " << kVersion << "\n";
  // Names are stored as a single token; whitespace becomes '_'.
  std::string name = deck.name();
  for (char& c : name) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  out << "name " << name << "\n";
  out << "grid " << deck.grid().nx() << " " << deck.grid().ny() << "\n";
  out << "detonator " << deck.detonator().x << " " << deck.detonator().y
      << "\n";
  out << "materials";
  const auto& materials = deck.materials();
  std::size_t i = 0;
  while (i < materials.size()) {
    std::size_t run = 1;
    while (i + run < materials.size() && materials[i + run] == materials[i]) {
      ++run;
    }
    out << " " << run << "x" << material_index(materials[i]);
    i += run;
  }
  out << "\nend\n";
  if (!out) throw util::KrakError("write_deck: stream failure");
}

void save_deck(const std::string& path, const InputDeck& deck) {
  std::ofstream out(path);
  if (!out) {
    throw util::KrakError("save_deck: cannot open " + path + ": " +
                          util::errno_message());
  }
  write_deck(out, deck);
}

InputDeck read_deck(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != kMagic) malformed("bad magic '" + magic + "'");
  if (version != kVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  std::string name;
  std::int32_t nx = 0;
  std::int32_t ny = 0;
  Point detonator;
  std::vector<Material> materials;
  bool saw_grid = false;
  bool saw_end = false;

  std::string key;
  while (in >> key) {
    if (key == "name") {
      if (!(in >> name)) malformed("missing name value");
    } else if (key == "grid") {
      if (!(in >> nx >> ny)) malformed("missing grid dimensions");
      if (nx <= 0 || ny <= 0) malformed("non-positive grid dimensions");
      saw_grid = true;
    } else if (key == "detonator") {
      if (!(in >> detonator.x >> detonator.y)) {
        malformed("missing detonator coordinates");
      }
    } else if (key == "materials") {
      if (!saw_grid) malformed("materials before grid");
      const auto expected =
          static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
      materials.reserve(expected);
      while (materials.size() < expected) {
        std::string token;
        if (!(in >> token)) malformed("truncated materials section");
        const std::size_t x_pos = token.find('x');
        if (x_pos == std::string::npos || x_pos == 0 ||
            x_pos + 1 >= token.size()) {
          malformed("bad run-length token '" + token + "'");
        }
        std::size_t run = 0;
        std::size_t index = 0;
        try {
          run = std::stoull(token.substr(0, x_pos));
          index = std::stoull(token.substr(x_pos + 1));
        } catch (const std::exception&) {
          malformed("bad run-length token '" + token + "'");
        }
        if (run == 0) malformed("zero-length run");
        if (index >= kMaterialCount) {
          malformed("unknown material index " + std::to_string(index));
        }
        if (materials.size() + run > expected) {
          malformed("materials exceed cell count");
        }
        materials.insert(materials.end(), run, material_from_index(index));
      }
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      malformed("unknown key '" + key + "'");
    }
  }
  if (!saw_end) malformed("missing 'end'");
  if (!saw_grid) malformed("missing 'grid'");
  const auto expected =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  if (materials.size() != expected) malformed("missing 'materials'");
  if (name.empty()) name = "unnamed";
  return InputDeck(name, Grid(nx, ny), std::move(materials), detonator);
}

InputDeck load_deck(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::KrakError("load_deck: cannot open " + path + ": " +
                          util::errno_message());
  }
  // Parse errors from read_deck name only the violation; a truncated or
  // corrupted file on disk should name the file too.
  try {
    return read_deck(in);
  } catch (const util::KrakError& error) {
    throw util::KrakError("load_deck: " + path + ": " + error.what());
  }
}

std::string describe_deck(const InputDeck& deck) {
  std::ostringstream os;
  os << "deck '" << deck.name() << "': " << deck.grid().nx() << " x "
     << deck.grid().ny() << " cells (" << deck.grid().num_cells()
     << " total), " << deck.grid().num_nodes() << " nodes, "
     << deck.grid().num_faces() << " faces\n";
  os << "detonator at (" << deck.detonator().x << ", " << deck.detonator().y
     << ")\n";
  const auto counts = deck.material_cell_counts();
  const auto ratios = deck.material_ratios();
  for (Material m : all_materials()) {
    const std::size_t i = material_index(m);
    os << "  " << material_name(m) << ": " << counts[i] << " cells ("
       << util::format_percent(ratios[i]) << ")\n";
  }
  return os.str();
}

}  // namespace krak::mesh
