#include "mesh/grid.hpp"

#include <cstdint>

#include "util/error.hpp"

namespace krak::mesh {

using util::check;

Grid::Grid(std::int32_t nx, std::int32_t ny) : nx_(nx), ny_(ny) {
  check(nx > 0 && ny > 0, "Grid dimensions must be positive");
}

CellId Grid::cell_at(std::int32_t i, std::int32_t j) const {
  check(i >= 0 && i < nx_ && j >= 0 && j < ny_, "cell coordinates out of range");
  return j * nx_ + i;
}

std::int32_t Grid::cell_i(CellId cell) const {
  check_cell(cell);
  return cell % nx_;
}

std::int32_t Grid::cell_j(CellId cell) const {
  check_cell(cell);
  return cell / nx_;
}

NodeId Grid::node_at(std::int32_t i, std::int32_t j) const {
  check(i >= 0 && i <= nx_ && j >= 0 && j <= ny_,
        "node coordinates out of range");
  return j * (nx_ + 1) + i;
}

Point Grid::cell_center(CellId cell) const {
  check_cell(cell);
  return {static_cast<double>(cell_i(cell)) + 0.5,
          static_cast<double>(cell_j(cell)) + 0.5};
}

Point Grid::node_position(NodeId node) const {
  check(node >= 0 && node < num_nodes(), "node id out of range");
  const std::int32_t i = node % (nx_ + 1);
  const std::int32_t j = node / (nx_ + 1);
  return {static_cast<double>(i), static_cast<double>(j)};
}

std::vector<CellId> Grid::neighbors_of_cell(CellId cell) const {
  check_cell(cell);
  const std::int32_t i = cell_i(cell);
  const std::int32_t j = cell_j(cell);
  std::vector<CellId> out;
  out.reserve(4);
  if (i > 0) out.push_back(cell_at(i - 1, j));
  if (i + 1 < nx_) out.push_back(cell_at(i + 1, j));
  if (j > 0) out.push_back(cell_at(i, j - 1));
  if (j + 1 < ny_) out.push_back(cell_at(i, j + 1));
  return out;
}

std::array<FaceId, 4> Grid::faces_of_cell(CellId cell) const {
  check_cell(cell);
  const std::int32_t i = cell_i(cell);
  const std::int32_t j = cell_j(cell);
  const auto vcount = vertical_face_count();
  const FaceId west = static_cast<FaceId>(j * (nx_ + 1) + i);
  const FaceId east = static_cast<FaceId>(j * (nx_ + 1) + i + 1);
  const FaceId south = static_cast<FaceId>(vcount + j * nx_ + i);
  const FaceId north = static_cast<FaceId>(vcount + (j + 1) * nx_ + i);
  return {west, east, south, north};
}

std::array<CellId, 2> Grid::cells_of_face(FaceId face) const {
  check_face(face);
  const auto vcount = vertical_face_count();
  if (face < vcount) {
    // Vertical face between cells (i-1, j) and (i, j).
    const std::int32_t i = face % (nx_ + 1);
    const std::int32_t j = face / (nx_ + 1);
    const CellId left = (i > 0) ? cell_at(i - 1, j) : kNoCell;
    const CellId right = (i < nx_) ? cell_at(i, j) : kNoCell;
    if (left == kNoCell) return {right, kNoCell};
    return {left, right};
  }
  // Horizontal face between cells (i, j-1) and (i, j).
  const FaceId h = face - static_cast<FaceId>(vcount);
  const std::int32_t i = h % nx_;
  const std::int32_t j = h / nx_;
  const CellId below = (j > 0) ? cell_at(i, j - 1) : kNoCell;
  const CellId above = (j < ny_) ? cell_at(i, j) : kNoCell;
  if (below == kNoCell) return {above, kNoCell};
  return {below, above};
}

std::array<NodeId, 2> Grid::nodes_of_face(FaceId face) const {
  check_face(face);
  const auto vcount = vertical_face_count();
  if (face < vcount) {
    const std::int32_t i = face % (nx_ + 1);
    const std::int32_t j = face / (nx_ + 1);
    return {node_at(i, j), node_at(i, j + 1)};
  }
  const FaceId h = face - static_cast<FaceId>(vcount);
  const std::int32_t i = h % nx_;
  const std::int32_t j = h / nx_;
  return {node_at(i, j), node_at(i + 1, j)};
}

std::array<NodeId, 4> Grid::nodes_of_cell(CellId cell) const {
  check_cell(cell);
  const std::int32_t i = cell_i(cell);
  const std::int32_t j = cell_j(cell);
  return {node_at(i, j), node_at(i + 1, j), node_at(i + 1, j + 1),
          node_at(i, j + 1)};
}

bool Grid::is_boundary_face(FaceId face) const {
  const auto cells = cells_of_face(face);
  return cells[1] == kNoCell;
}

FaceId Grid::shared_face(CellId a, CellId b) const {
  check_cell(a);
  check_cell(b);
  const std::int32_t ai = cell_i(a);
  const std::int32_t aj = cell_j(a);
  const std::int32_t bi = cell_i(b);
  const std::int32_t bj = cell_j(b);
  const auto faces_a = faces_of_cell(a);
  if (aj == bj && bi == ai - 1) return faces_a[0];  // b west of a
  if (aj == bj && bi == ai + 1) return faces_a[1];  // b east of a
  if (ai == bi && bj == aj - 1) return faces_a[2];  // b south of a
  if (ai == bi && bj == aj + 1) return faces_a[3];  // b north of a
  check(false, "shared_face requires orthogonally adjacent cells");
  return -1;
}

void Grid::check_cell(CellId cell) const {
  check(cell >= 0 && cell < num_cells(), "cell id out of range");
}

void Grid::check_face(FaceId face) const {
  check(face >= 0 && face < num_faces(), "face id out of range");
}

}  // namespace krak::mesh
