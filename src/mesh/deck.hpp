#pragma once

#include <array>
#include <string>
#include <vector>

#include "mesh/grid.hpp"
#include "mesh/material.hpp"

namespace krak::mesh {

/// The three spatial grid sizes studied by the paper (Section 2.1).
enum class DeckSize {
  kSmall,   ///< 3,200 cells (80 x 40)
  kMedium,  ///< 204,800 cells (640 x 320)
  kLarge,   ///< 819,200 cells (1,280 x 640)
};

[[nodiscard]] std::string_view deck_size_name(DeckSize size);

/// An input deck: a grid plus one material per cell and a detonator
/// location (Section 2.1). Immutable after construction.
class InputDeck {
 public:
  /// materials.size() must equal grid.num_cells().
  InputDeck(std::string name, Grid grid, std::vector<Material> materials,
            Point detonator);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] Point detonator() const { return detonator_; }

  [[nodiscard]] Material material_of(CellId cell) const;
  [[nodiscard]] const std::vector<Material>& materials() const {
    return materials_;
  }

  /// Number of cells of each material.
  [[nodiscard]] std::array<std::int64_t, kMaterialCount> material_cell_counts()
      const;

  /// Fraction of cells of each material (Table 2's heterogeneous row).
  [[nodiscard]] std::array<double, kMaterialCount> material_ratios() const;

  /// Count of distinct materials present.
  [[nodiscard]] std::size_t distinct_material_count() const;

 private:
  std::string name_;
  Grid grid_;
  std::vector<Material> materials_;
  Point detonator_;
};

/// The paper's global material ratios for the heterogeneous general model
/// (Table 2): H.E. gas 39.1%, inner aluminum 17.2%, foam 20.3%, outer
/// aluminum 23.4%.
inline constexpr std::array<double, kMaterialCount> kPaperMaterialRatios = {
    0.391, 0.172, 0.203, 0.234};

/// Build the Figure 1 cylindrical deck on an nx x ny grid: radial layers
/// of HE gas, inner aluminum, foam, and outer aluminum whose column
/// spans approximate kPaperMaterialRatios, with the detonator on the
/// axis of rotation slightly below center.
[[nodiscard]] InputDeck make_cylindrical_deck(std::int32_t nx, std::int32_t ny);

/// One of the paper's three standard decks (2:1 axial:radial aspect).
[[nodiscard]] InputDeck make_standard_deck(DeckSize size);

/// The 65,536-cell deck used for Figure 2 (256 x 256).
[[nodiscard]] InputDeck make_figure2_deck();

/// Single-material deck for calibration runs.
[[nodiscard]] InputDeck make_uniform_deck(std::int32_t nx, std::int32_t ny,
                                          Material material);

/// Two-material calibration deck (Section 3.1, Method 1): HE gas on the
/// left half of the columns (a detonation requires high-explosive gas to
/// be present), `other` on the right half. nx must be even.
[[nodiscard]] InputDeck make_two_material_deck(std::int32_t nx, std::int32_t ny,
                                               Material other);

/// Total cell count for a standard deck size.
[[nodiscard]] std::int64_t standard_deck_cells(DeckSize size);

}  // namespace krak::mesh
