#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace krak::mesh {

/// The four materials of the paper's input deck (Section 2.1, Figure 1):
/// a core of high-explosive gas, a layer of aluminum, a layer of foam,
/// and a second (outer) layer of aluminum.
enum class Material : std::uint8_t {
  kHEGas = 0,
  kAluminumInner = 1,
  kFoam = 2,
  kAluminumOuter = 3,
};

inline constexpr std::size_t kMaterialCount = 4;

/// All materials in deck order (inner to outer).
[[nodiscard]] constexpr std::array<Material, kMaterialCount> all_materials() {
  return {Material::kHEGas, Material::kAluminumInner, Material::kFoam,
          Material::kAluminumOuter};
}

/// Material from its 0-based index; throws InvalidArgument out of range.
[[nodiscard]] Material material_from_index(std::size_t index);

[[nodiscard]] constexpr std::size_t material_index(Material m) {
  return static_cast<std::size_t>(m);
}

/// Long display name, e.g. "High-Explosive Gas".
[[nodiscard]] std::string_view material_name(Material m);

/// Short name for tables, e.g. "HE Gas".
[[nodiscard]] std::string_view material_short_name(Material m);

/// Boundary-exchange material group (Section 4.1): "identical materials
/// (such as the two aluminum materials in our input deck) are treated as
/// one during boundary exchanges". Groups: 0 = HE gas, 1 = aluminum
/// (both layers), 2 = foam.
[[nodiscard]] constexpr std::size_t exchange_group(Material m) {
  switch (m) {
    case Material::kHEGas: return 0;
    case Material::kAluminumInner: return 1;
    case Material::kFoam: return 2;
    case Material::kAluminumOuter: return 1;
  }
  return 0;  // unreachable for valid enumerators
}

inline constexpr std::size_t kExchangeGroupCount = 3;

/// Display name for an exchange group.
[[nodiscard]] std::string_view exchange_group_name(std::size_t group);

}  // namespace krak::mesh
