#include "mesh/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace krak::mesh {

using util::check;

namespace {

constexpr std::string_view kMagic = "kraksynth";
constexpr int kVersion = 1;
/// Slack allowed on the layer-fraction sum: generous enough for decimal
/// round-trips, far tighter than any real mix error.
constexpr double kMixTolerance = 1e-6;

[[noreturn]] void malformed(const std::string& what) {
  throw util::KrakError("malformed synthetic spec: " + what);
}

void check_spec(const SyntheticSpec& spec) {
  check(spec.nx > 0 && spec.ny > 0, "synthetic grid must be positive");
  check(!spec.layers.empty(), "synthetic spec needs at least one layer");
  check(static_cast<std::size_t>(spec.nx) >= spec.layers.size(),
        "synthetic deck needs at least one column per layer");
  double sum = 0.0;
  for (const SyntheticSpec::Layer& layer : spec.layers) {
    check(layer.fraction > 0.0, "layer fractions must be positive");
    sum += layer.fraction;
  }
  check(std::abs(sum - 1.0) <= kMixTolerance,
        "layer fractions must sum to 1");
}

}  // namespace

SyntheticSpec paper_synthetic_spec(std::int32_t nx, std::int32_t ny,
                                   std::string name) {
  SyntheticSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  spec.name = name.empty() ? "synthetic-" + std::to_string(nx) + "x" +
                                 std::to_string(ny)
                           : std::move(name);
  for (Material m : all_materials()) {
    spec.layers.push_back({m, kPaperMaterialRatios[material_index(m)]});
  }
  return spec;
}

InputDeck make_synthetic_deck(const SyntheticSpec& spec) {
  check_spec(spec);
  Grid grid(spec.nx, spec.ny);
  const auto layer_count = static_cast<std::int32_t>(spec.layers.size());

  // Column breaks from the cumulative fractions, clamped so every layer
  // keeps at least one column even on tiny grids (the same scheme as
  // make_cylindrical_deck, generalized to any mix).
  std::vector<std::int32_t> breaks(spec.layers.size());
  double cumulative = 0.0;
  for (std::int32_t l = 0; l < layer_count; ++l) {
    cumulative += spec.layers[static_cast<std::size_t>(l)].fraction;
    const auto target = static_cast<std::int32_t>(
        std::lround(cumulative * static_cast<double>(spec.nx)));
    const std::int32_t lowest = l + 1;
    const std::int32_t highest = spec.nx - (layer_count - 1 - l);
    std::int32_t at = std::clamp(target, lowest, highest);
    if (l > 0) at = std::max(at, breaks[static_cast<std::size_t>(l - 1)] + 1);
    breaks[static_cast<std::size_t>(l)] = at;
  }
  breaks.back() = spec.nx;

  std::vector<Material> materials(static_cast<std::size_t>(grid.num_cells()));
  for (std::int32_t j = 0; j < spec.ny; ++j) {
    std::int32_t layer = 0;
    for (std::int32_t i = 0; i < spec.nx; ++i) {
      while (i >= breaks[static_cast<std::size_t>(layer)]) ++layer;
      materials[static_cast<std::size_t>(grid.cell_at(i, j))] =
          spec.layers[static_cast<std::size_t>(layer)].material;
    }
  }

  const Point detonator =
      spec.detonator.y < 0.0
          ? Point{0.0, 0.4 * static_cast<double>(spec.ny)}
          : spec.detonator;
  return InputDeck(spec.name, grid, std::move(materials), detonator);
}

void write_synthetic(std::ostream& out, const SyntheticSpec& spec) {
  out << kMagic << " " << kVersion << "\n";
  // Names are single tokens, like the krakdeck format's.
  std::string name = spec.name;
  for (char& c : name) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  out << "name " << name << "\n";
  out << "grid " << spec.nx << " " << spec.ny << "\n";
  for (const SyntheticSpec::Layer& layer : spec.layers) {
    out << "layer " << material_index(layer.material) << " " << layer.fraction
        << "\n";
  }
  if (spec.detonator.y >= 0.0) {
    out << "detonator " << spec.detonator.x << " " << spec.detonator.y << "\n";
  }
  out << "end\n";
  if (!out) throw util::KrakError("write_synthetic: stream failure");
}

void save_synthetic(const std::string& path, const SyntheticSpec& spec) {
  std::ofstream out(path);
  if (!out) {
    throw util::KrakError("save_synthetic: cannot open " + path + ": " +
                          util::errno_message());
  }
  write_synthetic(out, spec);
}

SyntheticSpec read_synthetic(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version)) malformed("missing header");
  if (magic != kMagic) malformed("bad magic '" + magic + "'");
  if (version != kVersion) {
    malformed("unsupported version " + std::to_string(version));
  }

  SyntheticSpec spec;
  spec.name.clear();
  bool saw_grid = false;
  bool saw_end = false;

  std::string key;
  while (in >> key) {
    if (key == "name") {
      if (!(in >> spec.name)) malformed("missing name value");
    } else if (key == "grid") {
      if (!(in >> spec.nx >> spec.ny)) malformed("missing grid dimensions");
      if (spec.nx <= 0 || spec.ny <= 0) {
        malformed("non-positive grid dimensions");
      }
      saw_grid = true;
    } else if (key == "layer") {
      std::size_t index = kMaterialCount;
      double fraction = 0.0;
      if (!(in >> index >> fraction)) malformed("missing layer fields");
      if (index >= kMaterialCount) {
        malformed("unknown material index " + std::to_string(index));
      }
      if (fraction <= 0.0 || fraction > 1.0) {
        malformed("layer fraction out of (0, 1]");
      }
      spec.layers.push_back({material_from_index(index), fraction});
    } else if (key == "detonator") {
      if (!(in >> spec.detonator.x >> spec.detonator.y)) {
        malformed("missing detonator coordinates");
      }
      if (spec.detonator.y < 0.0) malformed("detonator outside the grid");
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      malformed("unknown key '" + key + "'");
    }
  }
  if (!saw_end) malformed("missing 'end'");
  if (!saw_grid) malformed("missing 'grid'");
  if (spec.layers.empty()) malformed("missing 'layer' lines");
  double sum = 0.0;
  for (const SyntheticSpec::Layer& layer : spec.layers) {
    sum += layer.fraction;
  }
  if (std::abs(sum - 1.0) > kMixTolerance) {
    malformed("layer fractions sum to " + std::to_string(sum) + ", expected 1");
  }
  if (static_cast<std::size_t>(spec.nx) < spec.layers.size()) {
    malformed("fewer columns than layers");
  }
  if (spec.name.empty()) spec.name = "unnamed";
  return spec;
}

SyntheticSpec load_synthetic(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::KrakError("load_synthetic: cannot open " + path + ": " +
                          util::errno_message());
  }
  try {
    return read_synthetic(in);
  } catch (const util::KrakError& error) {
    throw util::KrakError("load_synthetic: " + path + ": " + error.what());
  }
}

}  // namespace krak::mesh
