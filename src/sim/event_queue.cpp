#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace krak::sim {

void EventQueue::schedule(double time, Action action) {
  KRAK_REQUIRE(time >= now_, "cannot schedule an event in the past");
  KRAK_REQUIRE(static_cast<bool>(action), "event action must be callable");
  events_.push(Event{time, next_seq_++, std::move(action)});
  max_size_ = std::max(max_size_, events_.size());
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!events_.empty()) {
    KRAK_ASSERT(fired < max_events,
                "event queue exceeded max_events (runaway?)");
    // The action may schedule more events, so pop before firing.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.action();
    ++fired;
  }
  return fired;
}

}  // namespace krak::sim
