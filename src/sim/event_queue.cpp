#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace krak::sim {

void EventQueue::schedule(double time, SimEvent event) {
  KRAK_REQUIRE(time >= now_, "cannot schedule an event in the past");
  push_entry(time, event);
}

void EventQueue::inject(double time, SimEvent event) { push_entry(time, event); }

void EventQueue::push_entry(double time, SimEvent event) {
  // The kind occupies the sequence word's low 2 bits, capping sequence
  // numbers at 2^30 — comfortably past kDefaultMaxEvents, but guard it:
  // a silent wrap would corrupt the tie-break order.
  KRAK_REQUIRE(next_seq_ < (std::uint64_t{1} << 30),
               "event sequence numbers exhausted");
  if (heap_.size() < heap_.capacity()) ++pooled_;
  Entry entry;
  entry.time = time;
  entry.value = event.value;
  entry.seq_kind = static_cast<std::uint32_t>(next_seq_++ << 2) |
                   static_cast<std::uint32_t>(event.kind);
  entry.rank = event.rank;
  entry.peer = event.peer;
  entry.tag = event.tag;
  heap_.push_back(entry);
  // Sift up: restore the heap property along the root path.
  std::size_t child = heap_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / kArity;
    if (!heap_[child].before(heap_[parent])) break;
    std::swap(heap_[child], heap_[parent]);
    child = parent;
  }
  max_size_ = std::max(max_size_, heap_.size());
}

EventQueue::Entry EventQueue::pop_min() {
  const Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down: push the displaced tail entry to its place. The heap is
  // kArity-ary: a node's children are contiguous, so the min-of-children
  // scan walks adjacent cache lines while the tree depth (the number of
  // random jumps per pop, the cache-miss driver at the 843k-entry depths
  // the 100k-rank replays reach) is half a binary heap's.
  const std::size_t n = heap_.size();
  std::size_t parent = 0;
  while (true) {
    const std::size_t first = kArity * parent + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t least = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (heap_[child].before(heap_[least])) least = child;
    }
    if (!heap_[least].before(heap_[parent])) break;
    std::swap(heap_[parent], heap_[least]);
    parent = least;
  }
  return top;
}

}  // namespace krak::sim
