#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace krak::sim {

void EventQueue::schedule(double time, SimEvent event) {
  KRAK_REQUIRE(time >= now_, "cannot schedule an event in the past");
  if (heap_.size() < heap_.capacity()) ++pooled_;
  heap_.push_back(Entry{time, next_seq_++, event});
  // Sift up: restore the heap property along the root path.
  std::size_t child = heap_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / 2;
    if (!heap_[child].before(heap_[parent])) break;
    std::swap(heap_[child], heap_[parent]);
    child = parent;
  }
  max_size_ = std::max(max_size_, heap_.size());
}

EventQueue::Entry EventQueue::pop_min() {
  const Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down: push the displaced tail entry to its place.
  const std::size_t n = heap_.size();
  std::size_t parent = 0;
  while (true) {
    const std::size_t left = 2 * parent + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t least = left;
    if (right < n && heap_[right].before(heap_[left])) least = right;
    if (!heap_[least].before(heap_[parent])) break;
    std::swap(heap_[parent], heap_[least]);
    parent = least;
  }
  return top;
}

}  // namespace krak::sim
