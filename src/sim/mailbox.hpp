#pragma once

#include <cstdint>
#include <vector>

#include "sim/ops.hpp"

namespace krak::sim {

/// Per-rank in-flight message store of the discrete-event simulator.
///
/// Conceptually a map from (sending rank, tag) to a FIFO of arrival
/// times. The representation is an open-addressing hash table (linear
/// probing, power-of-two capacity) keyed by the *sending rank only*,
/// whose slots head index-linked FIFO chains of pooled (tag, arrival)
/// records — no per-message heap allocation and no tree walk per
/// delivery. A pop for (peer, tag) takes the first tag match in the
/// peer's chain; records are appended in event-fire order, so that
/// match is exactly the oldest pending arrival of the pair and the
/// per-(peer, tag) FIFO contract holds unchanged.
///
/// Keying by peer instead of (peer, tag) is a working-set decision: a
/// Krak rank exchanges with a handful of neighbors but uses a distinct
/// tag per (phase, step, message), so pair keying filled ~256-slot
/// tables (~4 KB per rank — hundreds of MB across a 100k-rank machine,
/// the dominant cache load of the big replays) where peer keying needs
/// the minimum 16 slots (256 B per rank) and a chain scan bounded by
/// the messages actually in flight from that neighbor
/// (docs/PERFORMANCE.md, "The 100k-rank regime").
///
/// Slots are never erased between grows: a drained chain keeps its key
/// so the steady-state of the Krak exchange pattern (the same neighbors
/// every iteration) probes straight to an existing slot. A grow
/// rehashes live chains only, dropping drained keys — so workloads that
/// churn through ever-new peers cannot accumulate dead slots that push
/// the load factor up and degrade every probe chain (they used to count
/// as occupied forever). Pool records are recycled through a free list.
/// Probe counts are surfaced through `probes()` and exported as
/// `sim.mailbox.probes`.
class Mailbox {
 public:
  /// Append one arrival to the (peer, tag) FIFO.
  void push(RankId peer, std::int32_t tag, double arrival) {
    if (used_ * 4 >= slots_.size() * 3) grow();
    Slot& slot = locate(key_of(peer));
    const std::int32_t record = allocate_record(tag, arrival);
    if (slot.head == -1) {
      slot.head = record;
    } else {
      pool_[static_cast<std::size_t>(slot.tail)].next = record;
    }
    slot.tail = record;
  }

  /// Pop the oldest pending arrival of (peer, tag) into `*arrival`;
  /// returns false when none is pending.
  [[nodiscard]] bool try_pop(RankId peer, std::int32_t tag, double* arrival) {
    if (slots_.empty()) return false;
    Slot* slot = find(key_of(peer));
    if (slot == nullptr) return false;
    std::int32_t prev = -1;
    for (std::int32_t cur = slot->head; cur != -1;) {
      Record& r = pool_[static_cast<std::size_t>(cur)];
      if (r.tag == tag) {
        *arrival = r.arrival;
        if (prev == -1) {
          slot->head = r.next;
        } else {
          pool_[static_cast<std::size_t>(prev)].next = r.next;
        }
        if (slot->tail == cur) slot->tail = prev;
        r.next = free_head_;
        free_head_ = cur;
        return true;
      }
      prev = cur;
      cur = r.next;
    }
    return false;
  }

  /// Slot inspections performed by all lookups so far (the hash table's
  /// work metric; == lookups when every probe hits its home slot).
  [[nodiscard]] std::uint64_t probes() const { return probes_; }

  /// Current slot-array capacity (a power of two; 0 before any push).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Keyed slots (peers) whose FIFO chain is currently non-empty
  /// (O(capacity); a test/diagnostic accessor, not a hot-path one).
  [[nodiscard]] std::size_t live_slots() const {
    std::size_t live = 0;
    for (const Slot& slot : slots_) live += slot.head != -1 ? 1U : 0U;
    return live;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    std::int32_t head = -1;  ///< pool index of the oldest record
    std::int32_t tail = -1;  ///< pool index of the newest record
  };
  struct Record {
    double arrival = 0.0;
    std::int32_t tag = 0;
    std::int32_t next = -1;
  };
  /// peer is a non-negative rank, so the key's high bits are zero and
  /// the all-ones empty sentinel never collides.
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  static std::uint64_t key_of(RankId peer) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer));
  }

  /// SplitMix64 finalizer: avalanches the key so linear probing sees a
  /// uniform distribution even for dense rank ranges.
  static std::uint64_t mix(std::uint64_t key) {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return key;
  }

  /// Find the slot holding `key`, or nullptr when absent.
  [[nodiscard]] Slot* find(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      ++probes_;
      Slot& slot = slots_[i];
      if (slot.key == key) return &slot;
      if (slot.key == kEmptyKey) return nullptr;
    }
  }

  /// Find the slot holding `key`, claiming an empty one when absent.
  [[nodiscard]] Slot& locate(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      ++probes_;
      Slot& slot = slots_[i];
      if (slot.key == key) return slot;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        ++used_;
        return slot;
      }
    }
  }

  [[nodiscard]] std::int32_t allocate_record(std::int32_t tag,
                                             double arrival) {
    if (free_head_ != -1) {
      const std::int32_t record = free_head_;
      Record& r = pool_[static_cast<std::size_t>(record)];
      free_head_ = r.next;
      r.arrival = arrival;
      r.tag = tag;
      r.next = -1;
      return record;
    }
    pool_.push_back(Record{arrival, tag, -1});
    return static_cast<std::int32_t>(pool_.size() - 1);
  }

  void grow() {
    // Rehash live chains only: a drained slot's key is dropped here, so
    // dead keys never count against the load factor across grows. The
    // capacity doubles only when the live keys alone would keep the new
    // table at or above the 3/4 trigger — a churn-only mailbox (every
    // key drained before the next appears) stays at its current size
    // forever instead of doubling on schedule.
    std::vector<Slot> old = std::move(slots_);
    std::size_t live = 0;
    for (const Slot& slot : old) live += slot.head != -1 ? 1U : 0U;
    std::size_t capacity = old.empty() ? 16 : old.size();
    while (live * 4 >= capacity * 3) capacity *= 2;
    slots_.assign(capacity, Slot{});
    const std::size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey || slot.head == -1) continue;
      std::size_t i = mix(slot.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = slot;
    }
    used_ = live;
  }

  std::vector<Slot> slots_;
  std::vector<Record> pool_;
  std::int32_t free_head_ = -1;
  std::size_t used_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace krak::sim
