#include "sim/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace krak::sim {

using util::check;
using util::require_internal;

/// Events between cooperative cancellation checks in the serial engine.
constexpr std::size_t kCancellationCheckInterval = 4096;

std::string_view op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute: return "compute";
    case OpKind::kIsend: return "isend";
    case OpKind::kWaitAllSends: return "wait_all_sends";
    case OpKind::kRecv: return "recv";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kGather: return "gather";
    case OpKind::kRecord: return "record";
  }
  return "unknown";
}

std::string_view sim_failure_kind_name(SimFailure::Kind kind) {
  switch (kind) {
    case SimFailure::Kind::kDeadlock: return "deadlock";
    case SimFailure::Kind::kLostMessage: return "lost-message";
    case SimFailure::Kind::kTimeLimit: return "time-limit";
    case SimFailure::Kind::kEventLimit: return "event-limit";
    case SimFailure::Kind::kDeadline: return "deadline";
    case SimFailure::Kind::kShardMisalignment: return "shard-misalignment";
  }
  return "unknown";
}

double RecordLog::at(std::int32_t slot) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->first == slot) return it->second;
  }
  throw util::KrakError("record slot " + std::to_string(slot) +
                        " was never captured");
}

std::string SimFailure::to_string() const {
  // Keeps the exact wording the simulator used to throw pre-watchdog,
  // so existing log greps and tests keep matching.
  std::ostringstream os;
  switch (kind) {
    case Kind::kDeadlock:
    case Kind::kLostMessage:
      os << "simulation deadlock: rank " << rank << " blocked at op "
         << op_index;
      break;
    case Kind::kTimeLimit:
      os << "simulation watchdog: rank " << rank << " passed the "
         << "simulated-time bound at op " << op_index;
      break;
    case Kind::kEventLimit:
      // Run-level, not per-rank: the exact wording the pre-watchdog
      // KRAK_ASSERT threw, kept grep-compatible.
      os << "event queue exceeded max_events (runaway?)";
      break;
    case Kind::kDeadline:
      os << "simulation cancelled";
      break;
    case Kind::kShardMisalignment:
      // Run-level: the engine refuses to race NIC adapter state rather
      // than return a wrong answer.
      os << "parallel shard layout splits a NIC node across shards";
      break;
  }
  if (has_op) {
    os << " (" << op_kind_name(op);
    if (op == OpKind::kRecv || op == OpKind::kIsend) {
      os << ", peer " << peer << ", tag " << tag;
    }
    os << ")";
  }
  if (!detail.empty()) os << " " << detail;
  return os.str();
}

Simulator::Simulator(std::int32_t ranks, network::MessageCostModel network,
                     SimConfig config)
    : network_(network),
      collectives_(network),
      config_(config),
      schedules_(static_cast<std::size_t>(ranks)) {
  check(ranks > 0, "Simulator requires at least one rank");
}

void Simulator::set_schedule(RankId rank, Schedule schedule) {
  check(rank >= 0 && rank < ranks(), "rank id out of range");
  for (const Op& op : schedule) {
    if (op.kind == OpKind::kIsend || op.kind == OpKind::kRecv) {
      check(op.peer >= 0 && op.peer < ranks(), "op peer out of range");
      check(op.peer != rank, "self-messages are not supported");
    }
    if (op.kind == OpKind::kCompute) {
      check(op.duration >= 0.0, "compute duration must be non-negative");
    }
    if (op.kind == OpKind::kIsend || op.kind == OpKind::kRecv ||
        op.kind == OpKind::kAllreduce || op.kind == OpKind::kBroadcast ||
        op.kind == OpKind::kGather) {
      check(op.bytes >= 0.0, "message size must be non-negative");
    }
  }
  schedules_[static_cast<std::size_t>(rank)] = std::move(schedule);
}

void Simulator::set_nic(NicConfig nic) {
  check(nic.pes_per_node > 0, "NIC pes_per_node must be positive");
  check(nic.injection_bandwidth > 0.0,
        "NIC injection bandwidth must be positive");
  nic_ = nic;
}

void Simulator::set_pair_network(PairCost message_time, PairCost latency) {
  check(static_cast<bool>(message_time) == static_cast<bool>(latency),
        "pair message_time and latency must be set or cleared together");
  pair_message_time_ = std::move(message_time);
  pair_latency_ = std::move(latency);
  hierarchy_ = nullptr;
}

void Simulator::set_pair_network(
    std::shared_ptr<const network::HierarchicalNetwork> network) {
  if (network != nullptr) {
    check(network->placement().pes() >= ranks(),
          "hierarchical placement must cover every rank");
  }
  hierarchy_ = std::move(network);
  pair_message_time_ = nullptr;
  pair_latency_ = nullptr;
}

void Simulator::set_fault_injector(FaultInjector* injector) {
  fault_ = injector;
}

void Simulator::set_watchdog(WatchdogConfig watchdog) { watchdog_ = watchdog; }

void Simulator::set_cancellation(const util::CancellationToken* token) {
  cancel_ = token;
}

void Simulator::check_cancellation() const {
  if (cancel_ == nullptr || !cancel_->expired()) return;
  SimFailure failure;
  failure.kind = SimFailure::Kind::kDeadline;
  failure.detail = "(" + cancel_->reason() + ")";
  throw SimFailureError(std::move(failure));
}

std::int32_t Simulator::shard_unit() const {
  // Shard boundaries align to SMP-node boundaries: with a hierarchical
  // network cross-shard messages are then exactly the inter-node ones
  // (making the inter-node minimum a valid lookahead), and with the
  // shared-NIC model every node's adapter-availability slot is owned by
  // exactly one shard, so the oracle's injection serialization replays
  // without any cross-shard coordination. Installed together, the unit
  // is the least common multiple of both node sizes.
  std::int32_t unit =
      hierarchy_ != nullptr ? hierarchy_->placement().pes_per_node() : 1;
  if (nic_.enabled) unit = std::lcm(unit, nic_.pes_per_node);
  return unit;
}

std::int32_t Simulator::plan_shards() const {
  if (config_.threads <= 1) return 1;
  const std::int32_t unit = shard_unit();
  const std::int32_t units = (ranks() + unit - 1) / unit;
  return std::max(1, std::min(config_.threads, units));
}

SimResult Simulator::run() {
  const std::int32_t shard_count = plan_shards();
  if (shard_count > 1) return run_parallel(shard_count);
  return run_serial();
}

void Simulator::begin_run(SimResult& result) {
  const std::int32_t n = ranks();
  states_.assign(static_cast<std::size_t>(n), RankState{});
  collective_states_.clear();
  collective_base_ = 0;
  collective_high_water_ = 0;
  lost_.clear();
  if (fault_ != nullptr) fault_->on_run_start(n);

  result.finish_times.assign(static_cast<std::size_t>(n), 0.0);
  result.breakdown.assign(static_cast<std::size_t>(n), RankTimeBreakdown{});
  result.records.assign(static_cast<std::size_t>(n), {});

  if (nic_.enabled) {
    const std::int32_t nodes = (n + nic_.pes_per_node - 1) / nic_.pes_per_node;
    nic_free_.assign(static_cast<std::size_t>(nodes), 0.0);
  } else {
    nic_free_.clear();
  }
}

SimResult Simulator::run_serial() {
  const std::int32_t n = ranks();
  SimResult result;
  begin_run(result);
  check_cancellation();

  std::vector<Shard> shards(1);
  Shard& shard = shards.front();
  shard.begin = 0;
  shard.end = n;
  // Pre-size the slab: one kick-off event per rank plus in-flight
  // headroom; growth beyond this is counted against sim.events.pooled.
  shard.queue.reserve(static_cast<std::size_t>(n) * 2 + 64);
  for (RankId r = 0; r < n; ++r) {
    shard.queue.schedule(0.0, SimEvent::step(r));
  }
  EventRunStats run_stats;
  if (cancel_ == nullptr) {
    run_stats = shard.queue.run(
        [this, &shard, &result](const SimEvent& event) {
          dispatch(shard, event, result);
        },
        config_.max_events);
  } else {
    // Cancellation checkpoints every few thousand events: cheap enough
    // to be invisible next to dispatch, frequent enough that a blown
    // wall budget surfaces within microseconds, not minutes. The
    // token-free path above stays branchless per event.
    std::size_t until_check = kCancellationCheckInterval;
    run_stats = shard.queue.run(
        [this, &shard, &result, &until_check](const SimEvent& event) {
          if (--until_check == 0) {
            until_check = kCancellationCheckInterval;
            check_cancellation();
          }
          dispatch(shard, event, result);
        },
        config_.max_events);
  }
  finalize_run(result, shards, run_stats.budget_exhausted, run_stats.fired);
  return result;
}

void Simulator::finalize_run(SimResult& result, std::vector<Shard>& shards,
                             bool budget_exhausted, std::size_t events_fired) {
  const std::int32_t n = ranks();
  result.events_processed = events_fired;
  for (Shard& shard : shards) {
    result.max_queue_depth =
        std::max(result.max_queue_depth, shard.queue.max_size());
    result.pooled_events += shard.queue.pooled_events();
    result.traffic.point_to_point_messages +=
        shard.traffic.point_to_point_messages;
    result.traffic.allreduces += shard.traffic.allreduces;
    result.traffic.broadcasts += shard.traffic.broadcasts;
    result.traffic.gathers += shard.traffic.gathers;
    result.faults.injections += shard.faults.injections;
    result.faults.retransmits += shard.faults.retransmits;
    result.faults.messages_lost += shard.faults.messages_lost;
    for (const auto& [key, count] : shard.lost) lost_[key] += count;
    for (SimFailure& failure : shard.failures) {
      result.failures.push_back(std::move(failure));
    }
    shard.failures.clear();
  }
  // The order-sensitive float accumulations reduce in rank order in BOTH
  // engines, so the totals are bit-identical regardless of how events
  // interleaved across shards during the run.
  for (RankId r = 0; r < n; ++r) {
    const auto index = static_cast<std::size_t>(r);
    result.mailbox_probes += states_[index].mailbox.probes();
    result.traffic.point_to_point_bytes += states_[index].sent_bytes;
    result.faults.fault_delay_seconds += result.breakdown[index].fault_delay;
    result.faults.recovery_seconds += result.breakdown[index].recovery;
  }

  if (budget_exhausted) {
    SimFailure failure;
    failure.kind = SimFailure::Kind::kEventLimit;
    std::ostringstream os;
    os << "(fired " << events_fired << " event(s), budget "
       << config_.max_events << ")";
    failure.detail = os.str();
    if (!watchdog_.structured_failures) {
      throw util::InternalError(failure.to_string());
    }
    result.failures.push_back(std::move(failure));
  }

  for (RankId r = 0; r < n; ++r) {
    const RankState& state = states_[static_cast<std::size_t>(r)];
    // When the event budget tripped, unfinished ranks were stopped by
    // the guard, not by a hang — skip the per-rank deadlock diagnosis.
    if (!state.finished && !state.timed_out && !budget_exhausted) {
      const SimFailure failure = diagnose_stuck_rank(r);
      if (!watchdog_.structured_failures) {
        throw util::KrakError(failure.to_string());
      }
      result.failures.push_back(failure);
    }
    // A failed rank's finish time is the clock where it stuck; its
    // breakdown still sums to that clock exactly.
    result.finish_times[static_cast<std::size_t>(r)] = state.clock;
    result.makespan = std::max(result.makespan, state.clock);
  }

  // Canonical failure order — run-level diagnoses (rank -1) first, then
  // by (rank, op index, kind) — so the list is identical whichever
  // engine, thread count, or event interleave produced it.
  std::stable_sort(result.failures.begin(), result.failures.end(),
                   [](const SimFailure& a, const SimFailure& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.op_index != b.op_index) {
                       return a.op_index < b.op_index;
                     }
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });

  // Run-level probes only — nothing per-op or per-event, so the
  // simulator's hot loop stays instrumentation-free.
  if (obs::enabled()) {
    obs::Registry& registry = obs::global_registry();
    static obs::Counter& runs = registry.counter("sim.runs");
    static obs::Counter& events = registry.counter("sim.events");
    static obs::Counter& pooled = registry.counter("sim.events.pooled");
    static obs::Counter& probes = registry.counter("sim.mailbox.probes");
    static obs::Counter& messages = registry.counter("sim.p2p_messages");
    static obs::Gauge& depth = registry.gauge("sim.max_queue_depth");
    static obs::Gauge& collective_high_water =
        registry.gauge("sim.collective_states_high_water");
    runs.add(1);
    events.add(static_cast<std::int64_t>(result.events_processed));
    pooled.add(static_cast<std::int64_t>(result.pooled_events));
    probes.add(static_cast<std::int64_t>(result.mailbox_probes));
    messages.add(result.traffic.point_to_point_messages);
    depth.set(static_cast<double>(result.max_queue_depth));
    collective_high_water.set(static_cast<double>(collective_high_water_));
    if (fault_ != nullptr) {
      static obs::Counter& injections = registry.counter("fault.injections");
      static obs::Counter& retransmits = registry.counter("fault.retransmits");
      static obs::Counter& lost = registry.counter("fault.lost_messages");
      static obs::Counter& failures = registry.counter("fault.sim_failures");
      static obs::Gauge& delay = registry.gauge("fault.delay_injected_s");
      static obs::Gauge& recovery = registry.gauge("fault.recovery_s");
      injections.add(result.faults.injections);
      retransmits.add(result.faults.retransmits);
      lost.add(result.faults.messages_lost);
      failures.add(static_cast<std::int64_t>(result.failures.size()));
      delay.set(result.faults.fault_delay_seconds);
      recovery.set(result.faults.recovery_seconds);
    }
  }
}

SimFailure Simulator::diagnose_stuck_rank(RankId rank) const {
  const RankState& state = states_[static_cast<std::size_t>(rank)];
  SimFailure failure;
  failure.rank = rank;
  // Report the op the rank actually blocked on: enter_collective
  // advances pc past the collective before parking the rank, so pc
  // would misname the op (or point past the schedule's end).
  failure.op_index = state.blocked ? state.blocked_op : state.pc;
  const Schedule& schedule = schedules_[static_cast<std::size_t>(rank)];
  if (failure.op_index < schedule.size()) {
    const Op& op = schedule[failure.op_index];
    failure.has_op = true;
    failure.op = op.kind;
    failure.peer = op.peer;
    failure.tag = op.tag;
    if (op.kind == OpKind::kRecv) {
      const auto it = lost_.find({op.peer, rank, op.tag});
      if (it != lost_.end() && it->second > 0) {
        failure.kind = SimFailure::Kind::kLostMessage;
        std::ostringstream os;
        os << "waiting for a message lost by the fault plan (" << it->second
           << " loss(es) from peer " << op.peer << ", tag " << op.tag
           << ", retransmit budget exhausted)";
        failure.detail = os.str();
      }
    }
  }
  if (state.reason == BlockReason::kCollectiveWait) {
    failure.detail = "waiting for all ranks to enter the collective";
  }
  return failure;
}

void Simulator::dispatch(Shard& shard, const SimEvent& event,
                         SimResult& result) {
  switch (event.kind) {
    case EventKind::kStepRank: {
      step_rank(shard, event.rank, result);
      break;
    }
    case EventKind::kMessageArrival: {
      RankState& receiver = states_[static_cast<std::size_t>(event.rank)];
      // The payload's true arrival rides in the event (equal to the fire
      // time except for cross-shard payloads injected after the
      // destination queue's clock passed it — the receiver's timing math
      // must always see the true arrival).
      receiver.mailbox.push(event.peer, event.tag, event.value);
      // Only a recv-blocked rank can make progress on delivery; a rank
      // waiting inside a collective must stay parked until the
      // collective completes.
      if (receiver.blocked && receiver.reason == BlockReason::kRecvWait) {
        step_rank(shard, event.rank, result);
      }
      break;
    }
    case EventKind::kCollectiveRelease: {
      // The parallel engine releases collectives at epoch barriers, so
      // this event exists only in the serial oracle's queue.
      require_internal(!shard.parallel,
                       "collective release event in a parallel shard");
      const double completion = shard.queue.now();
      const double cost = event.value;
      RankState& released = states_[static_cast<std::size_t>(event.rank)];
      // The rank's clock froze at its entry time, so the gap to the
      // common completion splits into skew wait (until the last rank
      // entered) plus the tree cost every rank pays.
      RankTimeBreakdown& breakdown =
          result.breakdown[static_cast<std::size_t>(event.rank)];
      breakdown.collective_wait += completion - cost - released.clock;
      breakdown.collective_cost += cost;
      released.clock = std::max(released.clock, completion);
      step_rank(shard, event.rank, result);
      break;
    }
  }
}

void Simulator::step_rank(Shard& shard, RankId rank, SimResult& result) {
  RankState& state = states_[static_cast<std::size_t>(rank)];
  if (state.finished || state.timed_out) return;
  state.blocked = false;
  state.reason = BlockReason::kNone;
  const Schedule& schedule = schedules_[static_cast<std::size_t>(rank)];
  RankTimeBreakdown& breakdown =
      result.breakdown[static_cast<std::size_t>(rank)];

  const auto trip_time_limit = [&]() {
    SimFailure failure;
    failure.kind = SimFailure::Kind::kTimeLimit;
    failure.rank = rank;
    failure.op_index = state.pc;
    if (state.pc < schedule.size()) {
      failure.has_op = true;
      failure.op = schedule[state.pc].kind;
      failure.peer = schedule[state.pc].peer;
      failure.tag = schedule[state.pc].tag;
    }
    std::ostringstream os;
    os << "(clock " << state.clock << " s > bound " << watchdog_.max_sim_seconds
       << " s)";
    failure.detail = os.str();
    shard.failures.push_back(std::move(failure));
    state.timed_out = true;
  };

  while (state.pc < schedule.size() && !state.blocked) {
    if (watchdog_.max_sim_seconds > 0.0 &&
        state.clock > watchdog_.max_sim_seconds) {
      // The rank ran past the simulated-time bound: stop executing its
      // ops and report structurally. The run keeps draining so the
      // other ranks' timings stay meaningful.
      trip_time_limit();
      return;
    }
    const Op& op = schedule[state.pc];
    switch (op.kind) {
      case OpKind::kCompute: {
        if (fault_ != nullptr) {
          const double recovery =
              fault_->recovery_delay(rank, state.compute_index, state.clock);
          if (recovery > 0.0) {
            state.clock += recovery;
            breakdown.recovery += recovery;
            ++shard.faults.injections;
          }
          const double extra =
              fault_->compute_delay(rank, state.compute_index, op.duration);
          if (extra > 0.0) {
            state.clock += extra;
            breakdown.fault_delay += extra;
            ++shard.faults.injections;
          }
          ++state.compute_index;
        }
        state.clock += op.duration;
        breakdown.compute += op.duration;
        ++state.pc;
        break;
      }
      case OpKind::kIsend: {
        state.clock += config_.send_overhead;
        breakdown.send_overhead += config_.send_overhead;
        // Shared-NIC injection: payloads from one node's ranks
        // serialize at the adapter. The serialization delays the wire
        // transfer, not the sender's CPU (asynchronous send).
        double inject_at = state.clock;
        double injected_by = state.clock;
        if (nic_.enabled) {
          // Shard-local under the parallel engine: shard boundaries
          // align to NIC-node boundaries (shard_unit), so this node's
          // slot is touched by no other worker, and events fire in true
          // time order per shard, so the updates replay the oracle's.
          const auto node =
              static_cast<std::size_t>(rank / nic_.pes_per_node);
          if (nic_free_[node] > inject_at) {
            inject_at = nic_free_[node];
            ++shard.nic_conflicts;
          }
          injected_by = inject_at + op.bytes / nic_.injection_bandwidth;
          nic_free_[node] = injected_by;
        }
        // Concrete hierarchical dispatch first: the common production
        // pair network costs two predictable branches per message here
        // instead of a std::function call (bench/sim_hot_loop).
        double wire_time =
            hierarchy_ != nullptr
                ? hierarchy_->message_time(rank, op.peer, op.bytes)
                : (pair_message_time_
                       ? pair_message_time_(rank, op.peer, op.bytes)
                       : network_.message_time(op.bytes));
        const std::int64_t send_ordinal = state.send_index++;
        FaultInjector::MessageFate fate;
        if (fault_ != nullptr) {
          fate = fault_->message_fate(rank, op.peer, op.bytes, send_ordinal);
          wire_time *= fate.bandwidth_factor;
          if (fate.extra_delay > 0.0 || fate.lost ||
              fate.bandwidth_factor != 1.0) {
            ++shard.faults.injections;
          }
          shard.faults.retransmits += fate.retransmits;
        }
        // The payload cannot finish arriving before it finished leaving
        // the adapter.
        const double arrival =
            std::max(inject_at + wire_time, injected_by) + fate.extra_delay;
        // The send completes locally once the payload is handed to the
        // NIC (one start-up latency), not when it arrives remotely.
        const double handoff =
            hierarchy_ != nullptr
                ? hierarchy_->latency(rank, op.peer, op.bytes)
                : (pair_latency_ ? pair_latency_(rank, op.peer, op.bytes)
                                 : network_.latency(op.bytes));
        state.send_completions.push_back(inject_at + handoff);
        ++shard.traffic.point_to_point_messages;
        state.sent_bytes += op.bytes;
        const RankId to = op.peer;
        const std::int32_t tag = op.tag;
        if (fate.lost) {
          // Retries exhausted: the payload never arrives. The sender's
          // local completion is unaffected (asynchronous send); the
          // starved receiver is diagnosed at drain time.
          ++shard.faults.messages_lost;
          ++shard.lost[{rank, to, tag}];
          ++state.pc;
          break;
        }
        if (shard.parallel && !shard.owns(to)) {
          // Bucketed by destination shard so the barrier's merge work
          // parallelizes per destination queue.
          shard.outboxes[static_cast<std::size_t>(
                             shard.shard_of[static_cast<std::size_t>(to)])]
              .push_back({arrival, rank, to, tag, send_ordinal});
          ++shard.outbound_count;
        } else {
          // The arrival never precedes the shard queue's clock: this
          // rank's clock is at or past the event time that woke it
          // (collective releases regress the queue's clock to their own
          // time before the rank steps; see EventQueue::inject), and
          // the arrival is at or past the clock. Firing every event at
          // its true time is what keeps per-shard send order — and so
          // the shard-local NIC state — identical to the oracle's.
          shard.queue.schedule(arrival,
                               SimEvent::arrival(to, rank, tag, arrival));
        }
        ++state.pc;
        break;
      }
      case OpKind::kWaitAllSends: {
        const double before = state.clock;
        for (double completion : state.send_completions) {
          state.clock = std::max(state.clock, completion);
        }
        breakdown.send_wait += state.clock - before;
        state.send_completions.clear();
        ++state.pc;
        break;
      }
      case OpKind::kRecv: {
        double arrival = 0.0;
        if (!state.mailbox.try_pop(op.peer, op.tag, &arrival)) {
          state.blocked = true;
          state.reason = BlockReason::kRecvWait;
          state.blocked_op = state.pc;
          break;
        }
        if (arrival > state.clock) {
          breakdown.recv_wait += arrival - state.clock;
        }
        state.clock = std::max(state.clock, arrival) + config_.recv_overhead;
        breakdown.recv_overhead += config_.recv_overhead;
        ++state.pc;
        break;
      }
      case OpKind::kAllreduce:
      case OpKind::kBroadcast:
      case OpKind::kGather: {
        enter_collective(shard, rank, op);
        break;
      }
      case OpKind::kRecord: {
        result.records[static_cast<std::size_t>(rank)].append(op.slot,
                                                              state.clock);
        ++state.pc;
        break;
      }
    }
  }
  if (state.pc >= schedule.size() && !state.blocked) {
    if (watchdog_.max_sim_seconds > 0.0 &&
        state.clock > watchdog_.max_sim_seconds) {
      // The loop-head check only sees the clock before each op, so a
      // rank whose final ops pushed it past the bound used to finish
      // silently and the run drained "successfully" beyond the watchdog
      // bound. Re-check before declaring the rank done (PR 7 bugfix).
      trip_time_limit();
      return;
    }
    state.finished = true;
  }
}

void Simulator::enter_collective(Shard& shard, RankId rank, const Op& op) {
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const std::size_t index = state.next_collective++;
  // pc moves past the collective now so the release resumes at the next
  // op; blocked_op keeps naming the collective for diagnostics.
  state.blocked_op = state.pc;
  ++state.pc;
  state.blocked = true;
  state.reason = BlockReason::kCollectiveWait;

  if (shard.parallel) {
    // Park the rank and ledger the entry; the epoch barrier merges
    // entries from every shard in canonical (index, rank) order and
    // releases completed collectives from the coordinator.
    shard.collective_entries.push_back(
        {index, rank, op.kind, op.bytes, state.clock});
    return;
  }

  require_internal(index >= collective_base_,
                   "rank entered an already-released collective");
  const std::size_t rel = index - collective_base_;
  if (rel >= collective_states_.size()) {
    collective_states_.resize(rel + 1);
    collective_high_water_ =
        std::max(collective_high_water_, collective_states_.size());
  }
  CollectiveState& coll = collective_states_[rel];
  if (coll.entered == 0) {
    coll.kind = op.kind;
    coll.bytes = op.bytes;
  } else {
    check(coll.kind == op.kind && coll.bytes == op.bytes,
          "mismatched collective sequence across ranks");
  }
  ++coll.entered;
  coll.max_entry = std::max(coll.max_entry, state.clock);

  if (coll.entered < ranks()) return;

  // Last rank in: cost the operation and release everyone.
  double cost = 0.0;
  switch (coll.kind) {
    case OpKind::kAllreduce:
      cost = collectives_.fan_in_fan_out(ranks(), coll.bytes);
      ++shard.traffic.allreduces;
      break;
    case OpKind::kBroadcast:
      cost = collectives_.fan_out(ranks(), coll.bytes);
      ++shard.traffic.broadcasts;
      break;
    case OpKind::kGather:
      cost = collectives_.fan_in(ranks(), coll.bytes);
      ++shard.traffic.gathers;
      break;
    default:
      require_internal(false, "non-collective op in collective state");
  }
  const double completion = coll.max_entry + cost;
  for (RankId r = 0; r < ranks(); ++r) {
    shard.queue.schedule(completion, SimEvent::release(r, cost));
  }
  // Reclaim the released prefix: every rank is parked on this index, so
  // no earlier (or later) window can be live. Erasing here instead of
  // letting the vector grow O(total collectives) is what bounds long
  // replays' memory (the high-water probe pins the steady-state size).
  collective_states_.erase(collective_states_.begin(),
                           collective_states_.begin() +
                               static_cast<std::ptrdiff_t>(rel + 1));
  collective_base_ = index + 1;
}

}  // namespace krak::sim
