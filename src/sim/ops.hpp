#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace krak::sim {

using RankId = std::int32_t;

/// Kinds of operations a simulated rank can execute.
enum class OpKind : std::uint8_t {
  /// Advance the local clock by `duration` seconds of computation.
  kCompute,
  /// Post an asynchronous send of `bytes` to `peer` with matching `tag`.
  /// The sender pays only a CPU injection overhead; the payload arrives
  /// at the receiver one message time later. Sends to different peers
  /// therefore overlap on the wire (Section 4 of the paper: "messages
  /// to multiple neighbors are overlapped").
  kIsend,
  /// Block until all previously posted sends have left the local NIC.
  kWaitAllSends,
  /// Blocking receive of a message from `peer` with matching `tag`.
  kRecv,
  /// Tree allreduce over all ranks of `bytes` payload (synchronizing).
  kAllreduce,
  /// Tree broadcast of `bytes` from rank 0.
  kBroadcast,
  /// Tree gather of `bytes` to rank 0.
  kGather,
  /// Record the local clock into the result's record slot `slot`
  /// (used to extract per-phase times). Free.
  kRecord,
};

[[nodiscard]] std::string_view op_kind_name(OpKind kind);

/// One operation of a rank's static schedule.
struct Op {
  OpKind kind = OpKind::kCompute;
  double duration = 0.0;  ///< kCompute only
  RankId peer = -1;       ///< kIsend / kRecv
  double bytes = 0.0;     ///< message / collective payload
  std::int32_t tag = 0;   ///< kIsend / kRecv matching
  std::int32_t slot = 0;  ///< kRecord only

  [[nodiscard]] static Op compute(double seconds) {
    Op op;
    op.kind = OpKind::kCompute;
    op.duration = seconds;
    return op;
  }
  [[nodiscard]] static Op isend(RankId to, double bytes, std::int32_t tag) {
    Op op;
    op.kind = OpKind::kIsend;
    op.peer = to;
    op.bytes = bytes;
    op.tag = tag;
    return op;
  }
  [[nodiscard]] static Op wait_all_sends() {
    Op op;
    op.kind = OpKind::kWaitAllSends;
    return op;
  }
  [[nodiscard]] static Op recv(RankId from, double bytes, std::int32_t tag) {
    Op op;
    op.kind = OpKind::kRecv;
    op.peer = from;
    op.bytes = bytes;
    op.tag = tag;
    return op;
  }
  [[nodiscard]] static Op allreduce(double bytes) {
    Op op;
    op.kind = OpKind::kAllreduce;
    op.bytes = bytes;
    return op;
  }
  [[nodiscard]] static Op broadcast(double bytes) {
    Op op;
    op.kind = OpKind::kBroadcast;
    op.bytes = bytes;
    return op;
  }
  [[nodiscard]] static Op gather(double bytes) {
    Op op;
    op.kind = OpKind::kGather;
    op.bytes = bytes;
    return op;
  }
  [[nodiscard]] static Op record(std::int32_t slot) {
    Op op;
    op.kind = OpKind::kRecord;
    op.slot = slot;
    return op;
  }
};

using Schedule = std::vector<Op>;

}  // namespace krak::sim
