#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "network/collectives.hpp"
#include "network/msgmodel.hpp"
#include "sim/event_queue.hpp"
#include "sim/ops.hpp"

namespace krak::sim {

/// Tunable host-side costs of the simulated MPI layer.
struct SimConfig {
  /// CPU time a rank spends posting one asynchronous send.
  double send_overhead = 0.4e-6;
  /// CPU time a rank spends completing one blocking receive.
  double recv_overhead = 0.4e-6;
};

/// Optional shared-NIC injection model: the ranks of one SMP node share
/// a single network adapter, so their outbound payloads serialize at
/// the adapter's injection bandwidth. Disabled by default (infinite
/// injection capacity), matching the paper's contention-free Tmsg.
struct NicConfig {
  bool enabled = false;
  /// Ranks per node sharing one adapter.
  std::int32_t pes_per_node = 4;
  /// Adapter injection bandwidth, bytes per second.
  double injection_bandwidth = 300e6;
};

/// Aggregate traffic statistics of one simulation run.
struct TrafficStats {
  std::int64_t point_to_point_messages = 0;
  double point_to_point_bytes = 0.0;
  std::int64_t allreduces = 0;
  std::int64_t broadcasts = 0;
  std::int64_t gathers = 0;
};

/// Where one rank's simulated time went, split so the components sum
/// exactly to the rank's finish time:
///
///   finish = compute + send_overhead + recv_overhead
///          + send_wait + recv_wait + collective_wait + collective_cost
///
/// This is the per-phase decomposition the paper's model reasons about
/// (compute vs. boundary exchange vs. collectives, Eqs. 1-10), measured
/// from the inside of the replay instead of predicted.
struct RankTimeBreakdown {
  /// Time advancing through kCompute ops.
  double compute = 0.0;
  /// CPU cost of posting asynchronous sends (kIsend).
  double send_overhead = 0.0;
  /// CPU cost of completing blocking receives (kRecv).
  double recv_overhead = 0.0;
  /// Time parked in kWaitAllSends until posted payloads left the NIC.
  double send_wait = 0.0;
  /// Time blocked in kRecv for a message that had not yet arrived
  /// (BlockReason::kRecvWait).
  double recv_wait = 0.0;
  /// Time blocked in a collective waiting for the last rank to enter
  /// (BlockReason::kCollectiveWait) — load-imbalance skew.
  double collective_wait = 0.0;
  /// This rank's share of the collective's tree cost proper.
  double collective_cost = 0.0;

  /// Point-to-point communication time (overheads plus waits).
  [[nodiscard]] double p2p_seconds() const {
    return send_overhead + recv_overhead + send_wait + recv_wait;
  }
  /// Collective time (skew wait plus tree cost).
  [[nodiscard]] double collective_seconds() const {
    return collective_wait + collective_cost;
  }
  /// Everything, equal to the rank's finish time by construction.
  [[nodiscard]] double total_seconds() const {
    return compute + p2p_seconds() + collective_seconds();
  }
};

/// Result of running all rank schedules to completion.
struct SimResult {
  /// Time at which the last rank finished (the simulated runtime).
  double makespan = 0.0;
  /// Per-rank completion times.
  std::vector<double> finish_times;
  /// Per-rank time decomposition; breakdown[r].total_seconds() ==
  /// finish_times[r] exactly.
  std::vector<RankTimeBreakdown> breakdown;
  /// records[rank][slot] = clock value captured by kRecord ops.
  std::vector<std::map<std::int32_t, double>> records;
  TrafficStats traffic;
  std::size_t events_processed = 0;
  /// High-water mark of the event queue during the run.
  std::size_t max_queue_depth = 0;
};

/// Discrete-event simulator of message-passing ranks.
///
/// Each rank executes a static Schedule of compute, point-to-point, and
/// collective operations. Point-to-point messages incur the machine's
/// Tmsg(S) (Equation 4) on the wire but only an injection overhead on
/// the sender's CPU, so sends to multiple neighbors overlap — the key
/// semantic the analytic model deliberately ignores (Equations 5-7
/// "do not account for overlapping of messages"). Collectives are
/// synchronizing tree operations costed by CollectiveModel.
class Simulator {
 public:
  Simulator(std::int32_t ranks, network::MessageCostModel network,
            SimConfig config = {});

  [[nodiscard]] std::int32_t ranks() const {
    return static_cast<std::int32_t>(schedules_.size());
  }

  /// Install the schedule for one rank (replaces any existing one).
  void set_schedule(RankId rank, Schedule schedule);

  /// Configure the shared-NIC injection model (see NicConfig).
  void set_nic(NicConfig nic);

  /// Per-pair point-to-point cost functions (e.g. a two-level
  /// intra/inter-node network). When set, point-to-point sends use
  /// them instead of the flat machine model; collectives continue to
  /// use the flat model's tree costs. Pass empty functions to revert.
  using PairCost = std::function<double(RankId from, RankId to, double bytes)>;
  void set_pair_network(PairCost message_time, PairCost latency);

  /// Run all schedules to completion and return the timing result.
  /// Throws KrakError on deadlock (a rank blocks forever) or on
  /// mismatched collective sequences.
  [[nodiscard]] SimResult run();

 private:
  struct Mailbox {
    // (peer, tag) -> FIFO of arrival times.
    std::map<std::pair<RankId, std::int32_t>, std::deque<double>> arrived;
  };
  enum class BlockReason : std::uint8_t { kNone, kRecvWait, kCollectiveWait };
  struct RankState {
    double clock = 0.0;
    std::size_t pc = 0;
    /// Index of the op the rank is blocked on. enter_collective advances
    /// pc past the collective before parking the rank, so pc alone
    /// misidentifies the blocking op in deadlock reports.
    std::size_t blocked_op = 0;
    bool blocked = false;
    BlockReason reason = BlockReason::kNone;
    bool finished = false;
    std::vector<double> send_completions;
    Mailbox mailbox;
    std::size_t next_collective = 0;
  };
  struct CollectiveState {
    OpKind kind = OpKind::kAllreduce;
    double bytes = 0.0;
    std::int32_t entered = 0;
    double max_entry = 0.0;
  };

  void step_rank(RankId rank, SimResult& result);
  void enter_collective(RankId rank, const Op& op, SimResult& result);

  network::MessageCostModel network_;
  network::CollectiveModel collectives_;
  PairCost pair_message_time_;
  PairCost pair_latency_;
  NicConfig nic_;
  /// nic_free_[node]: the earliest time the node's adapter can accept
  /// another payload.
  std::vector<double> nic_free_;
  SimConfig config_;
  std::vector<Schedule> schedules_;
  std::vector<RankState> states_;
  std::vector<CollectiveState> collective_states_;
  EventQueue queue_;
};

}  // namespace krak::sim
