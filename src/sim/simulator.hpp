#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "network/collectives.hpp"
#include "network/msgmodel.hpp"
#include "network/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/ops.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"

namespace krak::sim {

/// Tunable host-side costs of the simulated MPI layer.
struct SimConfig {
  /// CPU time a rank spends posting one asynchronous send.
  double send_overhead = 0.4e-6;
  /// CPU time a rank spends completing one blocking receive.
  double recv_overhead = 0.4e-6;
  /// Runaway-simulation guard: abort the run once this many events have
  /// fired with events still pending. With the watchdog's
  /// structured_failures the trip becomes a SimFailure::Kind::kEventLimit
  /// in SimResult::failures; otherwise Simulator::run throws
  /// InternalError (the historical behavior). The parallel engine checks
  /// the budget at epoch barriers, so a tripped run may overshoot the
  /// budget by up to one epoch before stopping.
  std::size_t max_events = EventQueue::kDefaultMaxEvents;
  /// Worker threads of the conservative parallel engine; <= 1 keeps the
  /// single-thread oracle (docs/PERFORMANCE.md, "Parallel simulation").
  /// Results are bit-identical across thread counts. The shared-NIC
  /// model runs parallel too: shard boundaries align to NIC-node
  /// boundaries, so each shard owns its nodes' adapter-availability
  /// state outright and the oracle's injection serialization replays
  /// exactly (docs/PERFORMANCE.md, "The 100k-rank regime").
  std::int32_t threads = 1;
  /// Epoch lookahead override (seconds) for the parallel engine;
  /// negative means derive it from the network's minimum cross-shard
  /// message time (MessageCostModel::min_message_time). Zero forces the
  /// degenerate null-message-style progression — one timestamp per
  /// epoch — which is always correct, just slower.
  double lookahead = -1.0;
};

/// Optional shared-NIC injection model: the ranks of one SMP node share
/// a single network adapter, so their outbound payloads serialize at
/// the adapter's injection bandwidth. Disabled by default (infinite
/// injection capacity), matching the paper's contention-free Tmsg.
struct NicConfig {
  bool enabled = false;
  /// Ranks per node sharing one adapter.
  std::int32_t pes_per_node = 4;
  /// Adapter injection bandwidth, bytes per second.
  double injection_bandwidth = 300e6;
};

/// Consulted by the simulator, when installed, to perturb a run with
/// deterministic faults (docs/RESILIENCE.md). The simulator charges the
/// returned delays to the RankTimeBreakdown's `fault_delay` / `recovery`
/// components so the per-rank time identity stays exact; message fates
/// perturb the wire only, so their effect shows up downstream as extra
/// recv_wait / collective_wait (propagated delay), never as a broken
/// identity. `fault::InjectionEngine` is the production implementation.
///
/// Thread-safety contract: the parallel engine (SimConfig::threads) calls
/// these hooks concurrently from worker shards, but always for disjoint
/// rank sets — per-rank mutable state needs no locking; anything shared
/// across ranks does. InjectionEngine keeps all mutable state per rank.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Fate of one point-to-point message.
  struct MessageFate {
    /// Seconds added to the wire arrival time (retransmit timeouts,
    /// injected link delay).
    double extra_delay = 0.0;
    /// Multiplies the wire transfer time (NIC/link degradation); 1 is
    /// healthy, 2 means half the bandwidth.
    double bandwidth_factor = 1.0;
    /// Retransmissions folded into extra_delay (for fault statistics).
    std::int32_t retransmits = 0;
    /// Retries exhausted: the payload never arrives. The receiver's
    /// blocking recv becomes a structured failure at drain time.
    bool lost = false;
  };

  /// Called once at the start of every Simulator::run so stateful
  /// injectors (e.g. noise-burst accumulators) reset deterministically.
  virtual void on_run_start(std::int32_t ranks) = 0;

  /// Extra seconds injected into the `index`-th kCompute op of `rank`
  /// (compute slowdown, OS-noise bursts, one-off delays); charged to
  /// `fault_delay`. `duration` is the op's unperturbed length.
  virtual double compute_delay(RankId rank, std::int64_t index,
                               double duration) = 0;

  /// Checkpoint/restart cost charged to `recovery` immediately before
  /// the `index`-th kCompute op of `rank`; `now` is the rank's clock
  /// (used for rework-since-start when no checkpoint interval is set).
  virtual double recovery_delay(RankId rank, std::int64_t index,
                                double now) = 0;

  /// Perturbation of the `send_index`-th kIsend posted by `from`.
  virtual MessageFate message_fate(RankId from, RankId to, double bytes,
                                   std::int64_t send_index) = 0;
};

/// Watchdog policy: how the simulator reports runs that cannot finish.
struct WatchdogConfig {
  /// Convert would-be hangs (deadlocks, receives of lost messages) into
  /// structured SimResult::failures instead of throwing KrakError, so a
  /// sweep can record the diagnosis and keep going.
  bool structured_failures = false;
  /// Abort a rank (structured) once its simulated clock passes this
  /// bound; <= 0 disables. A safety net against fault plans that inject
  /// unbounded delay.
  double max_sim_seconds = 0.0;
};

/// Structured diagnosis of a run that could not complete. `to_string()`
/// renders the exact one-line message the simulator used to throw, so
/// logs stay grep-compatible across the watchdog migration.
struct SimFailure {
  enum class Kind : std::uint8_t {
    /// A rank blocked forever (unmatched recv or collective).
    kDeadlock,
    /// A rank blocked receiving a message the fault plan dropped past
    /// its retransmit budget.
    kLostMessage,
    /// The watchdog's simulated-time bound fired.
    kTimeLimit,
    /// The runaway guard fired: SimConfig::max_events events fired with
    /// events still pending. A run-level diagnosis (rank is -1).
    kEventLimit,
    /// A cooperative cancellation token expired mid-run — a wall-clock
    /// deadline (scenario or campaign budget) or an explicit cancel,
    /// not a simulated-time bound. A run-level diagnosis (rank is -1);
    /// the simulator throws SimFailureError carrying it so the caller
    /// never mistakes a cut-short run for a measurement.
    kDeadline,
    /// The parallel engine's shard layout split a NIC node across two
    /// shards, which would race the node's adapter-availability state.
    /// plan_shards aligns shard boundaries to NIC-node boundaries, so
    /// this is unreachable through the public API; the engine verifies
    /// the precondition anyway and aborts with this run-level diagnosis
    /// (rank is -1, thrown as SimFailureError) rather than ever
    /// returning a wrong answer.
    kShardMisalignment,
  };
  Kind kind = Kind::kDeadlock;
  RankId rank = -1;
  /// Index of the op the rank was executing or blocked on.
  std::size_t op_index = 0;
  /// True when op/peer/tag below describe a real schedule entry.
  bool has_op = false;
  OpKind op = OpKind::kCompute;
  RankId peer = -1;
  std::int32_t tag = 0;
  /// Extra cause context ("waiting for all ranks...", retransmit count).
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string_view sim_failure_kind_name(SimFailure::Kind kind);

/// Thrown by layers that must abort on a SimFailure (e.g. a validation
/// run whose measurement is meaningless); carries the structured cause
/// so campaign sweeps can record it without parsing the message.
class SimFailureError : public util::KrakError {
 public:
  explicit SimFailureError(SimFailure failure)
      : util::KrakError(failure.to_string()), failure_(std::move(failure)) {}
  [[nodiscard]] const SimFailure& failure() const { return failure_; }

 private:
  SimFailure failure_;
};

/// Injection totals of one simulation run (all zero without a fault
/// injector installed).
struct FaultStats {
  /// Discrete injection events that fired (delays, recoveries, message
  /// perturbations).
  std::int64_t injections = 0;
  /// Point-to-point retransmissions performed.
  std::int64_t retransmits = 0;
  /// Messages dropped past their retransmit budget.
  std::int64_t messages_lost = 0;
  /// Seconds charged to fault_delay, summed over ranks.
  double fault_delay_seconds = 0.0;
  /// Seconds charged to recovery, summed over ranks.
  double recovery_seconds = 0.0;
};

/// Aggregate traffic statistics of one simulation run.
struct TrafficStats {
  std::int64_t point_to_point_messages = 0;
  double point_to_point_bytes = 0.0;
  std::int64_t allreduces = 0;
  std::int64_t broadcasts = 0;
  std::int64_t gathers = 0;
};

/// Flat per-rank log of kRecord captures: (slot, clock) pairs appended
/// in execution order. SimKrak's phase markers record strictly
/// increasing slots, so the log doubles as a sorted array its reader
/// walks with a cursor. Flat storage is what lets 100k-rank results fit:
/// the node-based map this replaced cost ~3 heap allocations and ~100
/// bytes of overhead per capture (docs/PERFORMANCE.md, "The 100k-rank
/// regime").
class RecordLog {
 public:
  void append(std::int32_t slot, double clock) {
    entries_.push_back({slot, clock});
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Clock of the most recent capture of `slot` (last write wins,
  /// matching the map semantics this replaced); throws KrakError when
  /// the slot was never recorded. A linear scan — lookup convenience
  /// for tests and tools, not a hot path.
  [[nodiscard]] double at(std::int32_t slot) const;
  [[nodiscard]] const std::vector<std::pair<std::int32_t, double>>& entries()
      const {
    return entries_;
  }
  friend bool operator==(const RecordLog& a, const RecordLog& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<std::pair<std::int32_t, double>> entries_;
};

/// Where one rank's simulated time went, split so the components sum
/// exactly to the rank's finish time:
///
///   finish = compute + send_overhead + recv_overhead
///          + send_wait + recv_wait + collective_wait + collective_cost
///          + fault_delay + recovery
///
/// This is the per-phase decomposition the paper's model reasons about
/// (compute vs. boundary exchange vs. collectives, Eqs. 1-10), measured
/// from the inside of the replay instead of predicted. The last two
/// components are zero unless a fault injector is installed.
struct RankTimeBreakdown {
  /// Time advancing through kCompute ops.
  double compute = 0.0;
  /// CPU cost of posting asynchronous sends (kIsend).
  double send_overhead = 0.0;
  /// CPU cost of completing blocking receives (kRecv).
  double recv_overhead = 0.0;
  /// Time parked in kWaitAllSends until posted payloads left the NIC.
  double send_wait = 0.0;
  /// Time blocked in kRecv for a message that had not yet arrived
  /// (BlockReason::kRecvWait).
  double recv_wait = 0.0;
  /// Time blocked in a collective waiting for the last rank to enter
  /// (BlockReason::kCollectiveWait) — load-imbalance skew.
  double collective_wait = 0.0;
  /// This rank's share of the collective's tree cost proper.
  double collective_cost = 0.0;
  /// Time lost to injected perturbations charged directly to this rank
  /// (compute slowdown, OS-noise bursts, one-off delays); zero without
  /// a fault injector.
  double fault_delay = 0.0;
  /// Checkpoint/restart cost of injected rank crashes; zero without a
  /// fault injector.
  double recovery = 0.0;

  /// Point-to-point communication time (overheads plus waits).
  [[nodiscard]] double p2p_seconds() const {
    return send_overhead + recv_overhead + send_wait + recv_wait;
  }
  /// Collective time (skew wait plus tree cost).
  [[nodiscard]] double collective_seconds() const {
    return collective_wait + collective_cost;
  }
  /// Injected-fault time (directly charged delay plus recovery).
  [[nodiscard]] double fault_seconds() const { return fault_delay + recovery; }
  /// Everything, equal to the rank's finish time by construction.
  [[nodiscard]] double total_seconds() const {
    return compute + p2p_seconds() + collective_seconds() + fault_seconds();
  }
};

/// Result of running all rank schedules to completion.
struct SimResult {
  /// Time at which the last rank finished (the simulated runtime).
  double makespan = 0.0;
  /// Per-rank completion times.
  std::vector<double> finish_times;
  /// Per-rank time decomposition; breakdown[r].total_seconds() ==
  /// finish_times[r] exactly.
  std::vector<RankTimeBreakdown> breakdown;
  /// records[rank]: the clock values captured by the rank's kRecord
  /// ops, in execution order (see RecordLog).
  std::vector<RecordLog> records;
  TrafficStats traffic;
  FaultStats faults;
  /// Structured hang/abort diagnoses; only populated when the watchdog
  /// runs with structured_failures (otherwise the simulator throws).
  /// For a failed rank, finish_times[r] holds the clock where it stuck,
  /// and its breakdown still sums to that clock exactly.
  std::vector<SimFailure> failures;
  /// Engine-mechanics fields below (events, depths, probe counts) are
  /// NOT part of the cross-engine bit-identity contract: the parallel
  /// engine splits the queue per shard, so high-water marks, pooling
  /// and mailbox probe-chain shapes legitimately differ from the
  /// serial oracle even though every simulated outcome above is
  /// bit-identical.
  std::size_t events_processed = 0;
  /// High-water mark of the event queue during the run (parallel: the
  /// largest per-shard high-water mark).
  std::size_t max_queue_depth = 0;
  /// Events scheduled into already-allocated queue capacity (exported
  /// as `sim.events.pooled`; see EventQueue::pooled_events).
  std::uint64_t pooled_events = 0;
  /// Mailbox hash-table slot inspections, summed over ranks (exported
  /// as `sim.mailbox.probes`; see Mailbox::probes).
  std::uint64_t mailbox_probes = 0;
  /// Host wall seconds the parallel engine's coordinator spent in its
  /// serial sections (epoch scalar reductions, collective merge and
  /// release decision, budget checks) — the Amdahl numerator of the
  /// epoch barrier, exported as `sim.parallel.coordinator_s`. Zero
  /// under the serial oracle.
  double coordinator_seconds = 0.0;
  /// Host wall seconds shards spent sorting their outbound runs and
  /// folding collective entries inside the worker phase, summed over
  /// shards (exported as `sim.parallel.sort_s`).
  double sort_seconds = 0.0;
  /// Host wall seconds shards spent k-way-merging inbound runs into
  /// their queues and applying collective releases to their own ranks
  /// at barriers, summed over shards (exported as
  /// `sim.parallel.inject_s`).
  double inject_seconds = 0.0;

  [[nodiscard]] bool failed() const { return !failures.empty(); }
};

/// Discrete-event simulator of message-passing ranks.
///
/// Each rank executes a static Schedule of compute, point-to-point, and
/// collective operations. Point-to-point messages incur the machine's
/// Tmsg(S) (Equation 4) on the wire but only an injection overhead on
/// the sender's CPU, so sends to multiple neighbors overlap — the key
/// semantic the analytic model deliberately ignores (Equations 5-7
/// "do not account for overlapping of messages"). Collectives are
/// synchronizing tree operations costed by CollectiveModel.
class Simulator {
 public:
  Simulator(std::int32_t ranks, network::MessageCostModel network,
            SimConfig config = {});

  [[nodiscard]] std::int32_t ranks() const {
    return static_cast<std::int32_t>(schedules_.size());
  }

  /// Install the schedule for one rank (replaces any existing one).
  void set_schedule(RankId rank, Schedule schedule);

  /// Configure the shared-NIC injection model (see NicConfig).
  void set_nic(NicConfig nic);

  /// Per-pair point-to-point cost functions (e.g. a two-level
  /// intra/inter-node network). When set, point-to-point sends use
  /// them instead of the flat machine model; collectives continue to
  /// use the flat model's tree costs. Pass empty functions to revert.
  /// Opaque callables leave the parallel engine without a usable
  /// lookahead (degenerate epochs) — prefer the HierarchicalNetwork
  /// overload for production pair costs.
  using PairCost = std::function<double(RankId from, RankId to, double bytes)>;
  void set_pair_network(PairCost message_time, PairCost latency);

  /// Devirtualized pair network: sends call the concrete
  /// HierarchicalNetwork directly instead of paying a std::function
  /// dispatch per message on the hot send path, and the parallel engine
  /// derives its lookahead from the inter-node model and aligns shard
  /// boundaries to node boundaries. Overrides (and is overridden by)
  /// the callable form; pass nullptr to revert to the flat model.
  void set_pair_network(
      std::shared_ptr<const network::HierarchicalNetwork> network);

  /// Install (or clear, with nullptr) a fault injector consulted on
  /// every compute op and point-to-point send. Not owned; must outlive
  /// run(). Without one the fault paths cost a single pointer test.
  void set_fault_injector(FaultInjector* injector);

  /// Configure the watchdog (structured failures, simulated-time bound).
  void set_watchdog(WatchdogConfig watchdog);

  /// Install (or clear, with nullptr) a cooperative cancellation token
  /// (docs/RESILIENCE.md, "Resumable campaigns"). Not owned; must
  /// outlive run(). The engines poll it — the serial oracle every few
  /// thousand events, the parallel engine at every epoch barrier — and
  /// an expired token aborts the run by throwing SimFailureError with
  /// Kind::kDeadline, so a blown wall budget can never wedge a sweep.
  void set_cancellation(const util::CancellationToken* token);

  /// Run all schedules to completion and return the timing result.
  /// Throws KrakError on deadlock (a rank blocks forever) or on
  /// mismatched collective sequences — unless the watchdog runs with
  /// structured_failures, in which case hangs are returned as
  /// SimResult::failures and the surviving ranks' timings are kept.
  /// With SimConfig::threads > 1 the conservative parallel engine runs
  /// instead of the serial oracle; every simulated outcome (times,
  /// breakdowns, records, traffic, fault stats, failures) is
  /// bit-identical to the oracle across thread counts.
  [[nodiscard]] SimResult run();

 private:
  enum class BlockReason : std::uint8_t { kNone, kRecvWait, kCollectiveWait };
  struct RankState {
    double clock = 0.0;
    std::size_t pc = 0;
    /// Index of the op the rank is blocked on. enter_collective advances
    /// pc past the collective before parking the rank, so pc alone
    /// misidentifies the blocking op in deadlock reports.
    std::size_t blocked_op = 0;
    bool blocked = false;
    BlockReason reason = BlockReason::kNone;
    bool finished = false;
    /// The watchdog's time bound fired on this rank; it executes no
    /// further ops but is not counted as deadlocked at drain.
    bool timed_out = false;
    std::vector<double> send_completions;
    Mailbox mailbox;
    std::size_t next_collective = 0;
    /// Ordinal of the next kCompute / kIsend op (fault-injection keys;
    /// the send ordinal also canonically orders cross-shard messages).
    std::int64_t compute_index = 0;
    std::int64_t send_index = 0;
    /// Point-to-point payload bytes sent by this rank; reduced in rank
    /// order into TrafficStats so the sum is engine-independent.
    double sent_bytes = 0.0;
  };
  struct CollectiveState {
    OpKind kind = OpKind::kAllreduce;
    double bytes = 0.0;
    std::int32_t entered = 0;
    double max_entry = 0.0;
  };

  /// One execution shard: a contiguous rank range with its own event
  /// queue and tallies. The serial oracle runs a single shard spanning
  /// every rank; the parallel engine gives each worker thread its own,
  /// plus an outbox of cross-shard sends and a ledger of collective
  /// entries, both drained by the coordinator at epoch barriers.
  struct Shard {
    std::int32_t id = 0;
    RankId begin = 0;
    RankId end = 0;  ///< exclusive
    /// Parallel mode: cross-shard sends buffer in `outbox` and
    /// collective entries park in `collective_entries`, both drained by
    /// the coordinator at the epoch barrier. Every event — local or
    /// injected — fires at its true simulated time; only collective
    /// release steps may land below the shard queue's clock (see
    /// EventQueue::inject).
    bool parallel = false;
    EventQueue queue;
    TrafficStats traffic;
    /// Integer fault tallies only; the seconds fields reduce from the
    /// rank breakdowns at finalize so their sum order is engine-free.
    FaultStats faults;
    std::vector<SimFailure> failures;
    std::map<std::tuple<RankId, RankId, std::int32_t>, std::int64_t> lost;
    /// One cross-shard payload buffered during an epoch.
    struct OutboundMessage {
      double arrival = 0.0;
      RankId from = -1;
      RankId to = -1;
      std::int32_t tag = 0;
      /// The sender's kIsend ordinal — with (arrival, from) this gives
      /// the canonical total order barriers inject messages in.
      std::int64_t seq = 0;
    };
    /// Cross-shard payloads bucketed by destination shard
    /// (outboxes[d] holds this shard's sends into shard d). The worker
    /// sorts each run into canonical (arrival, from, seq) order before
    /// the barrier; the destination shard then k-way-merges its inbound
    /// runs in parallel with every other destination, since canonical
    /// order only matters per destination queue (docs/PERFORMANCE.md,
    /// "The epoch coordinator").
    std::vector<std::vector<OutboundMessage>> outboxes;
    /// Payloads pushed into `outboxes` since the last barrier — the
    /// coupled-epoch test without scanning the buckets.
    std::size_t outbound_count = 0;
    /// Rank -> owning shard lookup for outbox bucketing (points into
    /// run_parallel's layout vector; valid for the run's duration).
    const std::int32_t* shard_of = nullptr;
    /// One collective entry recorded during an epoch.
    struct CollectiveEntry {
      std::size_t index = 0;
      RankId rank = -1;
      OpKind kind = OpKind::kCompute;
      double bytes = 0.0;
      double entered_at = 0.0;
    };
    std::vector<CollectiveEntry> collective_entries;
    /// Order-independent fold of one epoch's collective entries for one
    /// index: an integer entry count plus a max over entry times, so
    /// the coordinator merges O(shards) aggregates instead of O(ranks)
    /// entries.
    struct CollectiveAggregate {
      std::size_t index = 0;
      std::int32_t entered = 0;
      double max_entry = 0.0;
      OpKind kind = OpKind::kCompute;
      double bytes = 0.0;
    };
    /// Folded from `collective_entries` by the worker at window end
    /// (ascending index order), consumed serially by the coordinator.
    std::vector<CollectiveAggregate> collective_aggregates;
    /// Barrier scratch: (cursor, end) over the sorted inbound runs this
    /// shard is k-way-merging (pooled across epochs — clear() keeps the
    /// capacity).
    std::vector<std::pair<const OutboundMessage*, const OutboundMessage*>>
        merge_runs;
    /// Sends that found this node's adapter busy (NIC model only):
    /// inject_at was pushed past the sender's clock by nic_free_.
    /// Exported as `sim.parallel.nic_shard_conflicts`.
    std::int64_t nic_conflicts = 0;
    std::size_t fired = 0;
    /// Wall seconds this shard spent executing its last epoch window
    /// (observability only — never feeds back into simulated time).
    double busy_seconds = 0.0;
    /// Published at window end by the worker (and refreshed by the
    /// barrier's apply phase after injections): the shard queue's
    /// next_time(), +infinity when drained. The coordinator reduces
    /// these O(shards) scalars instead of re-scanning queues.
    double next_time = 0.0;
    /// Published with `next_time`: this window produced cross-shard
    /// payloads or collective entries, so the barrier must run.
    bool coupled = false;
    /// Messages the barrier's apply phase merged into this shard's
    /// queue (summed into sim.parallel.cross_shard_messages).
    std::size_t injected = 0;
    /// Wall seconds this shard's worker spent sorting outbound runs and
    /// folding collective entries (observability only).
    double sort_seconds = 0.0;
    /// Wall seconds this shard spent in the barrier's apply phase —
    /// k-way-merging inbound runs and applying collective releases to
    /// its own ranks (observability only).
    double inject_seconds = 0.0;

    [[nodiscard]] bool owns(RankId rank) const {
      return rank >= begin && rank < end;
    }
  };

  void step_rank(Shard& shard, RankId rank, SimResult& result);
  void dispatch(Shard& shard, const SimEvent& event, SimResult& result);
  void enter_collective(Shard& shard, RankId rank, const Op& op);
  /// Diagnose the unfinished rank `rank` at drain time (deadlock or
  /// lost-message starvation).
  [[nodiscard]] SimFailure diagnose_stuck_rank(RankId rank) const;

  /// Shared prologue/epilogue of both engines: reset run state, then
  /// merge per-shard tallies, diagnose stuck ranks, reduce the
  /// order-sensitive float sums in rank order, sort failures
  /// canonically, and emit the run-level observability probes.
  void begin_run(SimResult& result);
  void finalize_run(SimResult& result, std::vector<Shard>& shards,
                    bool budget_exhausted, std::size_t events_fired);

  /// Cancellation checkpoint of both engines: throws SimFailureError
  /// (Kind::kDeadline, rank -1) once the installed token has expired.
  void check_cancellation() const;

  /// How many shards this run uses: 1 (the serial oracle) unless
  /// threads > 1 and at least two shard units exist.
  [[nodiscard]] std::int32_t plan_shards() const;
  /// Rank-count granularity of shard boundaries: the least common
  /// multiple of the hierarchical placement's and the NIC model's
  /// ranks-per-node, so cross-shard messages are exactly the inter-node
  /// ones and every NIC node's adapter state is owned by one shard.
  [[nodiscard]] std::int32_t shard_unit() const;
  /// The epoch lookahead horizon (seconds; 0 means degenerate).
  [[nodiscard]] double plan_lookahead() const;
  [[nodiscard]] SimResult run_serial();
  [[nodiscard]] SimResult run_parallel(std::int32_t shard_count);

  network::MessageCostModel network_;
  network::CollectiveModel collectives_;
  PairCost pair_message_time_;
  PairCost pair_latency_;
  std::shared_ptr<const network::HierarchicalNetwork> hierarchy_;
  NicConfig nic_;
  FaultInjector* fault_ = nullptr;
  WatchdogConfig watchdog_;
  const util::CancellationToken* cancel_ = nullptr;
  /// (from, to, tag) -> count of messages the fault plan lost for good;
  /// consulted when diagnosing a starved receiver. Merged from the
  /// per-shard ledgers before drain diagnosis.
  std::map<std::tuple<RankId, RankId, std::int32_t>, std::int64_t> lost_;
  /// nic_free_[node]: the earliest time the node's adapter can accept
  /// another payload. Safe under the parallel engine without locks:
  /// shard boundaries align to NIC-node boundaries (shard_unit), so
  /// each node's slot is read and written by exactly one worker.
  std::vector<double> nic_free_;
  SimConfig config_;
  std::vector<Schedule> schedules_;
  std::vector<RankState> states_;
  /// In-flight collective windows, indexed by `collective index -
  /// collective_base_`. Released collectives are reclaimed eagerly:
  /// once index k releases, no rank can ever enter an index <= k again,
  /// so the prefix is erased and `collective_base_` advances. Only the
  /// frontier index can be partially entered at any instant, which
  /// keeps the live window O(1) regardless of how many collectives a
  /// replay executes (the `sim.collective_states_high_water` probe
  /// pins this).
  std::vector<CollectiveState> collective_states_;
  /// Absolute collective index of collective_states_[0].
  std::size_t collective_base_ = 0;
  /// Largest live collective_states_ size seen this run.
  std::size_t collective_high_water_ = 0;
};

}  // namespace krak::sim
