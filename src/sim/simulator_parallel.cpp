#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace krak::sim {

using util::check;
using util::require_internal;

double Simulator::plan_lookahead() const {
  if (config_.lookahead >= 0.0) return config_.lookahead;
  if (hierarchy_ != nullptr) {
    // Shards align to node boundaries (plan_shards), so every
    // cross-shard payload pays at least the inter-node minimum.
    return hierarchy_->inter_node().min_message_time();
  }
  // Opaque pair callables admit no bound; fall back to the degenerate
  // one-timestamp-per-epoch (null-message-style) progression.
  if (pair_message_time_) return 0.0;
  return network_.min_message_time();
}

/// Conservative parallel engine: ranks shard into contiguous blocks,
/// each with its own event queue, stepped in bounded time windows
/// (epochs). The window's horizon is the global minimum next-event time
/// plus the lookahead — the least time any cross-shard payload spends on
/// the wire — so every shard can safely fire everything below it without
/// hearing from its peers; with a degenerate lookahead each epoch fires
/// exactly the minimum timestamp (null-message-style progression). At
/// the barrier the coordinator injects cross-shard payloads in canonical
/// (arrival, sender, send-ordinal) order and releases completed
/// collectives in index order, which makes every simulated outcome
/// bit-identical to the serial oracle regardless of the thread count
/// (docs/PERFORMANCE.md, "Parallel simulation"). Every event fires at
/// its true simulated time, so each shard replays the oracle's event
/// order over its own ranks — which is what lets per-node
/// order-sensitive state (the shared-NIC adapter availability) live
/// unsynchronized inside the shard that owns the node.
// krak: hot
SimResult Simulator::run_parallel(std::int32_t shard_count) {
  const std::int32_t n = ranks();
  require_internal(shard_count > 1 && shard_count <= n,
                   "parallel run needs 2..ranks shards");
  SimResult result;
  begin_run(result);

  // Contiguous block sharding over node-aligned units (shard_unit):
  // the first (units % shards) shards take one extra unit.
  const std::int32_t unit = shard_unit();
  const std::int32_t units = (n + unit - 1) / unit;
  std::vector<Shard> shards(static_cast<std::size_t>(shard_count));
  std::vector<std::int32_t> shard_of(static_cast<std::size_t>(n), 0);
  std::int32_t next_unit = 0;
  for (std::int32_t s = 0; s < shard_count; ++s) {
    Shard& shard = shards[static_cast<std::size_t>(s)];
    shard.id = s;
    shard.parallel = true;
    shard.begin = std::min(n, next_unit * unit);
    next_unit += units / shard_count + (s < units % shard_count ? 1 : 0);
    shard.end = std::min(n, next_unit * unit);
    shard.queue.reserve(
        static_cast<std::size_t>(shard.end - shard.begin) * 2 + 64);
    // Pooled across every epoch of the run: clear() keeps capacity, so
    // steady-state barriers allocate nothing.
    shard.outbox.reserve(64);
    shard.collective_entries.reserve(
        static_cast<std::size_t>(shard.end - shard.begin));
    for (RankId r = shard.begin; r < shard.end; ++r) {
      shard_of[static_cast<std::size_t>(r)] = s;
      shard.queue.schedule(0.0, SimEvent::step(r));
    }
  }
  require_internal(next_unit == units && shards.back().end == n,
                   "shard layout must cover every rank");
  if (nic_.enabled) {
    // Defensive: shard_unit makes every boundary a NIC-node multiple,
    // so this cannot fire through the public API. Should the layout
    // logic ever diverge, refuse to race adapter state — a structured
    // abort, never a wrong answer.
    for (const Shard& shard : shards) {
      if (shard.begin % nic_.pes_per_node != 0) {
        SimFailure failure;
        failure.kind = SimFailure::Kind::kShardMisalignment;
        std::ostringstream os;
        os << "(shard " << shard.id << " begins at rank " << shard.begin
           << ", NIC node size " << nic_.pes_per_node << ")";
        failure.detail = os.str();
        throw SimFailureError(std::move(failure));
      }
    }
  }

  const double lookahead = plan_lookahead();
  // The shard count fixes the simulation's structure — and, through the
  // determinism contract, its results. OS workers are only the
  // execution resource, so they are capped at the hardware's
  // concurrency: oversubscribing a smaller machine buys nothing but
  // scheduler churn at every epoch barrier. With a single worker the
  // epoch loop runs the shard windows inline on the calling thread —
  // the engine's whole advantage at scale (per-shard heaps, per-shard
  // working-set slices) is independent of which thread executes them.
  const std::size_t workers = std::min(
      static_cast<std::size_t>(shard_count),
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  std::uint64_t epochs = 0;
  std::uint64_t empty_epochs = 0;
  std::uint64_t cross_messages = 0;
  double barrier_wait_seconds = 0.0;
  std::size_t total_fired = 0;
  std::size_t release_frontier = 0;
  bool budget_exhausted = false;
  std::vector<Shard::OutboundMessage> inbound;
  std::vector<Shard::CollectiveEntry> entries;

  while (!budget_exhausted) {
    // Cancellation checkpoint once per epoch: the coordinator is the
    // only thread between barriers, so throwing here unwinds cleanly
    // with no worker in flight.
    check_cancellation();
    double window_start = std::numeric_limits<double>::infinity();
    for (const Shard& shard : shards) {
      window_start = std::min(window_start, shard.queue.next_time());
    }
    if (!std::isfinite(window_start)) break;  // every queue drained
    const bool degenerate = lookahead <= 0.0;
    const double horizon = degenerate ? window_start : window_start + lookahead;
    const std::size_t budget_left =
        config_.max_events > total_fired ? config_.max_events - total_fired : 0;
    ++epochs;

    const auto run_shard_window = [&](std::size_t i) {
      Shard& shard = shards[i];
      const util::Stopwatch shard_watch;
      shard.fired =
          shard.queue
              .run_window(horizon, degenerate, budget_left,
                          [this, &shard, &result](const SimEvent& event) {
                            dispatch(shard, event, result);
                          })
              .fired;
      shard.busy_seconds = shard_watch.seconds();
    };
    if (pool) {
      const util::Stopwatch epoch_watch;
      pool->parallel_for_chunked(
          shards.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) run_shard_window(i);
          });
      const double epoch_seconds = epoch_watch.seconds();
      for (const Shard& shard : shards) {
        barrier_wait_seconds +=
            std::max(0.0, epoch_seconds - shard.busy_seconds);
      }
    } else {
      // Single worker: no barrier exists, so no wait is recorded.
      for (std::size_t i = 0; i < shards.size(); ++i) run_shard_window(i);
    }
    for (const Shard& shard : shards) total_fired += shard.fired;

    // Fast path: an epoch that produced no cross-shard traffic and no
    // collective entries has nothing for the coordinator to do — skip
    // the gather/sort/inject machinery entirely. At 100k ranks most
    // epochs are pure intra-shard progress, so this keeps the barrier
    // cost proportional to actual coupling, not to the shard count's
    // bookkeeping.
    bool coupled = false;
    for (const Shard& shard : shards) {
      if (!shard.outbox.empty() || !shard.collective_entries.empty()) {
        coupled = true;
        break;
      }
    }
    if (!coupled) {
      ++empty_epochs;
      if (total_fired >= config_.max_events) {
        for (const Shard& shard : shards) {
          if (!shard.queue.empty()) budget_exhausted = true;
        }
      }
      continue;
    }

    // Barrier, phase 1: inject cross-shard payloads in the canonical
    // (arrival, sender, send-ordinal) total order. Every payload fires
    // at its true arrival time — conservatism guarantees the arrival is
    // at or past the horizon, hence past anything the destination shard
    // fired this epoch — so per-shard event order, and with it the
    // shard-local NIC adapter state, replays the serial oracle's.
    inbound.clear();
    for (Shard& shard : shards) {
      inbound.insert(inbound.end(), shard.outbox.begin(), shard.outbox.end());
      shard.outbox.clear();
    }
    std::sort(inbound.begin(), inbound.end(),
              [](const Shard::OutboundMessage& a,
                 const Shard::OutboundMessage& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.from != b.from) return a.from < b.from;
                return a.seq < b.seq;
              });
    cross_messages += inbound.size();
    for (const Shard::OutboundMessage& message : inbound) {
      Shard& dest = shards[static_cast<std::size_t>(
          shard_of[static_cast<std::size_t>(message.to)])];
      dest.queue.schedule(message.arrival,
                          SimEvent::arrival(message.to, message.from,
                                            message.tag, message.arrival));
    }

    // Barrier, phase 2: merge collective entries in canonical
    // (index, rank) order, then release completed collectives. Ranks
    // release in index order because no rank can enter collective k+1
    // before k released it.
    entries.clear();
    for (Shard& shard : shards) {
      entries.insert(entries.end(), shard.collective_entries.begin(),
                     shard.collective_entries.end());
      shard.collective_entries.clear();
    }
    std::sort(entries.begin(), entries.end(),
              [](const Shard::CollectiveEntry& a,
                 const Shard::CollectiveEntry& b) {
                if (a.index != b.index) return a.index < b.index;
                return a.rank < b.rank;
              });
    for (const Shard::CollectiveEntry& entry : entries) {
      if (entry.index >= collective_states_.size()) {
        collective_states_.resize(entry.index + 1);
      }
      CollectiveState& coll = collective_states_[entry.index];
      if (coll.entered == 0) {
        coll.kind = entry.kind;
        coll.bytes = entry.bytes;
      } else {
        check(coll.kind == entry.kind && coll.bytes == entry.bytes,
              "mismatched collective sequence across ranks");
      }
      ++coll.entered;
      coll.max_entry = std::max(coll.max_entry, entry.entered_at);
    }
    while (release_frontier < collective_states_.size() &&
           collective_states_[release_frontier].entered >= n) {
      const CollectiveState& coll = collective_states_[release_frontier];
      ++release_frontier;
      double cost = 0.0;
      switch (coll.kind) {
        case OpKind::kAllreduce:
          cost = collectives_.fan_in_fan_out(n, coll.bytes);
          ++result.traffic.allreduces;
          break;
        case OpKind::kBroadcast:
          cost = collectives_.fan_out(n, coll.bytes);
          ++result.traffic.broadcasts;
          break;
        case OpKind::kGather:
          cost = collectives_.fan_in(n, coll.bytes);
          ++result.traffic.gathers;
          break;
        default:
          require_internal(false, "non-collective op in collective state");
      }
      const double completion = coll.max_entry + cost;
      for (RankId r = 0; r < n; ++r) {
        RankState& state = states_[static_cast<std::size_t>(r)];
        RankTimeBreakdown& breakdown =
            result.breakdown[static_cast<std::size_t>(r)];
        // Same split as the oracle's release event: skew wait until the
        // last entry, plus the tree cost every rank pays.
        breakdown.collective_wait += completion - cost - state.clock;
        breakdown.collective_cost += cost;
        state.clock = std::max(state.clock, completion);
        Shard& dest = shards[static_cast<std::size_t>(
            shard_of[static_cast<std::size_t>(r)])];
        // The completion can precede the destination queue's clock when
        // that shard ran ahead inside the epoch window; the step must
        // still fire at the true completion time so the released rank's
        // subsequent sends interleave with its shard's other events —
        // and touch its node's NIC state — in oracle order.
        dest.queue.inject(completion, SimEvent::step(r));
      }
    }

    // The event budget is enforced at barriers, so a tripped run can
    // overshoot SimConfig::max_events by at most one epoch per shard.
    if (total_fired >= config_.max_events) {
      for (const Shard& shard : shards) {
        if (!shard.queue.empty()) budget_exhausted = true;
      }
    }
  }

  if (obs::enabled()) {
    obs::Registry& registry = obs::global_registry();
    static obs::Counter& runs = registry.counter("sim.parallel.runs");
    static obs::Counter& epoch_count = registry.counter("sim.parallel.epochs");
    static obs::Counter& crossings =
        registry.counter("sim.parallel.cross_shard_messages");
    static obs::Gauge& shard_gauge = registry.gauge("sim.parallel.shards");
    static obs::Gauge& barrier_wait =
        registry.gauge("sim.parallel.barrier_wait_s");
    static obs::Counter& empty_epoch_count =
        registry.counter("sim.parallel.empty_epochs");
    static obs::Counter& nic_conflict_count =
        registry.counter("sim.parallel.nic_shard_conflicts");
    runs.add(1);
    epoch_count.add(static_cast<std::int64_t>(epochs));
    crossings.add(static_cast<std::int64_t>(cross_messages));
    shard_gauge.set(static_cast<double>(shard_count));
    barrier_wait.set(barrier_wait_seconds);
    empty_epoch_count.add(static_cast<std::int64_t>(empty_epochs));
    std::int64_t nic_conflicts = 0;
    for (const Shard& shard : shards) nic_conflicts += shard.nic_conflicts;
    nic_conflict_count.add(nic_conflicts);
  }
  finalize_run(result, shards, budget_exhausted, total_fired);
  return result;
}

}  // namespace krak::sim
