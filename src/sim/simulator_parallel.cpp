#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace krak::sim {

using util::check;
using util::require_internal;

namespace {

/// The canonical cross-shard delivery order: (arrival, sender,
/// send-ordinal). Workers sort their per-destination runs by it and the
/// barrier's k-way merge picks heads by it, so each destination queue
/// sees exactly the order a global sort used to produce. A template
/// because the message type is private to Simulator.
template <typename Message>
[[nodiscard]] bool canonical_before(const Message& a, const Message& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.from != b.from) return a.from < b.from;
  return a.seq < b.seq;
}

}  // namespace

double Simulator::plan_lookahead() const {
  if (config_.lookahead >= 0.0) return config_.lookahead;
  if (hierarchy_ != nullptr) {
    // Shards align to node boundaries (plan_shards), so every
    // cross-shard payload pays at least the inter-node minimum.
    return hierarchy_->inter_node().min_message_time();
  }
  // Opaque pair callables admit no bound; fall back to the degenerate
  // one-timestamp-per-epoch (null-message-style) progression.
  if (pair_message_time_) return 0.0;
  return network_.min_message_time();
}

/// Conservative parallel engine: ranks shard into contiguous blocks,
/// each with its own event queue, stepped in bounded time windows
/// (epochs). The window's horizon is the global minimum next-event time
/// plus the lookahead — the least time any cross-shard payload spends on
/// the wire — so every shard can safely fire everything below it without
/// hearing from its peers; with a degenerate lookahead each epoch fires
/// exactly the minimum timestamp (null-message-style progression).
///
/// The barrier itself is sharded so coordinator work scales with shard
/// coupling, not with rank count (docs/PERFORMANCE.md, "The epoch
/// coordinator"): workers sort their per-destination outbound runs and
/// fold collective entries inside the window phase; the coordinator's
/// serial section only reduces O(shards) scalars and walks the
/// collective release frontier; then every destination shard in
/// parallel k-way-merges its inbound runs in canonical (arrival,
/// sender, send-ordinal) order and applies the decided releases to its
/// own ranks. Canonical order only matters per destination queue, which
/// is what makes the per-destination merges independent — and every
/// simulated outcome bit-identical to the serial oracle regardless of
/// the thread count (docs/PERFORMANCE.md, "Parallel simulation").
/// Every event fires at its true simulated time, so each shard replays
/// the oracle's event order over its own ranks — which is what lets
/// per-node order-sensitive state (the shared-NIC adapter availability)
/// live unsynchronized inside the shard that owns the node.
// krak: hot
SimResult Simulator::run_parallel(std::int32_t shard_count) {
  const std::int32_t n = ranks();
  require_internal(shard_count > 1 && shard_count <= n,
                   "parallel run needs 2..ranks shards");
  SimResult result;
  begin_run(result);

  // Contiguous block sharding over node-aligned units (shard_unit):
  // the first (units % shards) shards take one extra unit.
  const std::int32_t unit = shard_unit();
  const std::int32_t units = (n + unit - 1) / unit;
  std::vector<Shard> shards(static_cast<std::size_t>(shard_count));
  std::vector<std::int32_t> shard_of(static_cast<std::size_t>(n), 0);
  std::int32_t next_unit = 0;
  for (std::int32_t s = 0; s < shard_count; ++s) {
    Shard& shard = shards[static_cast<std::size_t>(s)];
    shard.id = s;
    shard.parallel = true;
    shard.shard_of = shard_of.data();
    shard.begin = std::min(n, next_unit * unit);
    next_unit += units / shard_count + (s < units % shard_count ? 1 : 0);
    shard.end = std::min(n, next_unit * unit);
    shard.queue.reserve(
        static_cast<std::size_t>(shard.end - shard.begin) * 2 + 64);
    // Pooled across every epoch of the run: clear() keeps capacity, so
    // steady-state barriers allocate nothing.
    shard.outboxes.resize(static_cast<std::size_t>(shard_count));
    shard.collective_entries.reserve(
        static_cast<std::size_t>(shard.end - shard.begin));
    for (RankId r = shard.begin; r < shard.end; ++r) {
      shard_of[static_cast<std::size_t>(r)] = s;
      shard.queue.schedule(0.0, SimEvent::step(r));
    }
    // Published scalars the coordinator reduces instead of re-scanning
    // queues (fused epoch scan); refreshed at every window end and by
    // the barrier's apply phase.
    shard.next_time = shard.queue.next_time();
  }
  require_internal(next_unit == units && shards.back().end == n,
                   "shard layout must cover every rank");
  if (nic_.enabled) {
    // Defensive: shard_unit makes every boundary a NIC-node multiple,
    // so this cannot fire through the public API. Should the layout
    // logic ever diverge, refuse to race adapter state — a structured
    // abort, never a wrong answer.
    for (const Shard& shard : shards) {
      if (shard.begin % nic_.pes_per_node != 0) {
        SimFailure failure;
        failure.kind = SimFailure::Kind::kShardMisalignment;
        std::ostringstream os;
        os << "(shard " << shard.id << " begins at rank " << shard.begin
           << ", NIC node size " << nic_.pes_per_node << ")";
        failure.detail = os.str();
        throw SimFailureError(std::move(failure));
      }
    }
  }

  const double lookahead = plan_lookahead();
  // The shard count fixes the simulation's structure — and, through the
  // determinism contract, its results. OS workers are only the
  // execution resource, so they are capped at the hardware's
  // concurrency: oversubscribing a smaller machine buys nothing but
  // scheduler churn at every epoch barrier. With a single worker the
  // epoch loop runs the shard windows inline on the calling thread —
  // the engine's whole advantage at scale (per-shard heaps, per-shard
  // working-set slices) is independent of which thread executes them.
  const std::size_t workers = std::min(
      static_cast<std::size_t>(shard_count),
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  std::uint64_t epochs = 0;
  std::uint64_t empty_epochs = 0;
  std::uint64_t cross_messages = 0;
  double barrier_wait_seconds = 0.0;
  // The Amdahl numerator: wall seconds of the sections only the
  // coordinator thread executes (exported as sim.parallel.coordinator_s
  // and BENCH's coordinator_serial_fraction).
  double coordinator_seconds = 0.0;
  std::size_t total_fired = 0;
  bool budget_exhausted = false;
  /// One completed collective awaiting application, in release order.
  struct PendingRelease {
    double completion = 0.0;
    double cost = 0.0;
  };
  std::vector<PendingRelease> releases;

  // The event budget is enforced at barriers, so a tripped run can
  // overshoot SimConfig::max_events by at most one epoch per shard —
  // this helper is the single place that overshoot contract lives.
  // A finite published next_time means the shard still holds events.
  const auto enforce_event_budget = [&] {
    if (total_fired < config_.max_events) return;
    for (const Shard& shard : shards) {
      if (std::isfinite(shard.next_time)) budget_exhausted = true;
    }
  };

  const auto run_shard_window = [&](std::size_t i, double horizon,
                                    bool degenerate,
                                    std::size_t budget_left) {
    Shard& shard = shards[i];
    const util::Stopwatch shard_watch;
    shard.outbound_count = 0;
    shard.fired =
        shard.queue
            .run_window(horizon, degenerate, budget_left,
                        [this, &shard, &result](const SimEvent& event) {
                          dispatch(shard, event, result);
                        })
            .fired;
    // Barrier prep belongs to the worker phase, not the coordinator:
    // sort this shard's outbound runs into canonical order and fold its
    // collective entries into order-independent per-index aggregates,
    // then publish the scalars the coordinator reduces.
    const util::Stopwatch sort_watch;
    for (std::vector<Shard::OutboundMessage>& run : shard.outboxes) {
      if (run.size() > 1) {
        std::sort(run.begin(), run.end(),
                  [](const Shard::OutboundMessage& a,
                     const Shard::OutboundMessage& b) {
                    return canonical_before(a, b);
                  });
      }
    }
    if (!shard.collective_entries.empty()) {
      std::sort(shard.collective_entries.begin(),
                shard.collective_entries.end(),
                [](const Shard::CollectiveEntry& a,
                   const Shard::CollectiveEntry& b) {
                  if (a.index != b.index) return a.index < b.index;
                  return a.rank < b.rank;
                });
      for (const Shard::CollectiveEntry& entry : shard.collective_entries) {
        if (shard.collective_aggregates.empty() ||
            shard.collective_aggregates.back().index != entry.index) {
          shard.collective_aggregates.push_back(
              {entry.index, 0, 0.0, entry.kind, entry.bytes});
        }
        Shard::CollectiveAggregate& agg = shard.collective_aggregates.back();
        check(agg.kind == entry.kind && agg.bytes == entry.bytes,
              "mismatched collective sequence across ranks");
        ++agg.entered;
        agg.max_entry = std::max(agg.max_entry, entry.entered_at);
      }
      shard.collective_entries.clear();
    }
    shard.coupled =
        shard.outbound_count > 0 || !shard.collective_aggregates.empty();
    shard.next_time = shard.queue.next_time();
    shard.sort_seconds += sort_watch.seconds();
    shard.busy_seconds = shard_watch.seconds();
  };

  // Barrier apply phase, one task per destination shard: k-way-merge
  // the inbound runs every source sorted during the window, then apply
  // the coordinator's release decisions to this shard's own ranks. Both
  // touch only this shard's queue and rank slice (sources' buckets for
  // this destination have exactly one consumer — this task), so every
  // destination proceeds concurrently. Per queue the injection order is
  // exactly the serial coordinator's — canonical messages first, then
  // release steps in (release, rank) order — so event sequence numbers,
  // and with them every tie-break, replay the oracle's.
  const auto apply_barrier = [&](std::size_t d) {
    Shard& dest = shards[d];
    const util::Stopwatch apply_watch;
    dest.merge_runs.clear();
    for (Shard& source : shards) {
      const std::vector<Shard::OutboundMessage>& run =
          source.outboxes[d];
      if (!run.empty()) {
        dest.merge_runs.emplace_back(run.data(), run.data() + run.size());
      }
    }
    std::size_t injected = 0;
    while (!dest.merge_runs.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < dest.merge_runs.size(); ++i) {
        if (canonical_before(*dest.merge_runs[i].first,
                             *dest.merge_runs[best].first)) {
          best = i;
        }
      }
      // Every payload fires at its true arrival time — conservatism
      // guarantees the arrival is at or past the horizon, hence past
      // anything this shard fired during the window — so per-shard
      // event order, and with it the shard-local NIC adapter state,
      // replays the serial oracle's.
      const Shard::OutboundMessage& message = *dest.merge_runs[best].first;
      dest.queue.schedule(message.arrival,
                          SimEvent::arrival(message.to, message.from,
                                            message.tag, message.arrival));
      ++injected;
      if (++dest.merge_runs[best].first == dest.merge_runs[best].second) {
        dest.merge_runs.erase(dest.merge_runs.begin() +
                              static_cast<std::ptrdiff_t>(best));
      }
    }
    for (Shard& source : shards) source.outboxes[d].clear();
    dest.injected = injected;
    for (const PendingRelease& release : releases) {
      for (RankId r = dest.begin; r < dest.end; ++r) {
        RankState& state = states_[static_cast<std::size_t>(r)];
        RankTimeBreakdown& breakdown =
            result.breakdown[static_cast<std::size_t>(r)];
        // Same split as the oracle's release event: skew wait until the
        // last entry, plus the tree cost every rank pays.
        breakdown.collective_wait +=
            release.completion - release.cost - state.clock;
        breakdown.collective_cost += release.cost;
        state.clock = std::max(state.clock, release.completion);
        // The completion can precede this queue's clock when the shard
        // ran ahead inside the epoch window; the step must still fire
        // at the true completion time so the released rank's subsequent
        // sends interleave with its shard's other events — and touch
        // its node's NIC state — in oracle order.
        dest.queue.inject(release.completion, SimEvent::step(r));
      }
    }
    dest.next_time = dest.queue.next_time();
    dest.inject_seconds += apply_watch.seconds();
  };

  while (!budget_exhausted) {
    // Cancellation checkpoint once per epoch: the coordinator is the
    // only thread between barriers, so throwing here unwinds cleanly
    // with no worker in flight.
    check_cancellation();
    const util::Stopwatch scan_watch;
    double window_start = std::numeric_limits<double>::infinity();
    for (const Shard& shard : shards) {
      window_start = std::min(window_start, shard.next_time);
    }
    coordinator_seconds += scan_watch.seconds();
    if (!std::isfinite(window_start)) break;  // every queue drained
    const bool degenerate = lookahead <= 0.0;
    const double horizon = degenerate ? window_start : window_start + lookahead;
    const std::size_t budget_left =
        config_.max_events > total_fired ? config_.max_events - total_fired : 0;
    ++epochs;

    if (pool) {
      const util::Stopwatch epoch_watch;
      pool->parallel_for_chunked(
          shards.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              run_shard_window(i, horizon, degenerate, budget_left);
            }
          });
      const double epoch_seconds = epoch_watch.seconds();
      for (const Shard& shard : shards) {
        barrier_wait_seconds +=
            std::max(0.0, epoch_seconds - shard.busy_seconds);
      }
    } else {
      // Single worker: no barrier exists, so no wait is recorded.
      for (std::size_t i = 0; i < shards.size(); ++i) {
        run_shard_window(i, horizon, degenerate, budget_left);
      }
    }

    // Coordinator serial section: O(shards) scalar reductions plus the
    // collective release decision — nothing here scales with the rank
    // count or the message volume (those moved into the worker and
    // apply phases).
    const util::Stopwatch decide_watch;
    bool coupled = false;
    for (const Shard& shard : shards) {
      total_fired += shard.fired;
      coupled |= shard.coupled;
    }
    // Fast path: an epoch that produced no cross-shard traffic and no
    // collective entries has nothing for the barrier to do. At 100k
    // ranks most epochs are pure intra-shard progress, so this keeps
    // the barrier cost proportional to actual coupling.
    if (!coupled) {
      ++empty_epochs;
      enforce_event_budget();
      coordinator_seconds += decide_watch.seconds();
      continue;
    }

    // Merge the per-shard collective aggregates (order-independent:
    // integer entry counts and a max over entry times) and walk the
    // release frontier. Ranks release in index order because no rank
    // can enter collective k+1 before k released it — which also means
    // every live entry targets the frontier index, so the released
    // prefix is reclaimed immediately and collective_states_ stays O(1)
    // however many collectives a replay executes.
    releases.clear();
    for (Shard& shard : shards) {
      for (const Shard::CollectiveAggregate& agg :
           shard.collective_aggregates) {
        require_internal(agg.index >= collective_base_,
                         "rank entered an already-released collective");
        const std::size_t rel = agg.index - collective_base_;
        if (rel >= collective_states_.size()) {
          collective_states_.resize(rel + 1);
        }
        CollectiveState& coll = collective_states_[rel];
        if (coll.entered == 0) {
          coll.kind = agg.kind;
          coll.bytes = agg.bytes;
        } else {
          check(coll.kind == agg.kind && coll.bytes == agg.bytes,
                "mismatched collective sequence across ranks");
        }
        coll.entered += agg.entered;
        coll.max_entry = std::max(coll.max_entry, agg.max_entry);
      }
      shard.collective_aggregates.clear();
    }
    collective_high_water_ =
        std::max(collective_high_water_, collective_states_.size());
    while (!collective_states_.empty() &&
           collective_states_.front().entered >= n) {
      const CollectiveState coll = collective_states_.front();
      collective_states_.erase(collective_states_.begin());
      ++collective_base_;
      double cost = 0.0;
      switch (coll.kind) {
        case OpKind::kAllreduce:
          cost = collectives_.fan_in_fan_out(n, coll.bytes);
          ++result.traffic.allreduces;
          break;
        case OpKind::kBroadcast:
          cost = collectives_.fan_out(n, coll.bytes);
          ++result.traffic.broadcasts;
          break;
        case OpKind::kGather:
          cost = collectives_.fan_in(n, coll.bytes);
          ++result.traffic.gathers;
          break;
        default:
          require_internal(false, "non-collective op in collective state");
      }
      releases.push_back({coll.max_entry + cost, cost});
    }
    coordinator_seconds += decide_watch.seconds();

    // Apply phase: every destination shard merges its inbound runs and
    // applies the decided releases to its own ranks, concurrently.
    if (pool) {
      pool->parallel_for_chunked(
          shards.size(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t d = begin; d < end; ++d) apply_barrier(d);
          });
    } else {
      for (std::size_t d = 0; d < shards.size(); ++d) apply_barrier(d);
    }

    const util::Stopwatch post_watch;
    for (const Shard& shard : shards) cross_messages += shard.injected;
    enforce_event_budget();
    coordinator_seconds += post_watch.seconds();
  }

  double sort_seconds = 0.0;
  double inject_seconds = 0.0;
  for (const Shard& shard : shards) {
    sort_seconds += shard.sort_seconds;
    inject_seconds += shard.inject_seconds;
  }
  result.coordinator_seconds = coordinator_seconds;
  result.sort_seconds = sort_seconds;
  result.inject_seconds = inject_seconds;

  if (obs::enabled()) {
    obs::Registry& registry = obs::global_registry();
    static obs::Counter& runs = registry.counter("sim.parallel.runs");
    static obs::Counter& epoch_count = registry.counter("sim.parallel.epochs");
    static obs::Counter& crossings =
        registry.counter("sim.parallel.cross_shard_messages");
    static obs::Gauge& shard_gauge = registry.gauge("sim.parallel.shards");
    static obs::Gauge& barrier_wait =
        registry.gauge("sim.parallel.barrier_wait_s");
    static obs::Counter& empty_epoch_count =
        registry.counter("sim.parallel.empty_epochs");
    static obs::Counter& nic_conflict_count =
        registry.counter("sim.parallel.nic_shard_conflicts");
    static obs::Gauge& coordinator_gauge =
        registry.gauge("sim.parallel.coordinator_s");
    static obs::Gauge& sort_gauge = registry.gauge("sim.parallel.sort_s");
    static obs::Gauge& inject_gauge = registry.gauge("sim.parallel.inject_s");
    runs.add(1);
    epoch_count.add(static_cast<std::int64_t>(epochs));
    crossings.add(static_cast<std::int64_t>(cross_messages));
    shard_gauge.set(static_cast<double>(shard_count));
    barrier_wait.set(barrier_wait_seconds);
    empty_epoch_count.add(static_cast<std::int64_t>(empty_epochs));
    std::int64_t nic_conflicts = 0;
    for (const Shard& shard : shards) nic_conflicts += shard.nic_conflicts;
    nic_conflict_count.add(nic_conflicts);
    coordinator_gauge.set(coordinator_seconds);
    sort_gauge.set(sort_seconds);
    inject_gauge.set(inject_seconds);
  }
  finalize_run(result, shards, budget_exhausted, total_fired);
  return result;
}

}  // namespace krak::sim
