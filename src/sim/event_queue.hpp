#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace krak::sim {

/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotone
/// sequence number breaks ties), which keeps simulations deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `time` (seconds); `time` must
  /// not precede the current time.
  void schedule(double time, Action action);

  /// Current simulation time: the timestamp of the most recently fired
  /// event (0 before any event fires).
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// High-water mark of pending events since construction — a proxy for
  /// how much simulated concurrency was in flight (exported to the
  /// observability layer as `sim.max_queue_depth`).
  [[nodiscard]] std::size_t max_size() const { return max_size_; }

  /// Fire events in time order until none remain. Returns the number of
  /// events processed. Throws InternalError if the event count exceeds
  /// `max_events` (runaway-simulation guard).
  std::size_t run(std::size_t max_events = 1'000'000'000);

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace krak::sim
