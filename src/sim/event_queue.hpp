#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace krak::sim {

/// What a scheduled simulator event does when it fires. Events carry
/// indices into per-rank state instead of captured lambdas, so
/// scheduling one writes a small POD into the queue's slab — no heap
/// allocation, no type erasure, no virtual dispatch (docs/PERFORMANCE.md).
enum class EventKind : std::uint8_t {
  /// Resume executing ops of `rank` (initial kick-off and generic wake).
  kStepRank,
  /// A point-to-point payload from `peer` with `tag` arrives at `rank`
  /// at the event's timestamp.
  kMessageArrival,
  /// A collective completes: release `rank` at the event's timestamp;
  /// `value` is the tree cost every rank pays.
  kCollectiveRelease,
};

/// One tagged simulator event (the payload of a queue entry). 24 bytes;
/// the meaning of each field depends on `kind` (see EventKind).
struct SimEvent {
  EventKind kind = EventKind::kStepRank;
  std::int32_t rank = -1;  ///< target rank
  std::int32_t peer = -1;  ///< sending rank (kMessageArrival)
  std::int32_t tag = 0;    ///< message tag (kMessageArrival)
  /// kCollectiveRelease: the tree cost every rank pays.
  /// kMessageArrival: the payload's true arrival timestamp, always
  /// equal to the event's fire time (the receiving rank's timing math
  /// uses this value, keeping it independent of queue mechanics).
  double value = 0.0;

  [[nodiscard]] static SimEvent step(std::int32_t rank) {
    SimEvent event;
    event.kind = EventKind::kStepRank;
    event.rank = rank;
    return event;
  }
  [[nodiscard]] static SimEvent arrival(std::int32_t rank, std::int32_t peer,
                                        std::int32_t tag,
                                        double arrival_time) {
    SimEvent event;
    event.kind = EventKind::kMessageArrival;
    event.rank = rank;
    event.peer = peer;
    event.tag = tag;
    event.value = arrival_time;
    return event;
  }
  [[nodiscard]] static SimEvent release(std::int32_t rank, double cost) {
    SimEvent event;
    event.kind = EventKind::kCollectiveRelease;
    event.rank = rank;
    event.value = cost;
    return event;
  }
};

/// Outcome of one EventQueue::run drain.
struct EventRunStats {
  /// Events fired before the queue emptied or the budget tripped.
  std::size_t fired = 0;
  /// True when `max_events` fired with events still pending (runaway
  /// guard). The caller decides whether that is a throw or a structured
  /// failure; the queue itself never throws on the budget.
  bool budget_exhausted = false;
};

/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal timestamps fire in insertion order (a monotone
/// sequence number breaks ties), which keeps simulations deterministic:
/// the (time, seq) comparator is a strict total order, so the pop
/// sequence is independent of the heap's internal layout. Entries are
/// 32-byte PODs in a single contiguous slab (a 4-ary implicit heap over
/// a reserved vector — half the sift depth of a binary heap, and a
/// node's children share cache lines): scheduling is a bounds check plus
/// a sift-up, and the slab's capacity is reused across the whole run.
/// The number of events scheduled without growing the slab is exported
/// to the observability layer as `sim.events.pooled`.
class EventQueue {
 public:
  /// Pre-size the slab so a run of `expected_events` pending events
  /// never reallocates.
  void reserve(std::size_t expected_events) { heap_.reserve(expected_events); }

  /// Schedule `event` at absolute time `time` (seconds); `time` must
  /// not precede the current time.
  void schedule(double time, SimEvent event);

  /// Schedule `event` at absolute time `time` even when `time` precedes
  /// the current time. Reserved for the parallel engine's epoch
  /// coordinator: a collective completing near the window's start must
  /// release ranks in shards whose queues already fired events later in
  /// the window, so the release step legitimately lands below now().
  /// Popping such an entry regresses now() to its time; from there the
  /// heap keeps firing in nondecreasing time order, so every event
  /// scheduled by subsequent handlers still satisfies schedule()'s
  /// monotonicity contract.
  void inject(double time, SimEvent event);

  /// Current simulation time: the timestamp of the most recently fired
  /// event (0 before any event fires).
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; +infinity when empty.
  /// The parallel engine's epoch coordinator uses this to pick the next
  /// global time window without popping anything.
  [[nodiscard]] double next_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().time;
  }

  /// High-water mark of pending events since construction — a proxy for
  /// how much simulated concurrency was in flight (exported to the
  /// observability layer as `sim.max_queue_depth`).
  [[nodiscard]] std::size_t max_size() const { return max_size_; }

  /// Events scheduled into already-allocated slab capacity (all but the
  /// ones that forced the slab to grow).
  [[nodiscard]] std::uint64_t pooled_events() const { return pooled_; }

  /// Fire events in time order until none remain or `max_events` have
  /// fired, dispatching each to `handler(const SimEvent&)`. The handler
  /// may schedule more events. Never throws on the budget: when it is
  /// exhausted the remaining events stay queued and the stats say so.
  template <typename Handler>
  EventRunStats run(Handler&& handler,
                    std::size_t max_events = kDefaultMaxEvents) {
    EventRunStats stats;
    while (!heap_.empty()) {
      if (stats.fired >= max_events) {
        stats.budget_exhausted = true;
        break;
      }
      const Entry top = pop_min();
      now_ = top.time;
      handler(top.to_event());
      ++stats.fired;
    }
    return stats;
  }

  /// Fire events whose timestamp is strictly below `limit` (at or below
  /// when `inclusive`), in time order, stopping early once `max_events`
  /// have fired. Events at or past the horizon stay queued — this is the
  /// conservative-parallel epoch primitive: a shard may safely execute
  /// everything below the global lookahead horizon because no other
  /// shard can inject an event earlier than it.
  template <typename Handler>
  EventRunStats run_window(double limit, bool inclusive,
                           std::size_t max_events, Handler&& handler) {
    EventRunStats stats;
    while (!heap_.empty()) {
      const double time = heap_.front().time;
      if (inclusive ? time > limit : time >= limit) break;
      if (stats.fired >= max_events) {
        stats.budget_exhausted = true;
        break;
      }
      const Entry top = pop_min();
      now_ = top.time;
      handler(top.to_event());
      ++stats.fired;
    }
    return stats;
  }

  /// Default runaway guard of Simulator runs (SimConfig::max_events).
  static constexpr std::size_t kDefaultMaxEvents = 1'000'000'000;

 private:
  /// Children per heap node (a node's children are contiguous).
  static constexpr std::size_t kArity = 4;

  /// 32-byte flattened (time, seq, event) record. The event kind rides
  /// in the sequence word's low 2 bits: the shift preserves insertion
  /// order exactly, so comparing `seq_kind` compares `seq` — and the
  /// slab stays a clean two entries per cache line, which matters when
  /// the 100k-rank replays push the heap past a million entries.
  struct Entry {
    double time;
    double value;
    std::uint32_t seq_kind;
    std::int32_t rank;
    std::int32_t peer;
    std::int32_t tag;

    /// Strict total order: earlier time first, insertion order on ties.
    [[nodiscard]] bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq_kind < other.seq_kind;
    }

    [[nodiscard]] SimEvent to_event() const {
      SimEvent event;
      event.kind = static_cast<EventKind>(seq_kind & 3u);
      event.rank = rank;
      event.peer = peer;
      event.tag = tag;
      event.value = value;
      return event;
    }
  };
  static_assert(sizeof(Entry) == 32, "heap entries must stay 32 bytes");

  Entry pop_min();
  void push_entry(double time, SimEvent event);

  std::vector<Entry> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t max_size_ = 0;
  std::uint64_t pooled_ = 0;
};

}  // namespace krak::sim
