#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace krak::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
}

FaultPlan make_full_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.slowdowns.push_back({2, 1.5});
  plan.noise.push_back({kAllRanks, 1e-3, 25e-6});
  OneOffDelay delay;
  delay.rank = 0;
  delay.phase = 4;
  delay.iteration = 1;
  delay.seconds = 2e-3;
  plan.delays.push_back(delay);
  MessageFaultModel messages;
  messages.rank = kAllRanks;
  messages.drop_probability = 0.05;
  messages.extra_delay_s = 1e-6;
  messages.retransmit_timeout_s = 2e-4;
  messages.max_retries = 5;
  plan.message_faults.push_back(messages);
  plan.degrades.push_back({3, 0.25});
  RankCrash crash;
  crash.rank = 1;
  crash.phase = 9;
  crash.iteration = 0;
  crash.restart_s = 0.05;
  crash.checkpoint_interval_s = 0.4;
  plan.crashes.push_back(crash);
  plan.max_sim_seconds = 10.0;
  return plan;
}

TEST(FaultPlan, RoundTripPreservesEveryDirective) {
  const FaultPlan original = make_full_plan();
  std::stringstream stream;
  write_fault_plan(stream, original);
  const FaultPlan parsed = parse_fault_plan(stream);

  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.size(), original.size());
  ASSERT_EQ(parsed.slowdowns.size(), 1u);
  EXPECT_EQ(parsed.slowdowns[0].rank, 2);
  EXPECT_DOUBLE_EQ(parsed.slowdowns[0].factor, 1.5);
  ASSERT_EQ(parsed.noise.size(), 1u);
  EXPECT_EQ(parsed.noise[0].rank, kAllRanks);
  EXPECT_DOUBLE_EQ(parsed.noise[0].period_s, 1e-3);
  EXPECT_DOUBLE_EQ(parsed.noise[0].duration_s, 25e-6);
  ASSERT_EQ(parsed.delays.size(), 1u);
  EXPECT_EQ(parsed.delays[0].rank, 0);
  EXPECT_EQ(parsed.delays[0].phase, 4);
  EXPECT_EQ(parsed.delays[0].iteration, 1);
  EXPECT_DOUBLE_EQ(parsed.delays[0].seconds, 2e-3);
  ASSERT_EQ(parsed.message_faults.size(), 1u);
  EXPECT_EQ(parsed.message_faults[0].rank, kAllRanks);
  EXPECT_DOUBLE_EQ(parsed.message_faults[0].drop_probability, 0.05);
  EXPECT_DOUBLE_EQ(parsed.message_faults[0].extra_delay_s, 1e-6);
  EXPECT_DOUBLE_EQ(parsed.message_faults[0].retransmit_timeout_s, 2e-4);
  EXPECT_EQ(parsed.message_faults[0].max_retries, 5);
  ASSERT_EQ(parsed.degrades.size(), 1u);
  EXPECT_EQ(parsed.degrades[0].rank, 3);
  EXPECT_DOUBLE_EQ(parsed.degrades[0].bandwidth_factor, 0.25);
  ASSERT_EQ(parsed.crashes.size(), 1u);
  EXPECT_EQ(parsed.crashes[0].rank, 1);
  EXPECT_EQ(parsed.crashes[0].phase, 9);
  EXPECT_EQ(parsed.crashes[0].iteration, 0);
  EXPECT_DOUBLE_EQ(parsed.crashes[0].restart_s, 0.05);
  EXPECT_DOUBLE_EQ(parsed.crashes[0].checkpoint_interval_s, 0.4);
  EXPECT_DOUBLE_EQ(parsed.max_sim_seconds, 10.0);
}

TEST(FaultPlan, MessageDefaultsApplyWhenKeysOmitted) {
  std::istringstream in(
      "krakfaults 1\n"
      "messages rank=* drop=0.1\n"
      "end\n");
  const FaultPlan plan = parse_fault_plan(in);
  ASSERT_EQ(plan.message_faults.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.message_faults[0].extra_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(plan.message_faults[0].retransmit_timeout_s, 1e-4);
  EXPECT_EQ(plan.message_faults[0].max_retries, 3);
}

TEST(FaultPlan, CommentsAndBlankLinesAreIgnored) {
  std::istringstream in(
      "krakfaults 1\n"
      "# a comment\n"
      "\n"
      "seed 9\n"
      "slowdown rank=0 factor=2\n"
      "end\n");
  const FaultPlan plan = parse_fault_plan(in);
  EXPECT_EQ(plan.seed, 9u);
  ASSERT_EQ(plan.slowdowns.size(), 1u);
}

void expect_malformed(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)parse_fault_plan(in);
    FAIL() << "expected KrakError for:\n" << text;
  } catch (const util::KrakError& error) {
    EXPECT_NE(std::string(error.what()).find("malformed fault spec"),
              std::string::npos)
        << error.what();
  }
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  expect_malformed("krakfaults 2\nend\n");  // unsupported version
  expect_malformed("krakfaults 1\nteleport rank=0\nend\n");  // unknown directive
  expect_malformed("krakfaults 1\nslowdown factor=1.5\nend\n");  // missing rank
  expect_malformed(
      "krakfaults 1\nslowdown rank=0 rank=1 factor=2\nend\n");  // duplicate key
  expect_malformed(
      "krakfaults 1\nslowdown rank=0 factor=2 color=red\nend\n");  // unknown key
  expect_malformed("krakfaults 1\nslowdown rank=0 factor=2\n");  // missing end
}

TEST(FaultPlan, LoadNamesMissingPathAndCause) {
  const std::string path = "/nonexistent/dir/plan.krakfaults";
  try {
    (void)load_fault_plan(path);
    FAIL() << "expected KrakError";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(FaultPlan, SaveAndLoadThroughDisk) {
  const std::string path = ::testing::TempDir() + "/roundtrip.krakfaults";
  const FaultPlan original = make_full_plan();
  save_fault_plan(path, original);
  const FaultPlan loaded = load_fault_plan(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.seed, original.seed);
}

TEST(DalyModel, OptimalIntervalMatchesFirstOrderFormula) {
  // sqrt(2 * C * M) with C = 5 s, M = 3600 s.
  EXPECT_NEAR(daly_optimal_interval(5.0, 3600.0), std::sqrt(36000.0), 1e-12);
}

TEST(DalyModel, RecoveryCostUsesHalfIntervalWhenCheckpointing) {
  EXPECT_DOUBLE_EQ(expected_recovery_cost(30.0, 200.0, 1800.0), 30.0 + 100.0);
}

TEST(DalyModel, RecoveryCostReplaysElapsedWithoutCheckpoints) {
  EXPECT_DOUBLE_EQ(expected_recovery_cost(30.0, 0.0, 1800.0), 30.0 + 1800.0);
}

}  // namespace
}  // namespace krak::fault
