#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace krak::fault {
namespace {

constexpr std::int32_t kPhases = 15;  // SimKrak's Table 1 phase count

TEST(InjectionEngine, RejectsOutOfRangePlanValues) {
  FaultPlan bad_factor;
  bad_factor.slowdowns.push_back({0, 0.5});  // factor must be >= 1
  EXPECT_THROW(InjectionEngine(bad_factor, 4, kPhases), util::KrakError);

  FaultPlan bad_rank;
  bad_rank.slowdowns.push_back({7, 2.0});  // only 4 ranks
  EXPECT_THROW(InjectionEngine(bad_rank, 4, kPhases), util::KrakError);

  FaultPlan bad_drop;
  MessageFaultModel model;
  model.drop_probability = 1.5;
  bad_drop.message_faults.push_back(model);
  EXPECT_THROW(InjectionEngine(bad_drop, 4, kPhases), util::KrakError);

  FaultPlan bad_bandwidth;
  bad_bandwidth.degrades.push_back({0, 2.0});  // must be in (0, 1]
  EXPECT_THROW(InjectionEngine(bad_bandwidth, 4, kPhases), util::KrakError);

  FaultPlan bad_phase;
  OneOffDelay delay;
  delay.rank = 0;
  delay.phase = kPhases + 1;
  bad_phase.delays.push_back(delay);
  EXPECT_THROW(InjectionEngine(bad_phase, 4, kPhases), util::KrakError);

  FaultPlan wildcard_crash;
  RankCrash crash;
  crash.rank = kAllRanks;  // crashes must name one rank
  wildcard_crash.crashes.push_back(crash);
  EXPECT_THROW(InjectionEngine(wildcard_crash, 4, kPhases), util::KrakError);
}

TEST(InjectionEngine, SlowdownScalesComputeExcess) {
  FaultPlan plan;
  plan.slowdowns.push_back({1, 1.5});
  InjectionEngine engine(plan, 2, kPhases);
  engine.on_run_start(2);
  // Slowed rank: 50% excess; healthy rank: none.
  EXPECT_DOUBLE_EQ(engine.compute_delay(1, 0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(engine.compute_delay(0, 0, 2.0), 0.0);
}

TEST(InjectionEngine, OneOffDelayFiresAtExactComputeIndex) {
  FaultPlan plan;
  OneOffDelay delay;
  delay.rank = 0;
  delay.phase = 3;
  delay.iteration = 1;
  delay.seconds = 0.25;
  plan.delays.push_back(delay);
  InjectionEngine engine(plan, 2, kPhases);
  engine.on_run_start(2);
  const std::int64_t target = 1 * kPhases + (3 - 1);
  EXPECT_DOUBLE_EQ(engine.compute_delay(0, target, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(engine.compute_delay(0, target - 1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(engine.compute_delay(0, target + 1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(engine.compute_delay(1, target, 1.0), 0.0);
}

TEST(InjectionEngine, NoiseBurstsCountPeriodCrossings) {
  FaultPlan plan;
  NoiseBurst burst;
  burst.rank = 0;
  burst.period_s = 1.0;
  burst.duration_s = 0.01;
  plan.noise.push_back(burst);
  InjectionEngine engine(plan, 1, kPhases);
  engine.on_run_start(1);
  // 10 seconds of compute cross 10 period boundaries regardless of the
  // seeded phase offset, so exactly 10 bursts fire.
  const double extra = engine.compute_delay(0, 0, 10.0);
  EXPECT_NEAR(extra, 10 * 0.01, 1e-12);
  // on_run_start rewinds the accumulator: the next run sees the same
  // injections, not a continuation.
  engine.on_run_start(1);
  EXPECT_DOUBLE_EQ(engine.compute_delay(0, 0, 10.0), extra);
}

TEST(InjectionEngine, RecoveryChargesDalyCost) {
  FaultPlan plan;
  RankCrash crash;
  crash.rank = 0;
  crash.phase = 1;
  crash.iteration = 0;
  crash.restart_s = 2.0;
  crash.checkpoint_interval_s = 4.0;
  plan.crashes.push_back(crash);
  InjectionEngine engine(plan, 2, kPhases);
  engine.on_run_start(2);
  // restart + interval/2, independent of the clock.
  EXPECT_DOUBLE_EQ(engine.recovery_delay(0, 0, 100.0), 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(engine.recovery_delay(0, 1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(engine.recovery_delay(1, 0, 100.0), 0.0);
}

TEST(InjectionEngine, RecoveryWithoutCheckpointsReplaysElapsed) {
  FaultPlan plan;
  RankCrash crash;
  crash.rank = 0;
  crash.restart_s = 1.0;
  crash.checkpoint_interval_s = 0.0;
  plan.crashes.push_back(crash);
  InjectionEngine engine(plan, 1, kPhases);
  engine.on_run_start(1);
  EXPECT_DOUBLE_EQ(engine.recovery_delay(0, 0, 7.5), 1.0 + 7.5);
}

TEST(InjectionEngine, MessageFateIsDeterministicInSeedAndOrdinal) {
  FaultPlan plan;
  plan.seed = 123;
  MessageFaultModel model;
  model.drop_probability = 0.5;
  model.retransmit_timeout_s = 1e-3;
  model.max_retries = 10;
  plan.message_faults.push_back(model);

  InjectionEngine a(plan, 4, kPhases);
  InjectionEngine b(plan, 4, kPhases);
  a.on_run_start(4);
  b.on_run_start(4);
  // Query b in reverse: fates are keyed by (seed, sender, ordinal), so
  // call order — i.e. event interleaving — must not matter.
  std::vector<sim::FaultInjector::MessageFate> forward;
  for (std::int64_t send = 0; send < 64; ++send) {
    forward.push_back(a.message_fate(1, 2, 1000.0, send));
  }
  for (std::int64_t send = 63; send >= 0; --send) {
    const auto fate = b.message_fate(1, 2, 1000.0, send);
    const auto& expected = forward[static_cast<std::size_t>(send)];
    EXPECT_DOUBLE_EQ(fate.extra_delay, expected.extra_delay);
    EXPECT_EQ(fate.retransmits, expected.retransmits);
    EXPECT_EQ(fate.lost, expected.lost);
  }
}

TEST(InjectionEngine, ExhaustedRetriesLoseTheMessage) {
  FaultPlan plan;
  MessageFaultModel model;
  model.drop_probability = 0.999999;  // effectively always dropped
  model.max_retries = 2;
  plan.message_faults.push_back(model);
  InjectionEngine engine(plan, 2, kPhases);
  engine.on_run_start(2);
  const auto fate = engine.message_fate(0, 1, 100.0, 0);
  EXPECT_TRUE(fate.lost);
  EXPECT_EQ(fate.retransmits, 2);
}

TEST(InjectionEngine, DegradeScalesWireTime) {
  FaultPlan plan;
  plan.degrades.push_back({0, 0.25});
  InjectionEngine engine(plan, 2, kPhases);
  engine.on_run_start(2);
  EXPECT_DOUBLE_EQ(engine.message_fate(0, 1, 100.0, 0).bandwidth_factor, 4.0);
  EXPECT_DOUBLE_EQ(engine.message_fate(1, 0, 100.0, 0).bandwidth_factor, 1.0);
}

TEST(InjectionEngine, WatchdogArmsStructuredFailures) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0});
  plan.max_sim_seconds = 12.5;
  const InjectionEngine engine(plan, 2, kPhases);
  const sim::WatchdogConfig watchdog = engine.watchdog();
  EXPECT_TRUE(watchdog.structured_failures);
  EXPECT_DOUBLE_EQ(watchdog.max_sim_seconds, 12.5);
}

TEST(InjectionEngine, RunStartRejectsMismatchedRankCount) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0});
  InjectionEngine engine(plan, 4, kPhases);
  EXPECT_THROW(engine.on_run_start(8), util::KrakError);
}

}  // namespace
}  // namespace krak::fault
