#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "network/msgmodel.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace krak::sim {
namespace {

/// 1 us latency, 1 ns/byte, zero host overheads: hand-checkable times.
Simulator make_simulator(std::int32_t ranks) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  return Simulator(ranks, network::make_hockney_model(1e-6, 1e9), config);
}

/// Scripted injector: a fixed delay on one compute op, a fixed recovery
/// cost on another, and an optional "lose every message" switch. Gives
/// the tests exact control without going through a FaultPlan.
class ScriptedInjector final : public FaultInjector {
 public:
  RankId delay_rank = -1;
  std::int64_t delay_index = 0;
  double delay_seconds = 0.0;
  RankId recovery_rank = -1;
  std::int64_t recovery_index = 0;
  double recovery_seconds = 0.0;
  bool lose_everything = false;

  void on_run_start(std::int32_t /*ranks*/) override {}
  double compute_delay(RankId rank, std::int64_t index,
                       double /*duration*/) override {
    return (rank == delay_rank && index == delay_index) ? delay_seconds : 0.0;
  }
  double recovery_delay(RankId rank, std::int64_t index,
                        double /*now*/) override {
    return (rank == recovery_rank && index == recovery_index)
               ? recovery_seconds
               : 0.0;
  }
  MessageFate message_fate(RankId /*from*/, RankId /*to*/, double /*bytes*/,
                           std::int64_t /*send_index*/) override {
    MessageFate fate;
    fate.lost = lose_everything;
    return fate;
  }
};

TEST(SimulatorFaults, InjectedDelayPreservesTimeIdentityExactly) {
  Simulator sim = make_simulator(2);
  ScriptedInjector injector;
  injector.delay_rank = 0;
  injector.delay_index = 0;
  injector.delay_seconds = 0.25;
  sim.set_fault_injector(&injector);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::compute(1.0), Op::allreduce(8.0)});
  const SimResult result = sim.run();

  ASSERT_FALSE(result.failed());
  EXPECT_DOUBLE_EQ(result.breakdown[0].fault_delay, 0.25);
  EXPECT_DOUBLE_EQ(result.breakdown[1].fault_delay, 0.0);
  // The delayed rank reaches the reduction 0.25 s late; the healthy rank
  // absorbs that as collective_wait (the delay propagated).
  EXPECT_DOUBLE_EQ(result.breakdown[1].collective_wait, 0.25);
  // finish = compute + p2p + collective + fault, bit-exact per rank.
  for (std::int32_t rank = 0; rank < 2; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    EXPECT_DOUBLE_EQ(result.breakdown[r].total_seconds(),
                     result.finish_times[r]);
  }
  EXPECT_EQ(result.faults.injections, 1);
  EXPECT_DOUBLE_EQ(result.faults.fault_delay_seconds, 0.25);
}

TEST(SimulatorFaults, RecoveryIsChargedSeparatelyFromDelay) {
  Simulator sim = make_simulator(1);
  ScriptedInjector injector;
  injector.recovery_rank = 0;
  injector.recovery_index = 1;
  injector.recovery_seconds = 3.0;
  sim.set_fault_injector(&injector);
  sim.set_schedule(0, {Op::compute(1.0), Op::compute(1.0)});
  const SimResult result = sim.run();

  EXPECT_DOUBLE_EQ(result.breakdown[0].recovery, 3.0);
  EXPECT_DOUBLE_EQ(result.breakdown[0].fault_delay, 0.0);
  EXPECT_DOUBLE_EQ(result.breakdown[0].fault_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(result.finish_times[0], 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(result.breakdown[0].total_seconds(),
                   result.finish_times[0]);
  EXPECT_DOUBLE_EQ(result.faults.recovery_seconds, 3.0);
}

TEST(SimulatorFaults, EmptyInjectorReproducesBaselineBitForBit) {
  const auto run_once = [](FaultInjector* injector) {
    Simulator sim = make_simulator(2);
    if (injector != nullptr) sim.set_fault_injector(injector);
    sim.set_schedule(0, {Op::compute(0.5), Op::isend(1, 4096.0, 3),
                         Op::allreduce(8.0)});
    sim.set_schedule(1, {Op::recv(0, 4096.0, 3), Op::allreduce(8.0)});
    return sim.run();
  };
  ScriptedInjector noop;  // all defaults: injects nothing
  const SimResult baseline = run_once(nullptr);
  const SimResult with_noop = run_once(&noop);
  EXPECT_EQ(baseline.makespan, with_noop.makespan);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(baseline.finish_times[r], with_noop.finish_times[r]);
    EXPECT_EQ(baseline.breakdown[r].total_seconds(),
              with_noop.breakdown[r].total_seconds());
  }
}

TEST(SimulatorFaults, WatchdogNamesTheBlockedOpOnDeadlock) {
  Simulator sim = make_simulator(2);
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  sim.set_watchdog(watchdog);
  sim.set_schedule(0, {Op::compute(1.0)});
  sim.set_schedule(1, {Op::compute(0.5), Op::recv(0, 64.0, 9)});
  const SimResult result = sim.run();

  ASSERT_TRUE(result.failed());
  ASSERT_EQ(result.failures.size(), 1u);
  const SimFailure& failure = result.failures[0];
  EXPECT_EQ(failure.kind, SimFailure::Kind::kDeadlock);
  EXPECT_EQ(failure.rank, 1);
  ASSERT_TRUE(failure.has_op);
  EXPECT_EQ(failure.op, OpKind::kRecv);
  EXPECT_EQ(failure.peer, 0);
  EXPECT_EQ(failure.tag, 9);
  EXPECT_EQ(failure.op_index, 1u);
  // The rendered diagnosis is the exact pre-watchdog throw message.
  const std::string text = failure.to_string();
  EXPECT_NE(text.find("simulation deadlock"), std::string::npos) << text;
  EXPECT_NE(text.find("rank 1"), std::string::npos) << text;
  EXPECT_NE(text.find("recv"), std::string::npos) << text;
  // The healthy rank's timing survives the failed run.
  EXPECT_DOUBLE_EQ(result.finish_times[0], 1.0);
}

TEST(SimulatorFaults, WithoutStructuredFailuresDeadlockStillThrows) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(1, {Op::recv(0, 64.0, 9)});
  try {
    (void)sim.run();
    FAIL() << "expected KrakError";
  } catch (const util::KrakError& error) {
    EXPECT_NE(std::string(error.what()).find("simulation deadlock"),
              std::string::npos)
        << error.what();
  }
}

TEST(SimulatorFaults, LostMessageIsDiagnosedAtTheStarvedReceiver) {
  Simulator sim = make_simulator(2);
  ScriptedInjector injector;
  injector.lose_everything = true;
  sim.set_fault_injector(&injector);
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  sim.set_watchdog(watchdog);
  sim.set_schedule(0, {Op::isend(1, 128.0, 5)});
  sim.set_schedule(1, {Op::recv(0, 128.0, 5)});
  const SimResult result = sim.run();

  ASSERT_TRUE(result.failed());
  const SimFailure& failure = result.failures[0];
  EXPECT_EQ(failure.kind, SimFailure::Kind::kLostMessage);
  EXPECT_EQ(failure.rank, 1);
  ASSERT_TRUE(failure.has_op);
  EXPECT_EQ(failure.op, OpKind::kRecv);
  EXPECT_EQ(failure.peer, 0);
  EXPECT_EQ(failure.tag, 5);
  EXPECT_NE(failure.to_string().find("lost"), std::string::npos)
      << failure.to_string();
  EXPECT_EQ(result.faults.messages_lost, 1);
}

TEST(SimulatorFaults, TimeLimitStopsARunawayRank) {
  Simulator sim = make_simulator(2);
  ScriptedInjector injector;
  injector.delay_rank = 0;
  injector.delay_index = 0;
  injector.delay_seconds = 1e9;  // unbounded-delay fault plan
  sim.set_fault_injector(&injector);
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  watchdog.max_sim_seconds = 10.0;
  sim.set_watchdog(watchdog);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::compute(1.0), Op::allreduce(8.0)});
  const SimResult result = sim.run();

  ASSERT_TRUE(result.failed());
  bool saw_time_limit = false;
  for (const SimFailure& failure : result.failures) {
    if (failure.kind == SimFailure::Kind::kTimeLimit) {
      saw_time_limit = true;
      EXPECT_EQ(failure.rank, 0);
    }
  }
  EXPECT_TRUE(saw_time_limit);
}

TEST(SimulatorFaults, SameSeedAndPlanGiveBitIdenticalBreakdowns) {
  fault::FaultPlan plan;
  plan.seed = 2026;
  fault::MessageFaultModel model;
  model.drop_probability = 0.3;
  model.retransmit_timeout_s = 5e-5;
  model.max_retries = 8;
  plan.message_faults.push_back(model);
  plan.slowdowns.push_back({fault::kAllRanks, 1.1});
  fault::NoiseBurst burst;
  burst.rank = fault::kAllRanks;
  burst.period_s = 0.3;
  burst.duration_s = 0.01;
  plan.noise.push_back(burst);

  const auto run_once = [&plan]() {
    Simulator sim = make_simulator(4);
    fault::InjectionEngine engine(plan, 4, /*phases_per_iteration=*/1);
    sim.set_fault_injector(&engine);
    sim.set_watchdog(engine.watchdog());
    for (RankId rank = 0; rank < 4; ++rank) {
      const RankId next = (rank + 1) % 4;
      const RankId prev = (rank + 3) % 4;
      sim.set_schedule(rank, {Op::compute(0.5 + 0.1 * rank),
                              Op::isend(next, 2048.0, 1),
                              Op::recv(prev, 2048.0, 1), Op::allreduce(8.0),
                              Op::compute(0.25), Op::isend(prev, 512.0, 2),
                              Op::recv(next, 512.0, 2), Op::allreduce(8.0)});
    }
    return sim.run();
  };

  const SimResult first = run_once();
  const SimResult second = run_once();
  ASSERT_FALSE(first.failed());
  EXPECT_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.faults.injections, second.faults.injections);
  EXPECT_EQ(first.faults.retransmits, second.faults.retransmits);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(first.finish_times[r], second.finish_times[r]);
    EXPECT_EQ(first.breakdown[r].compute, second.breakdown[r].compute);
    EXPECT_EQ(first.breakdown[r].fault_delay, second.breakdown[r].fault_delay);
    EXPECT_EQ(first.breakdown[r].recv_wait, second.breakdown[r].recv_wait);
    // The identity still holds with every fault class active at once.
    EXPECT_DOUBLE_EQ(first.breakdown[r].total_seconds(),
                     first.finish_times[r]);
  }
}

}  // namespace
}  // namespace krak::sim
