#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>

#include "network/msgmodel.hpp"
#include "util/error.hpp"

namespace krak::sim {
namespace {

/// 1 us latency, 1 ns/byte, zero host overheads: hand-checkable times.
Simulator make_simulator(std::int32_t ranks) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  return Simulator(ranks, network::make_hockney_model(1e-6, 1e9), config);
}

TEST(Simulator, ComputeAdvancesClock) {
  Simulator sim = make_simulator(1);
  sim.set_schedule(0, {Op::compute(2.0), Op::compute(0.5)});
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 2.5);
  EXPECT_DOUBLE_EQ(result.finish_times[0], 2.5);
}

TEST(Simulator, EmptyScheduleFinishesAtZero) {
  Simulator sim = make_simulator(2);
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(Simulator, PingMessageArrivesAfterTmsg) {
  Simulator sim = make_simulator(2);
  // 1000 bytes: Tmsg = 1 us + 1 us = 2 us.
  sim.set_schedule(0, {Op::isend(1, 1000.0, 7)});
  sim.set_schedule(1, {Op::recv(0, 1000.0, 7)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.finish_times[1], 2e-6, 1e-12);
  EXPECT_EQ(result.traffic.point_to_point_messages, 1);
  EXPECT_DOUBLE_EQ(result.traffic.point_to_point_bytes, 1000.0);
}

TEST(Simulator, RecvBlocksUntilSenderPosts) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::compute(5.0), Op::isend(1, 0.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 0.0, 1)});
  const SimResult result = sim.run();
  // Receiver waits for the sender's compute + latency.
  EXPECT_NEAR(result.finish_times[1], 5.0 + 1e-6, 1e-9);
}

TEST(Simulator, EarlyMessageDoesNotBlockLateReceiver) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::isend(1, 0.0, 1)});
  sim.set_schedule(1, {Op::compute(10.0), Op::recv(0, 0.0, 1)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.finish_times[1], 10.0, 1e-9);
}

TEST(Simulator, SendsToMultipleNeighborsOverlap) {
  // The core semantic of Section 4: async sends to different neighbors
  // overlap on the wire. Three 1 MB messages (Tmsg ~ 1 ms each) from one
  // sender must NOT take 3 ms end to end.
  Simulator sim = make_simulator(4);
  const double bytes = 1e6;  // Tmsg = 1 us + 1 ms
  sim.set_schedule(0, {Op::isend(1, bytes, 1), Op::isend(2, bytes, 1),
                       Op::isend(3, bytes, 1), Op::wait_all_sends()});
  sim.set_schedule(1, {Op::recv(0, bytes, 1)});
  sim.set_schedule(2, {Op::recv(0, bytes, 1)});
  sim.set_schedule(3, {Op::recv(0, bytes, 1)});
  const SimResult result = sim.run();
  EXPECT_LT(result.makespan, 1.2e-3);  // ~1 ms, not ~3 ms
}

TEST(Simulator, WaitAllSendsCoversNicHandoff) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::isend(1, 100.0, 1), Op::wait_all_sends()});
  sim.set_schedule(1, {Op::recv(0, 100.0, 1)});
  const SimResult result = sim.run();
  // Sender completes after the start-up latency (1 us), receiver after
  // the full message time.
  EXPECT_NEAR(result.finish_times[0], 1e-6, 1e-12);
  EXPECT_GE(result.finish_times[1], result.finish_times[0]);
}

TEST(Simulator, MessagesMatchByTag) {
  Simulator sim = make_simulator(2);
  // Two messages with different tags received in reverse order.
  sim.set_schedule(0, {Op::isend(1, 10.0, 1), Op::isend(1, 2000.0, 2)});
  sim.set_schedule(1, {Op::recv(0, 2000.0, 2), Op::recv(0, 10.0, 1)});
  const SimResult result = sim.run();
  EXPECT_GT(result.makespan, 0.0);  // completed without deadlock
}

TEST(Simulator, FifoMatchingWithinSameTag) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::isend(1, 10.0, 1), Op::compute(1.0),
                       Op::isend(1, 10.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 10.0, 1), Op::record(0), Op::recv(0, 10.0, 1),
                       Op::record(1)});
  const SimResult result = sim.run();
  const double first = result.records[1].at(0);
  const double second = result.records[1].at(1);
  EXPECT_LT(first, 1.0);       // first message arrives immediately
  EXPECT_GT(second, 1.0);      // second waits for sender's compute
}

TEST(Simulator, SendRecvOverheadsCharged) {
  SimConfig config;
  config.send_overhead = 0.5;
  config.recv_overhead = 0.25;
  Simulator sim(2, network::make_hockney_model(0.0, 1e30), config);
  sim.set_schedule(0, {Op::isend(1, 1.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 1.0, 1)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.finish_times[0], 0.5, 1e-12);
  EXPECT_NEAR(result.finish_times[1], 0.75, 1e-12);
}

TEST(Simulator, AllreduceSynchronizesClocks) {
  Simulator sim = make_simulator(3);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0), Op::record(0)});
  sim.set_schedule(1, {Op::compute(5.0), Op::allreduce(8.0), Op::record(0)});
  sim.set_schedule(2, {Op::compute(3.0), Op::allreduce(8.0), Op::record(0)});
  const SimResult result = sim.run();
  // All ranks leave at max entry (5.0) + 2*depth(3)*Tmsg(8).
  const double expected = 5.0 + 2.0 * 2.0 * (1e-6 + 8e-9);
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(result.records[static_cast<std::size_t>(r)].at(0), expected,
                1e-9);
  }
  EXPECT_EQ(result.traffic.allreduces, 1);
}

TEST(Simulator, BroadcastAndGatherCountedSeparately) {
  Simulator sim = make_simulator(2);
  const Schedule schedule = {Op::broadcast(4.0), Op::gather(32.0),
                             Op::allreduce(8.0)};
  sim.set_schedule(0, schedule);
  sim.set_schedule(1, schedule);
  const SimResult result = sim.run();
  EXPECT_EQ(result.traffic.broadcasts, 1);
  EXPECT_EQ(result.traffic.gathers, 1);
  EXPECT_EQ(result.traffic.allreduces, 1);
}

TEST(Simulator, SingleRankCollectivesAreFree) {
  Simulator sim = make_simulator(1);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0), Op::broadcast(4.0)});
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
}

TEST(Simulator, DeliveryDoesNotWakeCollectiveBlockedRank) {
  // Rank 1 is parked in an allreduce when rank 0's message arrives; it
  // must stay parked until every rank entered the collective, then
  // receive the message afterwards.
  Simulator sim = make_simulator(3);
  sim.set_schedule(0, {Op::isend(1, 10.0, 5), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::allreduce(8.0), Op::recv(0, 10.0, 5), Op::record(0)});
  sim.set_schedule(2, {Op::compute(4.0), Op::allreduce(8.0)});
  const SimResult result = sim.run();
  // Rank 1 leaves the allreduce no earlier than rank 2's entry at 4.0.
  EXPECT_GE(result.records[1].at(0), 4.0);
}

TEST(Simulator, DeadlockDetectedAndReported) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::recv(1, 1.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 1.0, 1)});
  EXPECT_THROW((void)sim.run(), util::KrakError);
}

TEST(Simulator, RecvDeadlockNamesTheBlockingOp) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::recv(1, 1.0, 7)});
  sim.set_schedule(1, {Op::recv(0, 1.0, 9)});
  try {
    (void)sim.run();
    FAIL() << "expected deadlock";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
    EXPECT_NE(what.find("tag"), std::string::npos) << what;
  }
}

TEST(Simulator, CollectiveDeadlockNamesTheCollective) {
  // Regression: enter_collective advances pc past the collective before
  // parking the rank, so a report built from pc named the op after the
  // collective (or fell past the schedule's end and named nothing).
  // Rank 0 computes, then parks in an allreduce rank 1 never joins.
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::compute(2.0)});
  try {
    (void)sim.run();
    FAIL() << "expected deadlock";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("allreduce"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked at op 1"), std::string::npos) << what;
    EXPECT_NE(what.find("waiting for all ranks to enter the collective"),
              std::string::npos)
        << what;
  }
}

TEST(Simulator, TrailingCollectiveDeadlockStillNamesIt) {
  // The collective is the schedule's last op, so the advanced pc points
  // one past the end — the old report could not name any op at all.
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::broadcast(4.0)});
  sim.set_schedule(1, {});
  try {
    (void)sim.run();
    FAIL() << "expected deadlock";
  } catch (const util::KrakError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked at op 0"), std::string::npos) << what;
  }
}

TEST(Simulator, MismatchedCollectiveKindThrows) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::broadcast(8.0)});
  EXPECT_THROW((void)sim.run(), util::KrakError);
}

TEST(Simulator, MissingCollectiveParticipantIsDeadlock) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::allreduce(8.0)});
  sim.set_schedule(1, {});
  EXPECT_THROW((void)sim.run(), util::KrakError);
}

TEST(Simulator, ScheduleValidationRejectsBadOps) {
  Simulator sim = make_simulator(2);
  EXPECT_THROW(sim.set_schedule(0, {Op::isend(0, 1.0, 1)}),
               util::InvalidArgument);  // self-message
  EXPECT_THROW(sim.set_schedule(0, {Op::isend(5, 1.0, 1)}),
               util::InvalidArgument);  // peer out of range
  EXPECT_THROW(sim.set_schedule(0, {Op::compute(-1.0)}),
               util::InvalidArgument);
  EXPECT_THROW(sim.set_schedule(9, {}), util::InvalidArgument);
}

TEST(Simulator, RecordCapturesPhaseBoundaries) {
  Simulator sim = make_simulator(1);
  sim.set_schedule(0, {Op::compute(1.0), Op::record(0), Op::compute(2.0),
                       Op::record(1)});
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.records[0].at(0), 1.0);
  EXPECT_DOUBLE_EQ(result.records[0].at(1), 3.0);
}

TEST(Simulator, RunIsRepeatable) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::compute(1.0), Op::isend(1, 100.0, 1),
                       Op::allreduce(4.0)});
  sim.set_schedule(1, {Op::recv(0, 100.0, 1), Op::allreduce(4.0)});
  const SimResult a = sim.run();
  const SimResult b = sim.run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.traffic.point_to_point_messages,
            b.traffic.point_to_point_messages);
}

/// A 2-rank exchange of `messages` point-to-point round trips; every
/// arrival is its own event, so the run fires well over `messages`
/// events in total.
Simulator make_chatty_simulator(std::size_t max_events) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  config.max_events = max_events;
  Simulator sim(2, network::make_hockney_model(1e-6, 1e9), config);
  Schedule sender;
  Schedule receiver;
  for (std::int32_t m = 0; m < 32; ++m) {
    sender.push_back(Op::isend(1, 8.0, m));
    sender.push_back(Op::wait_all_sends());
    receiver.push_back(Op::recv(0, 8.0, m));
  }
  sim.set_schedule(0, std::move(sender));
  sim.set_schedule(1, std::move(receiver));
  return sim;
}

TEST(Simulator, EventLimitThrowsWithoutStructuredFailures) {
  Simulator sim = make_chatty_simulator(/*max_events=*/4);
  EXPECT_THROW(sim.run(), util::InternalError);
}

TEST(Simulator, EventLimitSurfacesAsStructuredFailure) {
  Simulator sim = make_chatty_simulator(/*max_events=*/4);
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  ASSERT_FALSE(result.failures.empty());
  const SimFailure& failure = result.failures.front();
  EXPECT_EQ(failure.kind, SimFailure::Kind::kEventLimit);
  EXPECT_EQ(failure.rank, -1);  // run-level diagnosis, not a rank's
  EXPECT_EQ(sim_failure_kind_name(failure.kind), "event-limit");
  // The historical runaway-guard message stays grep-compatible.
  EXPECT_NE(failure.to_string().find("max_events"), std::string::npos);
  EXPECT_NE(failure.detail.find("budget 4"), std::string::npos);
}

TEST(Simulator, GenerousEventLimitDoesNotTrip) {
  Simulator sim = make_chatty_simulator(/*max_events=*/1 << 20);
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  EXPECT_TRUE(result.failures.empty());
  EXPECT_GT(result.makespan, 0.0);
}

}  // namespace
}  // namespace krak::sim
