// Mailbox behavior, including the load-factor accounting regression:
// dead keyed slots (drained FIFOs of keys never reused) used to count
// as occupied forever, so a workload that churns through ever-new
// (peer, tag) pairs grew the table on schedule and degraded every
// probe chain. A grow now rehashes live FIFOs only.

#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace krak::sim {
namespace {

TEST(Mailbox, PushPopFifoPerKey) {
  Mailbox mailbox;
  mailbox.push(1, 7, 0.5);
  mailbox.push(1, 7, 1.5);
  mailbox.push(2, 7, 0.25);
  double arrival = 0.0;
  ASSERT_TRUE(mailbox.try_pop(1, 7, &arrival));
  EXPECT_DOUBLE_EQ(arrival, 0.5);
  ASSERT_TRUE(mailbox.try_pop(1, 7, &arrival));
  EXPECT_DOUBLE_EQ(arrival, 1.5);
  EXPECT_FALSE(mailbox.try_pop(1, 7, &arrival));
  ASSERT_TRUE(mailbox.try_pop(2, 7, &arrival));
  EXPECT_DOUBLE_EQ(arrival, 0.25);
}

TEST(Mailbox, PopOnEmptyAndUnknownKeysFails) {
  Mailbox mailbox;
  double arrival = 0.0;
  EXPECT_FALSE(mailbox.try_pop(0, 0, &arrival));  // before any push
  mailbox.push(3, 3, 1.0);
  EXPECT_FALSE(mailbox.try_pop(3, 4, &arrival));  // different tag
  EXPECT_FALSE(mailbox.try_pop(4, 3, &arrival));  // different peer
}

// The churn stress of the PR 7 regression: every key is drained before
// the next appears, over far more distinct keys than any reasonable
// table size. With dead slots counted as occupied, the table doubled
// every ~capacity*3/4 keys (to ~128k slots here) and the load factor
// pinned at the grow trigger kept linear-probe chains long. With
// live-only rehash the table must stay at its minimum size and the
// mean probe length must stay at ~1 slot per operation.
TEST(Mailbox, ChurnedKeysDoNotGrowTableOrDegradeProbes) {
  Mailbox mailbox;
  const std::int32_t keys = 100000;
  double arrival = 0.0;
  for (std::int32_t i = 0; i < keys; ++i) {
    const RankId peer = i;  // a never-repeating (peer, tag) stream
    mailbox.push(peer, /*tag=*/17, static_cast<double>(i));
    ASSERT_TRUE(mailbox.try_pop(peer, 17, &arrival));
    EXPECT_DOUBLE_EQ(arrival, static_cast<double>(i));
  }
  // At most one key is ever live, so one grow cycle's worth of dead
  // keys (< 3/4 * 16) is the most the table ever holds.
  EXPECT_EQ(mailbox.capacity(), 16u);
  EXPECT_EQ(mailbox.live_slots(), 0u);
  // push + successful pop probe at least one slot each; with the table
  // cycling between empty and the 3/4 grow trigger the healthy mean
  // stays under 2 probes per operation. The broken accounting kept
  // every dead key occupied, doubling capacity every ~12 keys (to
  // ~128k slots here) with probe chains pinned at the trigger load.
  const double operations = 2.0 * static_cast<double>(keys);
  const double mean_probes = static_cast<double>(mailbox.probes()) / operations;
  EXPECT_GE(mean_probes, 1.0);
  EXPECT_LT(mean_probes, 2.0);
}

// Mixed steady-state + churn: a fixed working set that stays live across
// the whole run (the Krak exchange pattern) plus a churning stream of
// one-shot keys. The table must converge to the working set's size, not
// the churn volume's.
TEST(Mailbox, LiveWorkingSetSurvivesChurnGrows) {
  Mailbox mailbox;
  const std::int32_t working_set = 24;
  for (std::int32_t k = 0; k < working_set; ++k) {
    mailbox.push(/*peer=*/1000 + k, /*tag=*/1, static_cast<double>(k));
  }
  double arrival = 0.0;
  for (std::int32_t i = 0; i < 20000; ++i) {
    mailbox.push(/*peer=*/i, /*tag=*/2, 0.5);
    ASSERT_TRUE(mailbox.try_pop(i, 2, &arrival));
  }
  // Every grow dropped the drained churn keys but kept the pending
  // working set, in FIFO order.
  EXPECT_EQ(mailbox.live_slots(), static_cast<std::size_t>(working_set));
  EXPECT_LE(mailbox.capacity(), 64u);
  for (std::int32_t k = 0; k < working_set; ++k) {
    ASSERT_TRUE(mailbox.try_pop(1000 + k, 1, &arrival));
    EXPECT_DOUBLE_EQ(arrival, static_cast<double>(k));
  }
}

// Capacity still doubles when the live population genuinely needs it.
TEST(Mailbox, GrowsForGenuinelyLiveKeys) {
  Mailbox mailbox;
  const std::int32_t keys = 1000;
  for (std::int32_t i = 0; i < keys; ++i) {
    mailbox.push(i, /*tag=*/5, static_cast<double>(i) + 0.25);
  }
  EXPECT_EQ(mailbox.live_slots(), static_cast<std::size_t>(keys));
  EXPECT_GE(mailbox.capacity(), static_cast<std::size_t>(keys));
  double arrival = 0.0;
  for (std::int32_t i = 0; i < keys; ++i) {
    ASSERT_TRUE(mailbox.try_pop(i, 5, &arrival));
    EXPECT_DOUBLE_EQ(arrival, static_cast<double>(i) + 0.25);
  }
}

}  // namespace
}  // namespace krak::sim
