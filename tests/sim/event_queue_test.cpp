#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace krak::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&order] { order.push_back(3); });
  queue.schedule(1.0, [&order] { order.push_back(1); });
  queue.schedule(2.0, [&order] { order.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowTracksFiringTime) {
  EventQueue queue;
  double seen = -1.0;
  queue.schedule(2.5, [&queue, &seen] { seen = queue.now(); });
  queue.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
}

TEST(EventQueue, ActionsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&queue, &fired] {
    ++fired;
    queue.schedule(2.0, [&queue, &fired] {
      ++fired;
      queue.schedule(3.0, [&fired] { ++fired; });
    });
  });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(5.0, [&queue] {
    EXPECT_THROW(queue.schedule(4.0, [] {}), util::InvalidArgument);
  });
  queue.run();
}

TEST(EventQueue, SchedulingAtCurrentTimeAllowed) {
  EventQueue queue;
  bool fired = false;
  queue.schedule(5.0, [&queue, &fired] {
    queue.schedule(5.0, [&fired] { fired = true; });
  });
  queue.run();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, EmptyActionRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1.0, EventQueue::Action{}),
               util::InvalidArgument);
}

TEST(EventQueue, RunawayGuardTrips) {
  EventQueue queue;
  // A self-perpetuating event chain must hit the max_events guard.
  std::function<void()> reschedule = [&queue, &reschedule] {
    queue.schedule(queue.now() + 1.0, reschedule);
  };
  queue.schedule(0.0, reschedule);
  EXPECT_THROW((void)queue.run(100), util::InternalError);
}

TEST(EventQueue, EmptyRunReturnsZero) {
  EventQueue queue;
  EXPECT_EQ(queue.run(), 0u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace krak::sim
