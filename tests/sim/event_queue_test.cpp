#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace krak::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<std::int32_t> order;
  queue.schedule(3.0, SimEvent::step(3));
  queue.schedule(1.0, SimEvent::step(1));
  queue.schedule(2.0, SimEvent::step(2));
  const EventRunStats stats =
      queue.run([&order](const SimEvent& e) { order.push_back(e.rank); });
  EXPECT_EQ(stats.fired, 3u);
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_EQ(order, (std::vector<std::int32_t>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<std::int32_t> order;
  for (std::int32_t i = 0; i < 10; ++i) {
    queue.schedule(5.0, SimEvent::step(i));
  }
  queue.run([&order](const SimEvent& e) { order.push_back(e.rank); });
  for (std::int32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, ManyEqualAndInterleavedTimesStaysStable) {
  // A heavier tie-breaking exercise: several timestamp groups scheduled
  // out of order, each expected to fire in insertion order.
  EventQueue queue;
  std::vector<std::int32_t> order;
  std::int32_t id = 0;
  for (std::int32_t round = 0; round < 20; ++round) {
    for (double time : {7.0, 3.0, 5.0}) {
      queue.schedule(time, SimEvent::step(id++));
    }
  }
  queue.run([&order](const SimEvent& e) { order.push_back(e.rank); });
  ASSERT_EQ(order.size(), 60u);
  // Within each time group, ids must be increasing.
  std::vector<std::int32_t> last_by_group(3, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t group = i / 20;  // 3..., then 5..., then 7...
    EXPECT_GT(order[i], last_by_group[group]);
    last_by_group[group] = order[i];
  }
}

TEST(EventQueue, NowTracksFiringTime) {
  EventQueue queue;
  double seen = -1.0;
  queue.schedule(2.5, SimEvent::step(0));
  queue.run([&queue, &seen](const SimEvent&) { seen = queue.now(); });
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, SimEvent::step(0));
  const EventRunStats stats = queue.run([&queue, &fired](const SimEvent& e) {
    ++fired;
    if (e.rank < 2) {
      queue.schedule(queue.now() + 1.0, SimEvent::step(e.rank + 1));
    }
  });
  EXPECT_EQ(stats.fired, 3u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(5.0, SimEvent::step(0));
  queue.run([&queue](const SimEvent&) {
    EXPECT_THROW(queue.schedule(4.0, SimEvent::step(1)),
                 util::InvalidArgument);
  });
}

TEST(EventQueue, SchedulingAtCurrentTimeAllowed) {
  EventQueue queue;
  bool fired = false;
  queue.schedule(5.0, SimEvent::step(0));
  queue.run([&queue, &fired](const SimEvent& e) {
    if (e.rank == 0) {
      queue.schedule(5.0, SimEvent::step(1));
    } else {
      fired = true;
    }
  });
  EXPECT_TRUE(fired);
}

TEST(EventQueue, BudgetExhaustionReportedNotThrown) {
  EventQueue queue;
  // A self-perpetuating event chain must trip the max_events budget.
  queue.schedule(0.0, SimEvent::step(0));
  const EventRunStats stats = queue.run(
      [&queue](const SimEvent&) {
        queue.schedule(queue.now() + 1.0, SimEvent::step(0));
      },
      /*max_events=*/100);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.fired, 100u);
  EXPECT_FALSE(queue.empty());  // the runaway chain is still pending
}

TEST(EventQueue, EmptyRunReturnsZero) {
  EventQueue queue;
  const EventRunStats stats = queue.run([](const SimEvent&) {});
  EXPECT_EQ(stats.fired, 0u);
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ReservedCapacityCountsPooledEvents) {
  EventQueue queue;
  queue.reserve(8);
  for (std::int32_t i = 0; i < 8; ++i) {
    queue.schedule(static_cast<double>(i), SimEvent::step(i));
  }
  EXPECT_EQ(queue.pooled_events(), 8u);
  EXPECT_EQ(queue.max_size(), 8u);
}

TEST(EventQueue, PayloadRoundTrips) {
  EventQueue queue;
  queue.schedule(1.0, SimEvent::arrival(/*rank=*/3, /*peer=*/7, /*tag=*/42,
                                        /*arrival_time=*/1.0));
  queue.schedule(2.0, SimEvent::release(/*rank=*/5, /*cost=*/0.125));
  std::vector<SimEvent> seen;
  queue.run([&seen](const SimEvent& e) { seen.push_back(e); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, EventKind::kMessageArrival);
  EXPECT_EQ(seen[0].rank, 3);
  EXPECT_EQ(seen[0].peer, 7);
  EXPECT_EQ(seen[0].tag, 42);
  EXPECT_DOUBLE_EQ(seen[0].value, 1.0);
  EXPECT_EQ(seen[1].kind, EventKind::kCollectiveRelease);
  EXPECT_EQ(seen[1].rank, 5);
  EXPECT_DOUBLE_EQ(seen[1].value, 0.125);
}

}  // namespace
}  // namespace krak::sim
