// Tests of the per-rank time decomposition (RankTimeBreakdown): the
// components must sum exactly to each rank's finish time, and the
// collective split must separate load-imbalance skew from tree cost.

#include <gtest/gtest.h>

#include "network/msgmodel.hpp"
#include "sim/simulator.hpp"

namespace krak::sim {
namespace {

/// 1 us latency, 1 ns/byte; nonzero host overheads so every breakdown
/// component can be exercised.
Simulator make_simulator(std::int32_t ranks) {
  SimConfig config;
  config.send_overhead = 0.5e-6;
  config.recv_overhead = 0.25e-6;
  return Simulator(ranks, network::make_hockney_model(1e-6, 1e9), config);
}

void expect_identity(const SimResult& result) {
  ASSERT_EQ(result.breakdown.size(), result.finish_times.size());
  for (std::size_t r = 0; r < result.breakdown.size(); ++r) {
    EXPECT_NEAR(result.breakdown[r].total_seconds(), result.finish_times[r],
                1e-12 + 1e-9 * result.finish_times[r])
        << "rank " << r;
  }
}

TEST(SimulatorTrace, ComputeOnlyBreakdownIsAllCompute) {
  Simulator sim = make_simulator(1);
  sim.set_schedule(0, {Op::compute(2.0), Op::compute(0.5)});
  const SimResult result = sim.run();
  EXPECT_DOUBLE_EQ(result.breakdown[0].compute, 2.5);
  EXPECT_DOUBLE_EQ(result.breakdown[0].p2p_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(result.breakdown[0].collective_seconds(), 0.0);
  expect_identity(result);
}

TEST(SimulatorTrace, BreakdownSumsToFinishTimeForMixedSchedule) {
  // Every component nonzero somewhere: compute, isend (overhead + wait
  // in wait_all_sends), recv (overhead + blocked wait), and a skewed
  // allreduce (collective wait + cost).
  Simulator sim = make_simulator(3);
  const double bytes = 1e6;  // Tmsg ~ 1 ms: real send waits
  sim.set_schedule(0, {Op::compute(1.0), Op::isend(1, bytes, 1),
                       Op::wait_all_sends(), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::recv(0, bytes, 1), Op::compute(0.5),
                       Op::allreduce(8.0)});
  sim.set_schedule(2, {Op::compute(4.0), Op::allreduce(8.0)});
  const SimResult result = sim.run();
  expect_identity(result);

  // Rank 1 started its recv at t=0 while rank 0 computed for 1 s first:
  // its recv wait covers that whole second plus the wire time.
  EXPECT_GT(result.breakdown[1].recv_wait, 1.0);
  EXPECT_DOUBLE_EQ(result.breakdown[1].recv_overhead, 0.25e-6);
  EXPECT_DOUBLE_EQ(result.breakdown[0].send_overhead, 0.5e-6);
  // Rank 2 entered the allreduce last (t=4): the others' collective
  // wait absorbs the skew, rank 2's is zero.
  EXPECT_NEAR(result.breakdown[2].collective_wait, 0.0, 1e-12);
  EXPECT_GT(result.breakdown[0].collective_wait, 1.0);
}

TEST(SimulatorTrace, CollectiveSplitsSkewFromTreeCost) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(8.0)});
  sim.set_schedule(1, {Op::compute(3.0), Op::allreduce(8.0)});
  const SimResult result = sim.run();
  expect_identity(result);

  // Both ranks pay the same tree cost; only the early rank waits.
  const double cost0 = result.breakdown[0].collective_cost;
  const double cost1 = result.breakdown[1].collective_cost;
  EXPECT_DOUBLE_EQ(cost0, cost1);
  EXPECT_GT(cost0, 0.0);
  EXPECT_NEAR(result.breakdown[0].collective_wait, 2.0, 1e-9);
  EXPECT_NEAR(result.breakdown[1].collective_wait, 0.0, 1e-12);
  // Completion = max entry (3.0) + cost, identical on both ranks.
  EXPECT_NEAR(result.finish_times[0], 3.0 + cost0, 1e-9);
  EXPECT_NEAR(result.finish_times[1], 3.0 + cost1, 1e-9);
}

TEST(SimulatorTrace, SendWaitChargedInWaitAllSends) {
  Simulator sim = make_simulator(2);
  const double bytes = 1e6;
  sim.set_schedule(0, {Op::isend(1, bytes, 1), Op::wait_all_sends()});
  sim.set_schedule(1, {Op::recv(0, bytes, 1)});
  const SimResult result = sim.run();
  expect_identity(result);
  // The sender parks until the payload's NIC handoff (one latency).
  EXPECT_NEAR(result.breakdown[0].send_wait, 1e-6, 1e-12);
}

TEST(SimulatorTrace, EarlyArrivalChargesNoRecvWait) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::isend(1, 10.0, 1)});
  sim.set_schedule(1, {Op::compute(10.0), Op::recv(0, 10.0, 1)});
  const SimResult result = sim.run();
  expect_identity(result);
  EXPECT_DOUBLE_EQ(result.breakdown[1].recv_wait, 0.0);
}

TEST(SimulatorTrace, QueueDepthHighWaterMarkIsTracked) {
  Simulator sim = make_simulator(4);
  for (RankId r = 0; r < 4; ++r) {
    sim.set_schedule(r, {Op::compute(0.1 * (r + 1)), Op::allreduce(8.0)});
  }
  const SimResult result = sim.run();
  // At minimum the four initial step events were queued together.
  EXPECT_GE(result.max_queue_depth, 4u);
  EXPECT_GT(result.events_processed, 4u);
}

TEST(SimulatorTrace, BreakdownResetsBetweenRuns) {
  Simulator sim = make_simulator(2);
  sim.set_schedule(0, {Op::compute(1.0), Op::allreduce(4.0)});
  sim.set_schedule(1, {Op::compute(2.0), Op::allreduce(4.0)});
  const SimResult first = sim.run();
  const SimResult second = sim.run();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(first.breakdown[r].compute, second.breakdown[r].compute);
    EXPECT_DOUBLE_EQ(first.breakdown[r].collective_wait,
                     second.breakdown[r].collective_wait);
    EXPECT_DOUBLE_EQ(first.breakdown[r].collective_cost,
                     second.breakdown[r].collective_cost);
  }
  expect_identity(second);
}

}  // namespace
}  // namespace krak::sim
