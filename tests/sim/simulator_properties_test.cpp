#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "network/msgmodel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace krak::sim {
namespace {

/// Random ring programs: every rank computes a random amount, sends to
/// its right neighbor, receives from its left, then allreduces. These
/// always terminate and exercise every op kind, making them good
/// subjects for metamorphic properties.
Schedule ring_schedule(RankId rank, std::int32_t ranks, util::Rng& rng) {
  Schedule schedule;
  const RankId right = (rank + 1) % ranks;
  const RankId left = (rank + ranks - 1) % ranks;
  for (int round = 0; round < 4; ++round) {
    schedule.push_back(Op::compute(rng.next_double(0.0, 1e-3)));
    const double bytes = std::floor(rng.next_double(1.0, 4096.0));
    schedule.push_back(Op::isend(right, bytes, round));
    schedule.push_back(Op::wait_all_sends());
    schedule.push_back(Op::recv(left, bytes, round));
    schedule.push_back(Op::allreduce(8.0));
  }
  return schedule;
}

class RingTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(RingTest, CompletesAndIsDeterministic) {
  const std::int32_t ranks = GetParam();
  const auto build = [&] {
    Simulator sim(ranks, network::make_qsnet1_model());
    util::Rng rng(77);
    for (RankId r = 0; r < ranks; ++r) {
      util::Rng rank_rng = rng.split();
      sim.set_schedule(r, ring_schedule(r, ranks, rank_rng));
    }
    return sim;
  };
  Simulator a = build();
  Simulator b = build();
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.traffic.point_to_point_messages,
            rb.traffic.point_to_point_messages);
  EXPECT_EQ(ra.traffic.point_to_point_messages, 4 * ranks);
  EXPECT_EQ(ra.traffic.allreduces, 4);
}

TEST_P(RingTest, MakespanAtLeastCriticalRankWork) {
  // No rank can finish before its own compute time sums.
  const std::int32_t ranks = GetParam();
  Simulator sim(ranks, network::make_qsnet1_model());
  util::Rng rng(5);
  std::vector<double> work(static_cast<std::size_t>(ranks), 0.0);
  for (RankId r = 0; r < ranks; ++r) {
    util::Rng rank_rng = rng.split();
    Schedule schedule = ring_schedule(r, ranks, rank_rng);
    for (const Op& op : schedule) {
      if (op.kind == OpKind::kCompute) {
        work[static_cast<std::size_t>(r)] += op.duration;
      }
    }
    sim.set_schedule(r, std::move(schedule));
  }
  const SimResult result = sim.run();
  const double max_work = *std::max_element(work.begin(), work.end());
  EXPECT_GE(result.makespan, max_work);
  for (RankId r = 0; r < ranks; ++r) {
    EXPECT_GE(result.finish_times[static_cast<std::size_t>(r)],
              work[static_cast<std::size_t>(r)]);
  }
}

TEST_P(RingTest, SlowerNetworkNeverFaster) {
  const std::int32_t ranks = GetParam();
  const auto run_with = [&](const network::MessageCostModel& net) {
    Simulator sim(ranks, net);
    util::Rng rng(13);
    for (RankId r = 0; r < ranks; ++r) {
      util::Rng rank_rng = rng.split();
      sim.set_schedule(r, ring_schedule(r, ranks, rank_rng));
    }
    return sim.run().makespan;
  };
  const double fast = run_with(network::make_qsnet1_model());
  const double slow = run_with(network::make_qsnet1_model().scaled(4.0, 4.0));
  EXPECT_GE(slow, fast);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33));

TEST(SimulatorProperties, AddingComputeDelaysMakespanExactly) {
  // With a single rank, inserting extra compute shifts completion by
  // exactly that amount.
  Simulator a(1, network::make_qsnet1_model());
  a.set_schedule(0, {Op::compute(1.0)});
  Simulator b(1, network::make_qsnet1_model());
  b.set_schedule(0, {Op::compute(1.0), Op::compute(0.25)});
  EXPECT_NEAR(b.run().makespan - a.run().makespan, 0.25, 1e-12);
}

TEST(SimulatorProperties, CollectiveCountIndependentOfEntryOrder) {
  // Whichever rank reaches the allreduce last, exactly one collective
  // happens and all ranks leave together.
  for (int slow_rank = 0; slow_rank < 3; ++slow_rank) {
    Simulator sim(3, network::make_qsnet1_model());
    for (RankId r = 0; r < 3; ++r) {
      Schedule schedule;
      schedule.push_back(Op::compute(r == slow_rank ? 1.0 : 0.01));
      schedule.push_back(Op::allreduce(8.0));
      schedule.push_back(Op::record(0));
      sim.set_schedule(r, schedule);
    }
    const SimResult result = sim.run();
    EXPECT_EQ(result.traffic.allreduces, 1);
    EXPECT_DOUBLE_EQ(result.records[0].at(0), result.records[1].at(0));
    EXPECT_DOUBLE_EQ(result.records[1].at(0), result.records[2].at(0));
    EXPECT_GE(result.records[0].at(0), 1.0);
  }
}

}  // namespace
}  // namespace krak::sim
