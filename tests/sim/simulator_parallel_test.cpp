// The conservative parallel engine's bit-identity contract
// (docs/PERFORMANCE.md, "Parallel simulation"): every simulated outcome
// of SimConfig::threads > 1 — times, per-rank breakdowns, records,
// traffic, fault accounting, structured failures — must equal the
// single-thread oracle's exactly, across thread counts {1, 2, 8}. Also
// the PR 7 watchdog regression: a run that drains its event queue while
// its final ops push a rank past max_sim_seconds must still trip the
// bound instead of reporting success.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "network/msgmodel.hpp"
#include "obs/metrics.hpp"
#include "network/topology.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace krak::sim {
namespace {

/// 1 us latency, 1 ns/byte, zero host overheads: hand-checkable times.
Simulator make_simulator(std::int32_t ranks, std::int32_t threads) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  config.threads = threads;
  return Simulator(ranks, network::make_hockney_model(1e-6, 1e9), config);
}

/// Tiny deterministic generator (SplitMix64) for schedule shapes; the
/// schedules must be identical across engines, nothing more.
struct Mix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

/// A messy but deadlock-free workload: per-rank compute jitter, a ring
/// exchange with per-round tags (posted send-first), periodic
/// collectives, and record markers. Exercises cross-shard sends in both
/// directions, collective coordination, and the record slots.
void install_ring_workload(Simulator& sim, std::int32_t ranks,
                           std::int32_t rounds) {
  for (std::int32_t r = 0; r < ranks; ++r) {
    Mix mix{0xC0FFEEull + static_cast<std::uint64_t>(r)};
    std::vector<Op> ops;
    const RankId right = (r + 1) % ranks;
    const RankId left = (r + ranks - 1) % ranks;
    for (std::int32_t round = 0; round < rounds; ++round) {
      ops.push_back(Op::compute(1e-6 * static_cast<double>(mix.below(50))));
      const double bytes = static_cast<double>(64 + mix.below(4096));
      ops.push_back(Op::isend(right, bytes, /*tag=*/round));
      // The matching size must be what the left neighbor sent: derive it
      // from the neighbor's stream the same way it does.
      Mix left_mix{0xC0FFEEull + static_cast<std::uint64_t>(left)};
      for (std::int32_t skip = 0; skip < round; ++skip) {
        left_mix.next();  // its compute draw
        left_mix.next();  // its bytes draw
        left_mix.next();  // its trailing compute draw
      }
      left_mix.next();
      const double left_bytes = static_cast<double>(64 + left_mix.below(4096));
      ops.push_back(Op::recv(left, left_bytes, /*tag=*/round));
      ops.push_back(Op::compute(1e-6 * static_cast<double>(mix.below(20))));
      if (round % 3 == 1) ops.push_back(Op::allreduce(8.0));
      if (round % 4 == 2) ops.push_back(Op::broadcast(256.0));
      ops.push_back(Op::record(round));
    }
    ops.push_back(Op::wait_all_sends());
    sim.set_schedule(r, ops);
  }
}

void expect_identical(const SimResult& oracle, const SimResult& parallel) {
  EXPECT_EQ(oracle.makespan, parallel.makespan);
  ASSERT_EQ(oracle.finish_times.size(), parallel.finish_times.size());
  for (std::size_t r = 0; r < oracle.finish_times.size(); ++r) {
    EXPECT_EQ(oracle.finish_times[r], parallel.finish_times[r]) << "rank " << r;
  }
  ASSERT_EQ(oracle.breakdown.size(), parallel.breakdown.size());
  for (std::size_t r = 0; r < oracle.breakdown.size(); ++r) {
    const RankTimeBreakdown& a = oracle.breakdown[r];
    const RankTimeBreakdown& b = parallel.breakdown[r];
    EXPECT_EQ(a.compute, b.compute) << "rank " << r;
    EXPECT_EQ(a.send_overhead, b.send_overhead) << "rank " << r;
    EXPECT_EQ(a.recv_overhead, b.recv_overhead) << "rank " << r;
    EXPECT_EQ(a.send_wait, b.send_wait) << "rank " << r;
    EXPECT_EQ(a.recv_wait, b.recv_wait) << "rank " << r;
    EXPECT_EQ(a.collective_wait, b.collective_wait) << "rank " << r;
    EXPECT_EQ(a.collective_cost, b.collective_cost) << "rank " << r;
    EXPECT_EQ(a.fault_delay, b.fault_delay) << "rank " << r;
    EXPECT_EQ(a.recovery, b.recovery) << "rank " << r;
  }
  EXPECT_EQ(oracle.records, parallel.records);
  EXPECT_EQ(oracle.traffic.point_to_point_messages,
            parallel.traffic.point_to_point_messages);
  EXPECT_EQ(oracle.traffic.point_to_point_bytes,
            parallel.traffic.point_to_point_bytes);
  EXPECT_EQ(oracle.traffic.allreduces, parallel.traffic.allreduces);
  EXPECT_EQ(oracle.traffic.broadcasts, parallel.traffic.broadcasts);
  EXPECT_EQ(oracle.traffic.gathers, parallel.traffic.gathers);
  EXPECT_EQ(oracle.faults.injections, parallel.faults.injections);
  EXPECT_EQ(oracle.faults.retransmits, parallel.faults.retransmits);
  EXPECT_EQ(oracle.faults.messages_lost,
            parallel.faults.messages_lost);
  EXPECT_EQ(oracle.faults.fault_delay_seconds,
            parallel.faults.fault_delay_seconds);
  EXPECT_EQ(oracle.faults.recovery_seconds,
            parallel.faults.recovery_seconds);
  ASSERT_EQ(oracle.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < oracle.failures.size(); ++i) {
    EXPECT_EQ(oracle.failures[i].kind, parallel.failures[i].kind);
    EXPECT_EQ(oracle.failures[i].rank, parallel.failures[i].rank);
    EXPECT_EQ(oracle.failures[i].op_index, parallel.failures[i].op_index);
    EXPECT_EQ(oracle.failures[i].to_string(), parallel.failures[i].to_string());
  }
}

TEST(SimulatorParallel, RingWorkloadIdenticalAcrossThreadCounts) {
  const std::int32_t ranks = 24;
  Simulator oracle = make_simulator(ranks, 1);
  install_ring_workload(oracle, ranks, /*rounds=*/12);
  const SimResult reference = oracle.run();
  EXPECT_GT(reference.makespan, 0.0);
  for (std::int32_t threads : {2, 8}) {
    Simulator sim = make_simulator(ranks, threads);
    install_ring_workload(sim, ranks, /*rounds=*/12);
    expect_identical(reference, sim.run());
  }
}

TEST(SimulatorParallel, MoreThreadsThanRanksStillIdentical) {
  const std::int32_t ranks = 3;
  Simulator oracle = make_simulator(ranks, 1);
  install_ring_workload(oracle, ranks, /*rounds=*/6);
  const SimResult reference = oracle.run();
  Simulator sim = make_simulator(ranks, 8);  // clamps to one rank per shard
  install_ring_workload(sim, ranks, /*rounds=*/6);
  expect_identical(reference, sim.run());
}

TEST(SimulatorParallel, CollectiveOnlyScheduleIdentical) {
  // All coordination flows through the epoch-barrier collective path.
  const std::int32_t ranks = 16;
  auto install = [&](Simulator& sim) {
    for (std::int32_t r = 0; r < ranks; ++r) {
      sim.set_schedule(
          r, {Op::compute(1e-6 * static_cast<double>(r + 1)), Op::allreduce(8.0),
              Op::compute(2e-6), Op::gather(128.0), Op::broadcast(64.0),
              Op::record(0)});
    }
  };
  Simulator oracle = make_simulator(ranks, 1);
  install(oracle);
  const SimResult reference = oracle.run();
  for (std::int32_t threads : {2, 8}) {
    Simulator sim = make_simulator(ranks, threads);
    install(sim);
    expect_identical(reference, sim.run());
  }
}

TEST(SimulatorParallel, ZeroLatencyNetworkDegeneratesToLockstepAndMatches) {
  // Zero lookahead: the engine must fall back to one-timestamp-per-epoch
  // (null-message-style progression) and still match the oracle.
  const std::int32_t ranks = 8;
  auto make = [&](std::int32_t threads) {
    SimConfig config;
    config.send_overhead = 0.0;
    config.recv_overhead = 0.0;
    config.threads = threads;
    return Simulator(ranks, network::make_hockney_model(0.0, 1e9), config);
  };
  auto install = [&](Simulator& sim) { install_ring_workload(sim, ranks, 8); };
  Simulator oracle = make(1);
  install(oracle);
  const SimResult reference = oracle.run();
  Simulator sim = make(4);
  install(sim);
  expect_identical(reference, sim.run());
}

TEST(SimulatorParallel, FaultPlanFailuresPropagateFromWorkerShards) {
  // A plan that drops every message past its retransmit budget: the
  // receiving ranks hang, the watchdog (armed by the plan) diagnoses
  // them, and the structured failures must come back in the same
  // canonical order from every engine.
  const std::int32_t ranks = 12;
  fault::FaultPlan plan;
  plan.seed = 7;
  fault::MessageFaultModel model;
  model.rank = fault::kAllRanks;
  model.drop_probability = 0.999999;  // effectively always dropped
  model.max_retries = 0;
  plan.message_faults.push_back(model);
  plan.max_sim_seconds = 1.0;

  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_simulator(ranks, threads);
    install_ring_workload(sim, ranks, /*rounds=*/4);
    fault::InjectionEngine engine(plan, ranks, /*phases_per_iteration=*/1);
    sim.set_fault_injector(&engine);
    sim.set_watchdog(engine.watchdog());
    return sim.run();
  };
  const SimResult reference = run_with(1);
  EXPECT_FALSE(reference.failures.empty());
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, InjectedDelaysIdenticalAcrossThreadCounts) {
  const std::int32_t ranks = 12;
  fault::FaultPlan plan;
  plan.seed = 21;
  plan.slowdowns.push_back({fault::kAllRanks, 1.1});
  fault::OneOffDelay delay;
  delay.rank = 5;
  delay.phase = 1;
  delay.iteration = 2;
  delay.seconds = 3e-4;
  plan.delays.push_back(delay);

  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_simulator(ranks, threads);
    install_ring_workload(sim, ranks, /*rounds=*/10);
    fault::InjectionEngine engine(plan, ranks, /*phases_per_iteration=*/1);
    sim.set_fault_injector(&engine);
    sim.set_watchdog(engine.watchdog());
    return sim.run();
  };
  const SimResult reference = run_with(1);
  EXPECT_GT(reference.faults.fault_delay_seconds, 0.0);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, CrossShardDeadlockDiagnosedNotHung) {
  // Ranks in different shards blocked on receives nobody will send;
  // every shard's queue drains, the barrier loop exits, and the drain
  // diagnosis must report each stuck rank exactly like the oracle.
  const std::int32_t ranks = 8;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_simulator(ranks, threads);
    for (std::int32_t r = 0; r < ranks; ++r) {
      sim.set_schedule(r, {Op::compute(1e-6),
                           Op::recv((r + 1) % ranks, 8.0, /*tag=*/99)});
    }
    WatchdogConfig watchdog;
    watchdog.structured_failures = true;
    sim.set_watchdog(watchdog);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  ASSERT_EQ(reference.failures.size(), static_cast<std::size_t>(ranks));
  for (const SimFailure& failure : reference.failures) {
    EXPECT_EQ(failure.kind, SimFailure::Kind::kDeadlock);
  }
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, EventBudgetTripsAsStructuredEventLimit) {
  const std::int32_t ranks = 8;
  auto run_with = [&](std::int32_t threads) {
    SimConfig config;
    config.send_overhead = 0.0;
    config.recv_overhead = 0.0;
    config.threads = threads;
    config.max_events = 40;  // far fewer than the workload needs
    Simulator sim(ranks, network::make_hockney_model(1e-6, 1e9), config);
    install_ring_workload(sim, ranks, /*rounds=*/8);
    WatchdogConfig watchdog;
    watchdog.structured_failures = true;
    sim.set_watchdog(watchdog);
    return sim.run();
  };
  // The parallel engine checks the budget at epoch barriers, so fired
  // event counts may overshoot; the structured run-level diagnosis is
  // the contract, not the mechanics.
  for (std::int32_t threads : {1, 2, 8}) {
    const SimResult result = run_with(threads);
    ASSERT_FALSE(result.failures.empty()) << threads << " threads";
    EXPECT_EQ(result.failures.front().kind, SimFailure::Kind::kEventLimit);
    EXPECT_EQ(result.failures.front().rank, -1);
  }
}

// --- Shared-NIC contention: shard-local, unsynchronized, bit-identical ---

/// NIC-enabled simulator; a deliberately slow injection bandwidth makes
/// adapter contention the dominant effect so any ordering divergence in
/// the shard-local nic_free_ updates would show up in the times.
Simulator make_nic_simulator(std::int32_t ranks, std::int32_t threads,
                             std::int32_t pes_per_node,
                             double latency = 1e-6) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  config.threads = threads;
  Simulator sim(ranks, network::make_hockney_model(latency, 1e9), config);
  NicConfig nic;
  nic.enabled = true;
  nic.pes_per_node = pes_per_node;
  nic.injection_bandwidth = 2e8;  // 4 KiB serializes for ~20 us
  sim.set_nic(nic);
  return sim;
}

TEST(SimulatorParallel, NicContentionIdenticalAcrossThreadCounts) {
  // Shard boundaries align to NIC node boundaries (shard_unit), so each
  // shard owns its nodes' adapter-availability state outright: the
  // engine runs genuinely parallel — no oracle fallback — and must stay
  // bit-identical to the serial oracle.
  const std::int32_t ranks = 32;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_nic_simulator(ranks, threads, /*pes_per_node=*/4);
    install_ring_workload(sim, ranks, /*rounds=*/10);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, NicOnPartialLastNodeIdentical) {
  // 10 ranks on 4-wide NIC nodes: the last node is half-occupied, the
  // unit count does not divide the shard count, and shards must still
  // align to whole nodes.
  const std::int32_t ranks = 10;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_nic_simulator(ranks, threads, /*pes_per_node=*/4);
    install_ring_workload(sim, ranks, /*rounds=*/8);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  for (std::int32_t threads : {2, 3, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, NicUnderHierarchicalNetworkIdentical) {
  // NIC serialization and two-level message costs together: the shard
  // unit is the lcm of the placement's and the NIC's node widths, and
  // the parallel lookahead comes from the inter-node model's
  // min_message_time.
  const std::int32_t ranks = 24;
  auto run_with = [&](std::int32_t threads) {
    SimConfig config;
    config.send_overhead = 0.0;
    config.recv_overhead = 0.0;
    config.threads = threads;
    Simulator sim(ranks, network::make_qsnet1_model(), config);
    sim.set_pair_network(std::make_shared<network::HierarchicalNetwork>(
        network::make_es45_shared_memory_model(), network::make_qsnet1_model(),
        network::Placement(ranks, 4)));
    NicConfig nic;
    nic.enabled = true;
    nic.pes_per_node = 2;  // lcm(4, 2) = 4: placement wins
    nic.injection_bandwidth = 2e8;
    sim.set_nic(nic);
    install_ring_workload(sim, ranks, /*rounds=*/8);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, ZeroLatencyWithNicDegeneratesAndMatches) {
  // Zero lookahead and NIC contention at once: the degenerate
  // one-timestamp-per-epoch progression must preserve shard-local NIC
  // identity too.
  const std::int32_t ranks = 8;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim =
        make_nic_simulator(ranks, threads, /*pes_per_node=*/4, /*latency=*/0.0);
    install_ring_workload(sim, ranks, /*rounds=*/8);
    return sim.run();
  };
  expect_identical(run_with(1), run_with(4));
}

TEST(SimulatorParallel, ZeroLatencyInterNodeHierarchyWithNicMatches) {
  // The hierarchical lookahead is the inter-node model's
  // min_message_time; a zero-latency interconnect collapses it to zero
  // and the engine must degenerate to lockstep — not deadlock, not
  // drift — with NIC contention still active.
  const std::int32_t ranks = 16;
  auto run_with = [&](std::int32_t threads) {
    SimConfig config;
    config.send_overhead = 0.0;
    config.recv_overhead = 0.0;
    config.threads = threads;
    Simulator sim(ranks, network::make_hockney_model(0.0, 1e9), config);
    sim.set_pair_network(std::make_shared<network::HierarchicalNetwork>(
        network::make_es45_shared_memory_model(),
        network::make_hockney_model(0.0, 1e9), network::Placement(ranks, 4)));
    NicConfig nic;
    nic.enabled = true;
    nic.pes_per_node = 4;
    nic.injection_bandwidth = 2e8;
    sim.set_nic(nic);
    install_ring_workload(sim, ranks, /*rounds=*/6);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  for (std::int32_t threads : {2, 4}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, NicWithFaultPlanIdenticalAcrossThreadCounts) {
  // Contended adapters plus injected delays: fate draws and NIC
  // serialization interact on the send path, and the combination must
  // still replay the oracle exactly.
  const std::int32_t ranks = 16;
  fault::FaultPlan plan;
  plan.seed = 33;
  plan.slowdowns.push_back({fault::kAllRanks, 1.07});
  fault::OneOffDelay delay;
  delay.rank = 9;
  delay.phase = 1;
  delay.iteration = 3;
  delay.seconds = 4e-4;
  plan.delays.push_back(delay);

  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_nic_simulator(ranks, threads, /*pes_per_node=*/4);
    install_ring_workload(sim, ranks, /*rounds=*/8);
    fault::InjectionEngine engine(plan, ranks, /*phases_per_iteration=*/1);
    sim.set_fault_injector(&engine);
    sim.set_watchdog(engine.watchdog());
    return sim.run();
  };
  const SimResult reference = run_with(1);
  EXPECT_GT(reference.faults.fault_delay_seconds, 0.0);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

// --- The watchdog max_sim_seconds regression (PR 7 bugfix) ---

TEST(SimulatorWatchdog, FinalOpOvershootTripsTimeLimit) {
  // One rank, one compute op that blows through the bound: the queue
  // drains (no further events), so the old in-loop-only check never
  // re-examined the clock and the run reported success at t = 10.
  Simulator sim = make_simulator(1, 1);
  sim.set_schedule(0, {Op::compute(10.0)});
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  watchdog.max_sim_seconds = 5.0;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, SimFailure::Kind::kTimeLimit);
  EXPECT_EQ(result.failures[0].rank, 0);
}

TEST(SimulatorWatchdog, FinalOpOvershootRecordedEvenWithoutStructuredMode) {
  // max_sim_seconds trips have always been recorded structurally (the
  // run keeps draining so the other ranks' timings stay meaningful);
  // structured_failures only governs hang/deadlock diagnoses. The
  // final-op overshoot must follow the same contract.
  Simulator sim = make_simulator(1, 1);
  sim.set_schedule(0, {Op::compute(10.0)});
  WatchdogConfig watchdog;
  watchdog.max_sim_seconds = 5.0;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, SimFailure::Kind::kTimeLimit);
}

TEST(SimulatorWatchdog, TrailingOpsAfterMidScheduleTripAreNotExecuted) {
  // The bound fires mid-schedule: the recording op behind the oversized
  // compute must never run.
  Simulator sim = make_simulator(1, 1);
  sim.set_schedule(0, {Op::compute(1.0), Op::compute(10.0), Op::record(0)});
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  watchdog.max_sim_seconds = 5.0;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, SimFailure::Kind::kTimeLimit);
  EXPECT_TRUE(result.records[0].empty());
}

TEST(SimulatorWatchdog, RunWithinBoundStillSucceeds) {
  Simulator sim = make_simulator(1, 1);
  sim.set_schedule(0, {Op::compute(4.0)});
  WatchdogConfig watchdog;
  watchdog.structured_failures = true;
  watchdog.max_sim_seconds = 5.0;
  sim.set_watchdog(watchdog);
  const SimResult result = sim.run();
  EXPECT_TRUE(result.failures.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(SimulatorWatchdog, OvershootIdenticalAcrossThreadCounts) {
  const std::int32_t ranks = 6;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_simulator(ranks, threads);
    for (std::int32_t r = 0; r < ranks; ++r) {
      // Ranks 0 and 3 blow the bound with their final op; the rest stay
      // inside it.
      const double tail = (r % 3 == 0) ? 9.0 : 0.5;
      sim.set_schedule(r, {Op::compute(0.25), Op::compute(tail)});
    }
    WatchdogConfig watchdog;
    watchdog.structured_failures = true;
    watchdog.max_sim_seconds = 5.0;
    sim.set_watchdog(watchdog);
    return sim.run();
  };
  const SimResult reference = run_with(1);
  ASSERT_EQ(reference.failures.size(), 2u);
  EXPECT_EQ(reference.failures[0].rank, 0);
  EXPECT_EQ(reference.failures[1].rank, 3);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

// --- Epoch-barrier merge tie-breaking (PR 10) ---

TEST(SimulatorParallel, SameArrivalCrossShardSendersTieBreakIdentical) {
  // Three remote senders on distinct nodes (hence distinct shards at 8
  // threads) land payloads on node 0 at exactly the same timestamp:
  // zero overheads, equal clocks, equal bytes. The barrier's k-way
  // merge must break the (arrival) tie by sender in canonical order —
  // and the receivers' immediate big replies then serialize on node 0's
  // shared NIC adapter in wake order, so any deviation in the merged
  // tie order shifts real simulated times, not just internal sequence
  // numbers.
  const std::int32_t ranks = 16;
  auto run_with = [&](std::int32_t threads) {
    Simulator sim = make_nic_simulator(ranks, threads, /*pes_per_node=*/4);
    for (std::int32_t r = 0; r < ranks; ++r) {
      std::vector<Op> ops;
      if (r < 3) {
        // Receivers 0..2 on node 0; senders 4, 8, 12 on nodes 1, 2, 3.
        const auto sender = static_cast<RankId>(4 * (r + 1));
        ops.push_back(Op::recv(sender, 512.0, /*tag=*/0));
        ops.push_back(Op::isend(sender, 4096.0, /*tag=*/1));
        ops.push_back(Op::recv(sender, 64.0, /*tag=*/2));
        ops.push_back(Op::wait_all_sends());
      } else if (r >= 4 && r % 4 == 0) {
        const auto receiver = static_cast<RankId>(r / 4 - 1);
        ops.push_back(Op::isend(receiver, 512.0, /*tag=*/0));
        ops.push_back(Op::recv(receiver, 4096.0, /*tag=*/1));
        ops.push_back(Op::isend(receiver, 64.0, /*tag=*/2));
        ops.push_back(Op::wait_all_sends());
      }
      sim.set_schedule(r, ops);
    }
    return sim.run();
  };
  const SimResult reference = run_with(1);
  EXPECT_GT(reference.makespan, 0.0);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, CollectivesCoScheduledWithMessagesIdentical) {
  // Zero network latency collapses each round's message arrivals and
  // collective releases onto shared timestamps, so every barrier must
  // interleave message injection and release application per queue in
  // exactly the oracle's order (canonical messages first, then release
  // steps) — the tie is broken purely by event sequence numbers.
  const std::int32_t ranks = 12;
  auto run_with = [&](std::int32_t threads) {
    SimConfig config;
    config.send_overhead = 0.0;
    config.recv_overhead = 0.0;
    config.threads = threads;
    Simulator sim(ranks, network::make_hockney_model(0.0, 1e9), config);
    for (std::int32_t r = 0; r < ranks; ++r) {
      std::vector<Op> ops;
      const RankId right = (r + 1) % ranks;
      const RankId left = (r + ranks - 1) % ranks;
      for (std::int32_t round = 0; round < 8; ++round) {
        // Half the ranks pay a tiny compute so rounds drift in and out
        // of lockstep instead of every timestamp being identical.
        if (r % 2 == 0) ops.push_back(Op::compute(1e-6));
        ops.push_back(Op::isend(right, 256.0, /*tag=*/round));
        ops.push_back(Op::recv(left, 256.0, /*tag=*/round));
        ops.push_back(Op::allreduce(16.0));
      }
      ops.push_back(Op::wait_all_sends());
      sim.set_schedule(r, ops);
    }
    return sim.run();
  };
  const SimResult reference = run_with(1);
  EXPECT_EQ(reference.traffic.allreduces, 8);
  for (std::int32_t threads : {2, 8}) {
    expect_identical(reference, run_with(threads));
  }
}

TEST(SimulatorParallel, ShardCountNotDividingRanksIdentical) {
  // 22 ranks over 3, 5, and 8 shards: uneven blocks, including shards
  // one rank larger than others — the merge and the release application
  // must cover exactly every rank with no overlap.
  const std::int32_t ranks = 22;
  Simulator oracle = make_simulator(ranks, 1);
  install_ring_workload(oracle, ranks, /*rounds=*/10);
  const SimResult reference = oracle.run();
  for (std::int32_t threads : {3, 5, 8}) {
    Simulator sim = make_simulator(ranks, threads);
    install_ring_workload(sim, ranks, /*rounds=*/10);
    expect_identical(reference, sim.run());
  }
}

TEST(SimulatorParallel, CollectiveStateWindowStaysBounded) {
  // Released collectives are reclaimed eagerly (only the frontier index
  // can ever be partially entered), so a replay with hundreds of
  // collectives keeps an O(1) live window in both engines — pinned by
  // the sim.collective_states_high_water gauge.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const std::int32_t ranks = 8;
  for (std::int32_t threads : {1, 4}) {
    Simulator sim = make_simulator(ranks, threads);
    for (std::int32_t r = 0; r < ranks; ++r) {
      std::vector<Op> ops;
      for (std::int32_t i = 0; i < 300; ++i) {
        ops.push_back(Op::compute(1e-7 * static_cast<double>(r + 1)));
        ops.push_back(Op::allreduce(8.0));
      }
      sim.set_schedule(r, ops);
    }
    const SimResult result = sim.run();
    EXPECT_EQ(result.traffic.allreduces, 300);
    const obs::Snapshot snapshot = obs::global_registry().snapshot();
    const obs::MetricValue& high_water =
        snapshot.at("sim.collective_states_high_water");
    EXPECT_GE(high_water.value, 1.0) << "threads " << threads;
    EXPECT_LE(high_water.value, 2.0) << "threads " << threads;
  }
  obs::set_enabled(was_enabled);
}

TEST(SimulatorParallel, CoordinatorTimingFieldsPopulated) {
  // The Amdahl decomposition of the epoch barrier: the parallel engine
  // reports its serial-coordinator, worker-sort, and barrier-apply
  // walls; the oracle has no coordinator and reports zeros.
  const std::int32_t ranks = 16;
  Simulator sim = make_simulator(ranks, 4);
  install_ring_workload(sim, ranks, /*rounds=*/8);
  const SimResult parallel = sim.run();
  EXPECT_GT(parallel.coordinator_seconds, 0.0);
  EXPECT_GE(parallel.sort_seconds, 0.0);
  // The ring couples shards every round, so the apply phase always ran.
  EXPECT_GT(parallel.inject_seconds, 0.0);
  Simulator oracle = make_simulator(ranks, 1);
  install_ring_workload(oracle, ranks, /*rounds=*/8);
  const SimResult serial = oracle.run();
  EXPECT_EQ(serial.coordinator_seconds, 0.0);
  EXPECT_EQ(serial.sort_seconds, 0.0);
  EXPECT_EQ(serial.inject_seconds, 0.0);
}

}  // namespace
}  // namespace krak::sim
