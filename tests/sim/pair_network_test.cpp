#include <gtest/gtest.h>

#include "network/msgmodel.hpp"
#include "network/topology.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace krak::sim {
namespace {

Simulator flat_simulator(std::int32_t ranks) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  return Simulator(ranks, network::make_hockney_model(1.0, 1e30), config);
}

TEST(PairNetwork, OverridesPointToPointCosts) {
  Simulator sim = flat_simulator(2);
  // Override: every message takes 5 s on the wire, 0 s to hand off.
  sim.set_pair_network(
      [](RankId, RankId, double) { return 5.0; },
      [](RankId, RankId, double) { return 0.0; });
  sim.set_schedule(0, {Op::isend(1, 8.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 8.0, 1)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.finish_times[1], 5.0, 1e-12);
  EXPECT_NEAR(result.finish_times[0], 0.0, 1e-12);
}

TEST(PairNetwork, CollectivesStillUseFlatModel) {
  Simulator sim = flat_simulator(2);
  sim.set_pair_network(
      [](RankId, RankId, double) { return 100.0; },
      [](RankId, RankId, double) { return 100.0; });
  const Schedule schedule = {Op::allreduce(8.0)};
  sim.set_schedule(0, schedule);
  sim.set_schedule(1, schedule);
  const SimResult result = sim.run();
  // Flat model: 2 * depth(2) * 1 s = 2 s; the pair override must not
  // leak into the tree cost.
  EXPECT_NEAR(result.makespan, 2.0, 1e-12);
}

TEST(PairNetwork, MismatchedFunctionsRejected) {
  Simulator sim = flat_simulator(2);
  EXPECT_THROW(
      sim.set_pair_network([](RankId, RankId, double) { return 1.0; },
                           Simulator::PairCost{}),
      util::InvalidArgument);
}

TEST(PairNetwork, CanBeCleared) {
  Simulator sim = flat_simulator(2);
  sim.set_pair_network([](RankId, RankId, double) { return 50.0; },
                       [](RankId, RankId, double) { return 0.0; });
  sim.set_pair_network({}, {});
  sim.set_schedule(0, {Op::isend(1, 8.0, 1)});
  sim.set_schedule(1, {Op::recv(0, 8.0, 1)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.finish_times[1], 1.0, 1e-12);  // flat 1 s latency
}

TEST(PairNetwork, HierarchicalRanksSeeAsymmetricCosts) {
  // Wire a real HierarchicalNetwork: ranks 0-3 on node 0, 4-7 on node 1.
  const auto hierarchy = std::make_shared<network::HierarchicalNetwork>(
      network::make_es45_shared_memory_model(), network::make_qsnet1_model(),
      network::Placement(8, 4));
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  Simulator sim(8, network::make_qsnet1_model(), config);
  sim.set_pair_network(
      [hierarchy](RankId from, RankId to, double bytes) {
        return hierarchy->message_time(from, to, bytes);
      },
      [hierarchy](RankId from, RankId to, double bytes) {
        return hierarchy->latency(from, to, bytes);
      });
  // Rank 0 pings rank 1 (same node) and rank 4 (other node).
  sim.set_schedule(0, {Op::isend(1, 1024.0, 1), Op::isend(4, 1024.0, 2)});
  sim.set_schedule(1, {Op::recv(0, 1024.0, 1)});
  sim.set_schedule(4, {Op::recv(0, 1024.0, 2)});
  const SimResult result = sim.run();
  EXPECT_LT(result.finish_times[1], result.finish_times[4]);
}

}  // namespace
}  // namespace krak::sim
