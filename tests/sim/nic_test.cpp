#include <gtest/gtest.h>

#include "network/msgmodel.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace krak::sim {
namespace {

/// Zero-latency, instant-wire network so only NIC serialization shows.
Simulator nic_simulator(std::int32_t ranks, NicConfig nic) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  Simulator sim(ranks, network::make_hockney_model(0.0, 1e30), config);
  sim.set_nic(nic);
  return sim;
}

TEST(Nic, DisabledByDefaultMessagesDontSerialize) {
  SimConfig config;
  config.send_overhead = 0.0;
  config.recv_overhead = 0.0;
  Simulator sim(3, network::make_hockney_model(0.0, 1e30), config);
  sim.set_schedule(0, {Op::isend(1, 1e6, 1), Op::isend(2, 1e6, 2)});
  sim.set_schedule(1, {Op::recv(0, 1e6, 1)});
  sim.set_schedule(2, {Op::recv(0, 1e6, 2)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.makespan, 0.0, 1e-12);
}

TEST(Nic, SameNodeSendsSerializeAtInjectionBandwidth) {
  NicConfig nic;
  nic.enabled = true;
  nic.pes_per_node = 4;
  nic.injection_bandwidth = 1e6;  // 1 MB/s: 1 MB takes 1 s to inject
  Simulator sim = nic_simulator(6, nic);
  // Ranks 0 and 1 share node 0; each sends 1 MB to ranks on node 1.
  sim.set_schedule(0, {Op::isend(4, 1e6, 1)});
  sim.set_schedule(1, {Op::isend(5, 1e6, 2)});
  sim.set_schedule(4, {Op::recv(0, 1e6, 1), Op::record(0)});
  sim.set_schedule(5, {Op::recv(1, 1e6, 2), Op::record(0)});
  const SimResult result = sim.run();
  // One of the two messages waits ~1 s for the adapter.
  const double first = std::min(result.records[4].at(0), result.records[5].at(0));
  const double second = std::max(result.records[4].at(0), result.records[5].at(0));
  EXPECT_NEAR(first, 1.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(Nic, DifferentNodesDoNotContend) {
  NicConfig nic;
  nic.enabled = true;
  nic.pes_per_node = 1;  // every rank has its own adapter
  nic.injection_bandwidth = 1e6;
  Simulator sim = nic_simulator(4, nic);
  sim.set_schedule(0, {Op::isend(2, 1e6, 1)});
  sim.set_schedule(1, {Op::isend(3, 1e6, 2)});
  sim.set_schedule(2, {Op::recv(0, 1e6, 1), Op::record(0)});
  sim.set_schedule(3, {Op::recv(1, 1e6, 2), Op::record(0)});
  const SimResult result = sim.run();
  EXPECT_NEAR(result.records[2].at(0), 1.0, 1e-9);
  EXPECT_NEAR(result.records[3].at(0), 1.0, 1e-9);
}

TEST(Nic, SenderCpuDoesNotBlockOnInjection) {
  // Asynchronous sends: the CPU posts and moves on even when the
  // adapter is backed up.
  NicConfig nic;
  nic.enabled = true;
  nic.pes_per_node = 2;
  nic.injection_bandwidth = 1e6;
  Simulator sim = nic_simulator(3, nic);
  sim.set_schedule(0, {Op::isend(2, 1e6, 1), Op::isend(2, 1e6, 2),
                       Op::record(0)});
  sim.set_schedule(2, {Op::recv(0, 1e6, 1), Op::recv(0, 1e6, 2)});
  const SimResult result = sim.run();
  // The CPU finished posting both messages immediately...
  EXPECT_NEAR(result.records[0].at(0), 0.0, 1e-9);
  // ...while the wire delivered the second one only after ~2 s.
  EXPECT_NEAR(result.makespan, 2.0, 1e-9);
}

TEST(Nic, ConfigValidated) {
  Simulator sim(2, network::make_qsnet1_model());
  NicConfig bad;
  bad.enabled = true;
  bad.pes_per_node = 0;
  EXPECT_THROW(sim.set_nic(bad), util::InvalidArgument);
  bad.pes_per_node = 4;
  bad.injection_bandwidth = 0.0;
  EXPECT_THROW(sim.set_nic(bad), util::InvalidArgument);
}

}  // namespace
}  // namespace krak::sim
