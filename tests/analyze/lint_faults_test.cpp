#include "analyze/lint_faults.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analyze/rules.hpp"
#include "fault/plan.hpp"

namespace krak::analyze {
namespace {

TEST(LintFaults, EmptyPlanIsInformationalOnly) {
  const DiagnosticReport report = lint_faults(fault::FaultPlan{});
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

TEST(LintFaults, ValidPlanPassesWithRunContext) {
  fault::FaultPlan plan;
  plan.slowdowns.push_back({2, 1.5});
  fault::OneOffDelay delay;
  delay.rank = 0;
  delay.phase = 3;
  delay.iteration = 1;
  delay.seconds = 0.01;
  plan.delays.push_back(delay);
  const DiagnosticReport report =
      lint_faults(plan, /*ranks=*/8, /*phases_per_iteration=*/15);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

TEST(LintFaults, RangeViolationsAreReported) {
  fault::FaultPlan plan;
  plan.slowdowns.push_back({0, 0.5});               // factor < 1
  fault::MessageFaultModel model;
  model.drop_probability = 1.5;                     // outside [0, 1)
  plan.message_faults.push_back(model);
  plan.degrades.push_back({0, 2.0});                // bandwidth > 1
  const DiagnosticReport report = lint_faults(plan);
  EXPECT_TRUE(report.has_rule(rules::kFaultSpecRange)) << report.to_text();
  EXPECT_GE(report.error_count(), 3u);
}

TEST(LintFaults, TargetBoundsCheckedOnlyWithRunContext) {
  fault::FaultPlan plan;
  fault::OneOffDelay delay;
  delay.rank = 12;
  delay.phase = 99;
  plan.delays.push_back(delay);
  // Without a run context the rank/phase bound checks are skipped...
  EXPECT_FALSE(
      lint_faults(plan).has_rule(rules::kFaultSpecTarget));
  // ...with one, a 12th rank or a 99th phase does not exist.
  const DiagnosticReport report = lint_faults(plan, 8, 15);
  EXPECT_TRUE(report.has_rule(rules::kFaultSpecTarget)) << report.to_text();
}

TEST(LintFaults, WildcardRankRejectedForDelaysAndCrashes) {
  fault::FaultPlan plan;
  fault::RankCrash crash;
  crash.rank = fault::kAllRanks;
  plan.crashes.push_back(crash);
  const DiagnosticReport report = lint_faults(plan);
  EXPECT_TRUE(report.has_errors());
  bool explained = false;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.message.find("rank=*") != std::string::npos) {
      explained = true;
    }
  }
  EXPECT_TRUE(explained) << report.to_text();
}

TEST(LintFaults, CorruptedFixtureTriggersRangeAndTargetRules) {
  std::istringstream in(corrupted_fault_spec_text());
  const fault::FaultPlan plan = fault::parse_fault_plan(in);
  const DiagnosticReport report =
      lint_faults(plan, /*ranks=*/8, /*phases_per_iteration=*/15);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kFaultSpecRange)) << report.to_text();
  EXPECT_TRUE(report.has_rule(rules::kFaultSpecTarget)) << report.to_text();
}

TEST(LintFaults, UnreadableFileIsFormatError) {
  const std::string path = "/nonexistent/plan.krakfaults";
  const DiagnosticReport report = lint_fault_file(path);
  ASSERT_TRUE(report.has_rule(rules::kFaultSpecFormat)) << report.to_text();
  bool named = false;
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.message.find(path) != std::string::npos ||
        diagnostic.component.find(path) != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << report.to_text();
}

TEST(LintFaults, MalformedSpecFileIsFormatError) {
  const std::string path = ::testing::TempDir() + "/malformed.krakfaults";
  {
    std::ofstream out(path);
    out << "krakfaults 1\nteleport rank=0\nend\n";
  }
  const DiagnosticReport report = lint_fault_file(path);
  EXPECT_TRUE(report.has_rule(rules::kFaultSpecFormat)) << report.to_text();
}

}  // namespace
}  // namespace krak::analyze
